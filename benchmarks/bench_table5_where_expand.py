"""Table V — ablation on *where* to expand (first / middle / last / uniform).

The paper expands 8 blocks of MobileNetV2-Tiny at different positions and
shows that uniform placement is the best, motivating NetBooster's Q2 answer.
Here the same placements are applied to half of the candidate layers of the
scaled-down model.
"""

from __future__ import annotations

from repro.core import ExpansionConfig, expand_network
from repro.eval import count_complexity
from repro.utils import seed_everything

from common import PROFILE, get_corpus, get_vanilla_pretrained, make_booster, make_model, print_table

PAPER_TABLE5 = {
    "Vanilla": {"expanded": None, "final": 51.20},
    "first": {"expanded": 51.46, "final": 51.50},
    "middle": {"expanded": 52.98, "final": 52.62},
    "last": {"expanded": 53.90, "final": 52.47},
    "uniform": {"expanded": 54.90, "final": 53.70},
}
NETWORK = "mobilenetv2-tiny"


def run_table5() -> dict[str, dict[str, float]]:
    corpus = get_corpus()
    results: dict[str, dict[str, float]] = {}
    _, vanilla_history = get_vanilla_pretrained(NETWORK)
    results["Vanilla"] = {"expanded": float("nan"), "final": vanilla_history.final_val_accuracy, "flops": None}

    rows = []
    input_shape = (3, PROFILE.resolution, PROFILE.resolution)
    for placement in ("first", "middle", "last", "uniform"):
        seed_everything(PROFILE.seed + 41)
        config = ExpansionConfig(placement=placement, fraction=0.5)
        giant_probe, _ = expand_network(make_model(NETWORK), config)
        flops = count_complexity(giant_probe, input_shape).mflops
        booster = make_booster(config)
        result = booster.run(make_model(NETWORK), corpus.train, corpus.val)
        results[placement] = {
            "expanded": max(result.pretrain_history.val_accuracy),
            "final": result.final_accuracy,
            "flops": flops,
        }

    for name, paper in PAPER_TABLE5.items():
        measured = results[name]
        rows.append([
            name,
            "-" if measured.get("flops") is None else f"{measured['flops']:.2f}M",
            "-" if paper["expanded"] is None else f"{paper['expanded']:.1f}",
            "-" if name == "Vanilla" else f"{measured['expanded']:.1f}",
            f"{paper['final']:.1f}",
            f"{measured['final']:.1f}",
        ])
    print_table(
        "Table V — expansion placement ablation (MobileNetV2-Tiny)",
        ["placement", "giant FLOPs", "paper expanded", "measured expanded", "paper final", "measured final"],
        rows,
    )
    return results


def test_table5_where_expand(benchmark):
    results = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    placements = {k: v["final"] for k, v in results.items() if k != "Vanilla"}
    # Paper: uniform placement wins.  At this scale we require uniform to be
    # within the single-seed noise band of the best placement rather than
    # strictly the maximum.
    assert placements["uniform"] >= max(placements.values()) - 8.0


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_table5))
