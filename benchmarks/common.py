"""Shared workload profile and cached training runs for the benchmark suite.

Every benchmark regenerates one table or figure of the NetBooster paper on the
synthetic substrate.  Because several tables reuse the same pretrained models
(the vanilla TNN, the NetBooster deep giant, the KD teacher), this module
routes those artifacts through the **experiment orchestrator's shared steps**
(:mod:`repro.experiments.registry`) and its content-addressed on-disk cache
(:mod:`repro.experiments.cache`): the first benchmark to need an artifact
trains and stores it, every later benchmark — in this process or any other —
loads it from disk.

Three environment variables control the workload:

* ``REPRO_BENCH_SCALE`` — ``"small"`` (default) or ``"full"``; the full scale
  uses more classes/samples/epochs and is closer to the under-fitting regime
  of the paper but takes several times longer.
* ``REPRO_BENCH_FULL_NETWORKS`` — set to ``1`` to benchmark every network of
  Table I (MobileNetV2-50/100 are expensive); by default Table I covers
  MobileNetV2-Tiny and MCUNet.
* ``REPRO_CACHE_DIR`` — cache root shared with ``python -m repro.experiments
  run-all`` (default ``.repro_cache``); ``REPRO_BENCH_CACHE=0`` disables the
  on-disk cache and keeps artifacts in-process only.
"""

from __future__ import annotations

import os

from repro.baselines import make_teacher
from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import SyntheticImageNet, SyntheticVOC, downstream_dataset
from repro.experiments import ExperimentScale, ResultCache, StepContext
from repro.experiments.cache import Artifact
from repro.experiments.registry import history_from_meta, history_to_meta, rebuild_giant, rebuild_model
from repro.models import create_model
from repro.train import Trainer, evaluate
from repro.utils import ExperimentConfig, seed_everything

__all__ = [
    "BenchProfile",
    "PROFILE",
    "CONTEXT",
    "get_corpus",
    "get_downstream",
    "get_voc",
    "make_model",
    "make_booster",
    "get_vanilla_pretrained",
    "get_pretrained_giant",
    "get_teacher",
    "netbooster_accuracy",
    "print_table",
    "format_row",
]

# The benchmark profile *is* an orchestrator scale: identical knobs, shared
# cache keys.  ``BenchProfile`` is kept as an alias for older call sites.
BenchProfile = ExperimentScale

PROFILE: ExperimentScale = ExperimentScale.named(os.environ.get("REPRO_BENCH_SCALE", "small"))

#: Dependency resolver shared by the whole benchmark process; backed by the
#: same on-disk cache the orchestrator uses unless REPRO_BENCH_CACHE=0.
CONTEXT = StepContext(
    PROFILE,
    cache=None if os.environ.get("REPRO_BENCH_CACHE", "1") == "0" else ResultCache(),
)

_DATASETS: dict[str, object] = {}


def get_corpus() -> SyntheticImageNet:
    """The shared large-scale pretraining corpus (stand-in for ImageNet)."""
    if "corpus" not in _DATASETS:
        _DATASETS["corpus"] = PROFILE.corpus()
    return _DATASETS["corpus"]


def get_downstream(name: str):
    """A named downstream dataset at the profile resolution."""
    key = f"downstream::{name}"
    if key not in _DATASETS:
        _DATASETS[key] = downstream_dataset(name, resolution=PROFILE.resolution)
    return _DATASETS[key]


def get_voc() -> SyntheticVOC:
    """The synthetic detection benchmark."""
    if "voc" not in _DATASETS:
        seed_everything(PROFILE.seed)
        _DATASETS["voc"] = SyntheticVOC(num_classes=5, num_train=72, num_val=32, resolution=32, object_size=12)
    return _DATASETS["voc"]


def make_model(name: str):
    """Fresh model instance for the benchmark corpus label space."""
    seed_everything(PROFILE.seed + 1)
    return create_model(name, num_classes=PROFILE.num_classes)


def pretrain_config(epochs: int | None = None) -> ExperimentConfig:
    config = PROFILE.pretrain_config()
    return config if epochs is None else config.replace(epochs=epochs)


def finetune_config(epochs: int | None = None, lr: float | None = None) -> ExperimentConfig:
    config = PROFILE.finetune_config().replace(batch_size=32)
    if epochs is not None:
        config = config.replace(epochs=epochs)
    if lr is not None:
        config = config.replace(lr=lr)
    return config


def make_booster(expansion: ExpansionConfig | None = None) -> NetBooster:
    """A NetBooster facade configured with the benchmark training recipe."""
    return NetBooster(
        NetBoosterConfig(
            expansion=expansion or ExpansionConfig(),
            pretrain=pretrain_config(),
            finetune=finetune_config(lr=PROFILE.finetune_lr),
            plt_decay_fraction=0.3,
        )
    )


def get_vanilla_pretrained(model_name: str):
    """Vanilla-trained model on the corpus (cached), with its history.

    Resolves the orchestrator's ``vanilla/<model>`` shared step: the vanilla
    baseline gets the same total epoch budget as NetBooster (pretraining +
    PLT finetuning), mirroring the paper's setup.
    """
    artifact = CONTEXT.dep(f"vanilla/{model_name}")
    model = rebuild_model(model_name, PROFILE, artifact)
    return model, history_from_meta(artifact.meta["history"])


def get_pretrained_giant(model_name: str, expansion: ExpansionConfig | None = None):
    """NetBooster deep giant pretrained on the corpus (cached, before PLT)."""
    if expansion is None:
        artifact = CONTEXT.dep(f"giant/{model_name}")
    else:
        def compute() -> Artifact:
            corpus = get_corpus()
            seed_everything(PROFILE.seed + 2)
            booster = make_booster(expansion)
            giant, _records = booster.build_giant(make_model(model_name))
            history = booster.pretrain_giant(giant, corpus.train, corpus.val)

            return Artifact(meta={"history": history_to_meta(history)}, states={"giant": dict(giant.state_dict())})

        artifact = CONTEXT.cached_call(
            f"bench/giant/{model_name}", compute, extra={"expansion": repr(expansion)}
        )
    giant, records, _booster = rebuild_giant(model_name, PROFILE, artifact, expansion)
    return giant, records, history_from_meta(artifact.meta["history"])


def get_teacher():
    """A larger pretrained network used by the KD baselines (cached)."""

    def compute() -> Artifact:
        corpus = get_corpus()
        seed_everything(PROFILE.seed + 7)
        teacher = make_teacher(make_model("mobilenetv2-tiny"), PROFILE.num_classes, width_factor=2.5)
        Trainer(teacher, pretrain_config()).fit(corpus.train, None)
        return Artifact(states={"teacher": dict(teacher.state_dict())})

    artifact = CONTEXT.cached_call("bench/teacher", compute)
    seed_everything(PROFILE.seed + 7)
    teacher = make_teacher(make_model("mobilenetv2-tiny"), PROFILE.num_classes, width_factor=2.5)
    teacher.load_state_dict(artifact.states["teacher"], strict=True)
    return teacher


def netbooster_accuracy(model_name: str) -> float:
    """Full NetBooster pipeline accuracy on the corpus (cached per network)."""
    return float(CONTEXT.dep(f"netbooster/{model_name}").meta["final_accuracy"])


def bench_main(run_fn):
    """Standalone entry point for one benchmark file.

    Runs the benchmark body directly (``python benchmarks/bench_xxx.py``)
    against the orchestrator's shared on-disk cache, so artifacts trained
    here are reused by ``python -m repro.experiments run-all`` and vice
    versa.  Returns a process exit code.
    """
    import time

    where = CONTEXT.cache.root if CONTEXT.cache is not None else "disabled (REPRO_BENCH_CACHE=0)"
    print(f"profile: {PROFILE}\nresult cache: {where}")
    started = time.perf_counter()
    run_fn()
    print(f"\ncompleted in {time.perf_counter() - started:.1f}s")
    return 0


# --------------------------------------------------------------------------- #
# pretty-printing of paper-vs-measured tables
# --------------------------------------------------------------------------- #
def format_row(cells: list, widths: list[int]) -> str:
    return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def print_table(title: str, header: list, rows: list[list]) -> None:
    """Print a fixed-width table with the paper's reported value next to ours."""
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows)) for i in range(len(header))]
    print(f"\n=== {title} ===")
    print(format_row(header, widths))
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(format_row(row, widths))
