"""Shared workload profile and cached training runs for the benchmark suite.

Every benchmark regenerates one table or figure of the NetBooster paper on the
synthetic substrate.  Because several tables reuse the same pretrained models
(the vanilla TNN, the NetBooster deep giant, the KD teacher), this module
caches those runs at process level so the whole suite stays within a CPU
budget.

Two environment variables control the workload:

* ``REPRO_BENCH_SCALE`` — ``"small"`` (default) or ``"full"``; the full scale
  uses more classes/samples/epochs and is closer to the under-fitting regime
  of the paper but takes several times longer.
* ``REPRO_BENCH_FULL_NETWORKS`` — set to ``1`` to benchmark every network of
  Table I (MobileNetV2-50/100 are expensive); by default Table I covers
  MobileNetV2-Tiny and MCUNet.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass

from repro.baselines import make_teacher
from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import SyntheticImageNet, SyntheticVOC, downstream_dataset
from repro.models import create_model
from repro.train import Trainer, evaluate
from repro.utils import ExperimentConfig, seed_everything

__all__ = [
    "BenchProfile",
    "PROFILE",
    "get_corpus",
    "get_downstream",
    "get_voc",
    "make_model",
    "make_booster",
    "get_vanilla_pretrained",
    "get_pretrained_giant",
    "get_teacher",
    "print_table",
    "format_row",
]


@dataclass(frozen=True)
class BenchProfile:
    """Scaled-down workload standing in for the paper's training recipes."""

    num_classes: int
    samples_per_class: int
    val_samples_per_class: int
    resolution: int
    intra_class_std: float
    pretrain_epochs: int
    finetune_epochs: int
    batch_size: int
    lr: float
    finetune_lr: float
    seed: int = 0


_SMALL = BenchProfile(
    num_classes=16,
    samples_per_class=120,
    val_samples_per_class=40,
    resolution=20,
    intra_class_std=1.0,
    pretrain_epochs=12,
    finetune_epochs=6,
    batch_size=64,
    lr=0.1,
    finetune_lr=0.03,
)

_FULL = BenchProfile(
    num_classes=20,
    samples_per_class=200,
    val_samples_per_class=50,
    resolution=24,
    intra_class_std=1.0,
    pretrain_epochs=24,
    finetune_epochs=10,
    batch_size=64,
    lr=0.1,
    finetune_lr=0.03,
)

PROFILE: BenchProfile = _FULL if os.environ.get("REPRO_BENCH_SCALE", "small") == "full" else _SMALL

_CACHE: dict[str, object] = {}


def get_corpus() -> SyntheticImageNet:
    """The shared large-scale pretraining corpus (stand-in for ImageNet)."""
    if "corpus" not in _CACHE:
        seed_everything(PROFILE.seed)
        _CACHE["corpus"] = SyntheticImageNet(
            num_classes=PROFILE.num_classes,
            samples_per_class=PROFILE.samples_per_class,
            val_samples_per_class=PROFILE.val_samples_per_class,
            resolution=PROFILE.resolution,
            intra_class_std=PROFILE.intra_class_std,
        )
    return _CACHE["corpus"]


def get_downstream(name: str):
    """A named downstream dataset at the profile resolution."""
    key = f"downstream::{name}"
    if key not in _CACHE:
        _CACHE[key] = downstream_dataset(name, resolution=PROFILE.resolution)
    return _CACHE[key]


def get_voc() -> SyntheticVOC:
    """The synthetic detection benchmark."""
    if "voc" not in _CACHE:
        seed_everything(PROFILE.seed)
        _CACHE["voc"] = SyntheticVOC(num_classes=5, num_train=72, num_val=32, resolution=32, object_size=12)
    return _CACHE["voc"]


def make_model(name: str):
    """Fresh model instance for the benchmark corpus label space."""
    seed_everything(PROFILE.seed + 1)
    return create_model(name, num_classes=PROFILE.num_classes)


def pretrain_config(epochs: int | None = None) -> ExperimentConfig:
    return ExperimentConfig(
        epochs=epochs if epochs is not None else PROFILE.pretrain_epochs,
        batch_size=PROFILE.batch_size,
        lr=PROFILE.lr,
        seed=PROFILE.seed,
    )


def finetune_config(epochs: int | None = None, lr: float | None = None) -> ExperimentConfig:
    return ExperimentConfig(
        epochs=epochs if epochs is not None else PROFILE.finetune_epochs,
        batch_size=32,
        lr=lr if lr is not None else PROFILE.finetune_lr,
        seed=PROFILE.seed,
    )


def make_booster(expansion: ExpansionConfig | None = None) -> NetBooster:
    """A NetBooster facade configured with the benchmark training recipe."""
    return NetBooster(
        NetBoosterConfig(
            expansion=expansion or ExpansionConfig(),
            pretrain=pretrain_config(),
            finetune=finetune_config(lr=PROFILE.finetune_lr),
            plt_decay_fraction=0.3,
        )
    )


def get_vanilla_pretrained(model_name: str):
    """Vanilla-trained model on the corpus (cached), with its history."""
    key = f"vanilla::{model_name}"
    if key not in _CACHE:
        corpus = get_corpus()
        model = make_model(model_name)
        # The vanilla baseline gets the same total epoch budget as NetBooster
        # (pretraining + PLT finetuning), mirroring the paper's setup.
        config = pretrain_config(PROFILE.pretrain_epochs + PROFILE.finetune_epochs)
        trainer = Trainer(model, config)
        history = trainer.fit(corpus.train, corpus.val)
        _CACHE[key] = (model, history)
    model, history = _CACHE[key]
    return copy.deepcopy(model), history


def get_pretrained_giant(model_name: str, expansion: ExpansionConfig | None = None):
    """NetBooster deep giant pretrained on the corpus (cached, before PLT)."""
    suffix = "default" if expansion is None else repr(expansion)
    key = f"giant::{model_name}::{suffix}"
    if key not in _CACHE:
        corpus = get_corpus()
        booster = make_booster(expansion)
        giant, records = booster.build_giant(make_model(model_name))
        history = booster.pretrain_giant(giant, corpus.train, corpus.val)
        _CACHE[key] = (giant, records, history)
    giant, records, history = _CACHE[key]
    return copy.deepcopy(giant), records, history


def get_teacher():
    """A larger pretrained network used by the KD baselines (cached)."""
    if "teacher" not in _CACHE:
        corpus = get_corpus()
        seed_everything(PROFILE.seed + 7)
        teacher = make_teacher(make_model("mobilenetv2-tiny"), PROFILE.num_classes, width_factor=2.5)
        Trainer(teacher, pretrain_config()).fit(corpus.train, None)
        _CACHE["teacher"] = teacher
    return _CACHE["teacher"]


def netbooster_accuracy(model_name: str) -> float:
    """Full NetBooster pipeline accuracy on the corpus (cached per network)."""
    key = f"netbooster_acc::{model_name}"
    if key not in _CACHE:
        corpus = get_corpus()
        booster = make_booster()
        giant, records, _ = get_pretrained_giant(model_name)
        booster.plt_finetune(giant, corpus.train, corpus.val)
        contracted = booster.contract(giant, records)
        _CACHE[key] = evaluate(contracted, corpus.val)
    return _CACHE[key]


# --------------------------------------------------------------------------- #
# pretty-printing of paper-vs-measured tables
# --------------------------------------------------------------------------- #
def format_row(cells: list, widths: list[int]) -> str:
    return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def print_table(title: str, header: list, rows: list[list]) -> None:
    """Print a fixed-width table with the paper's reported value next to ours."""
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows)) for i in range(len(header))]
    print(f"\n=== {title} ===")
    print(format_row(header, widths))
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(format_row(row, widths))
