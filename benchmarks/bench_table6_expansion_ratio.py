"""Table VI — ablation on the expansion ratio of the inserted blocks.

The paper sweeps ratios {2, 4, 6, 8} and finds that the common ratios 4-6 work
well while 8 starts to hurt (capacity gap too large for effective feature
inheritance).  The contracted model's cost is identical for every ratio — the
paper's remark after Eq. 4 — which this benchmark also verifies.
"""

from __future__ import annotations

from repro.core import ExpansionConfig, expand_network
from repro.eval import count_complexity
from repro.utils import seed_everything

from common import PROFILE, get_corpus, get_vanilla_pretrained, make_booster, make_model, print_table

PAPER_TABLE6 = {2: 52.94, 4: 53.52, 6: 53.70, 8: 52.56}
PAPER_VANILLA = 51.20
NETWORK = "mobilenetv2-tiny"


def run_table6() -> dict[str, float]:
    corpus = get_corpus()
    results: dict[str, float] = {}
    contracted_flops: dict[int, int] = {}
    input_shape = (3, PROFILE.resolution, PROFILE.resolution)

    _, vanilla_history = get_vanilla_pretrained(NETWORK)
    results["Vanilla"] = vanilla_history.final_val_accuracy

    for ratio in (2, 4, 6, 8):
        seed_everything(PROFILE.seed + 51)
        booster = make_booster(ExpansionConfig(expansion_ratio=ratio, fraction=0.5))
        result = booster.run(make_model(NETWORK), corpus.train, corpus.val)
        results[f"ratio={ratio}"] = result.final_accuracy
        contracted_flops[ratio] = count_complexity(result.model, input_shape).flops

    rows = [["Vanilla", f"{PAPER_VANILLA:.1f}", f"{results['Vanilla']:.1f}", "-"]]
    for ratio in (2, 4, 6, 8):
        rows.append([
            f"ratio={ratio}",
            f"{PAPER_TABLE6[ratio]:.1f}",
            f"{results[f'ratio={ratio}']:.1f}",
            f"{contracted_flops[ratio]}",
        ])
    print_table(
        "Table VI — expansion ratio ablation (MobileNetV2-Tiny)",
        ["setting", "paper final acc", "measured final acc", "contracted FLOPs"],
        rows,
    )

    baseline_flops = count_complexity(make_model(NETWORK), input_shape).flops
    assert all(flops == baseline_flops for flops in contracted_flops.values()), (
        "contracted cost must be independent of the expansion ratio (paper Eq. 4 remark)"
    )
    return results


def test_table6_expansion_ratio(benchmark):
    results = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    ratios = [results[f"ratio={r}"] for r in (2, 4, 6, 8)]
    # All ratios should remain in a reasonable band around vanilla accuracy
    # (the paper reports every ratio improving on vanilla by 1.3-2.5 points).
    # The band below reflects the CPU-scale single-seed noise floor.
    assert max(ratios) - min(ratios) <= 12.0
    assert max(ratios) >= results["Vanilla"] - 2.5


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_table6))
