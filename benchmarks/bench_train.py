"""Training-throughput benchmarks for the compiled training engine.

Measures end-to-end ``train_step`` throughput (data pipeline included) for
MobileNetV2-Tiny in three lanes:

* ``seed``      — the seed repo's training path, re-created: copy-based
  im2col convolution, log-softmax-chain cross-entropy, per-parameter SGD
  loop, per-image transforms, no prefetch;
* ``eager``     — the current autograd tape (optimised kernels, fused
  cross-entropy, flat-buffer SGD, batched transforms, prefetching loader);
* ``compiled``  — the fused training runtime
  (``repro.compile(model, mode="train")``, routed through the Trainer).

plus two data-pipeline microbenchmarks (batched vs per-image transforms, and
the compiled lane with prefetch off) and a ``distributed`` lane (aggregate
steps/s of the data-parallel :class:`~repro.train.DistributedTrainer` vs
worker count, with a single-worker bitwise-parity check).  Results are
written to ``BENCH_train.json``; ``scripts/check_bench.py`` gates
regressions in CI.

Run with::

    PYTHONPATH=src python benchmarks/bench_train.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_train.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import nn
from repro.data import ClassificationDataset, Compose, DataLoader, Normalize, RandomCrop, RandomHorizontalFlip
from repro.models import mobilenet_v2
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.optim import SGD
from repro.train import DistributedTrainer, Trainer
from repro.utils import ExperimentConfig, seed_everything

from bench_ops import seed_conv2d


# --------------------------------------------------------------------------- #
# seed-path re-creations
# --------------------------------------------------------------------------- #
def seed_cross_entropy(logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0) -> Tensor:
    """The seed repo's cross entropy: log-softmax chain, ~10 tape nodes."""
    num_classes = logits.shape[-1]
    target_probs = F.one_hot(np.asarray(targets), num_classes)
    if label_smoothing > 0.0:
        target_probs = (1.0 - label_smoothing) * target_probs + label_smoothing / num_classes
    log_probs = F.log_softmax(logits, axis=-1)
    return -(Tensor(target_probs) * log_probs).sum(axis=-1).mean()


def seed_batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """The seed repo's batch norm, recreated verbatim.

    Materialises ``x_hat`` plus the textbook three-term backward — the path
    the fused moment-reduction kernels in ``repro.nn.functional`` replaced.
    """
    xd = x.data
    c = xd.shape[1]

    if training:
        mean = xd.mean(axis=(0, 2, 3))
        var = xd.var(axis=(0, 2, 3))
        count = xd.shape[0] * xd.shape[2] * xd.shape[3]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
    out = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = gamma.data.reshape(1, c, 1, 1)
            if training:
                m = xd.shape[0] * xd.shape[2] * xd.shape[3]
                grad_xhat = grad * g
                sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
                sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                grad_x = (
                    inv_std.reshape(1, c, 1, 1)
                    * (grad_xhat - sum_grad / m - x_hat * sum_grad_xhat / m)
                )
            else:
                grad_x = grad * g * inv_std.reshape(1, c, 1, 1)
            x._accumulate(grad_x)

    return Tensor._make(out, (x, gamma, beta), backward)


class PerImage:
    """Hide a transform's ``batch`` method so the loader applies it per image."""

    def __init__(self, transform):
        self._transform = transform

    def __call__(self, image, rng):
        return self._transform(image, rng)


# --------------------------------------------------------------------------- #
# lanes
# --------------------------------------------------------------------------- #
def _dataset(samples: int, resolution: int, classes: int = 16) -> ClassificationDataset:
    rng = np.random.default_rng(0)
    images = rng.random((samples, 3, resolution, resolution)).astype(np.float32)
    labels = np.arange(samples) % classes
    return ClassificationDataset(images, labels, classes)


def _transform(per_image: bool = False):
    pipeline = Compose([RandomHorizontalFlip(), RandomCrop(2), Normalize()])
    return PerImage(pipeline) if per_image else pipeline


def _one_pass(step_fn, loader, min_steps: int) -> float:
    """Steps/sec of one timed pass of at least ``min_steps`` steps."""
    done = 0
    start = time.perf_counter()
    while done < min_steps:
        for images, labels in loader:
            step_fn(images, labels)
            done += 1
            if done >= min_steps:
                break
    return done / (time.perf_counter() - start)


class _SeedLane:
    """The seed repo's training path (conv/BN/CE/SGD/loader recreated)."""

    def __init__(self, dataset, batch: int):
        seed_everything(0)
        self.model = mobilenet_v2("tiny", num_classes=dataset.num_classes)
        self.optimizer = SGD(self.model.parameters(), lr=0.05, momentum=0.9, weight_decay=4e-5)
        self.loader = DataLoader(
            dataset, batch_size=batch, transform=_transform(per_image=True),
            prefetch=False, seed=0,
        )

    def _step(self, images, labels):
        self.optimizer.zero_grad()
        loss = seed_cross_entropy(self.model(nn.Tensor(images)), labels)
        loss.backward()
        self.optimizer.step()

    def measure(self, min_steps: int) -> float:
        original_conv, original_bn = F.conv2d, F.batch_norm2d
        F.conv2d, F.batch_norm2d = seed_conv2d, seed_batch_norm2d
        try:
            return _one_pass(self._step, self.loader, min_steps)
        finally:
            F.conv2d, F.batch_norm2d = original_conv, original_bn

    def warmup(self):
        self.measure(1)


class _TrainerLane:
    """Current Trainer path, eager or compiled, prefetch on or off."""

    def __init__(self, dataset, batch: int, compile_flag: bool, prefetch: bool = True):
        seed_everything(0)
        model = mobilenet_v2("tiny", num_classes=dataset.num_classes)
        self.trainer = Trainer(
            model, ExperimentConfig(batch_size=batch, lr=0.05), compile=compile_flag
        )
        self.loader = DataLoader(
            dataset, batch_size=batch, transform=_transform(), prefetch=prefetch, seed=0
        )

    def measure(self, min_steps: int) -> float:
        return _one_pass(self.trainer.train_step, self.loader, min_steps)

    def warmup(self):
        self.measure(1)  # includes compilation for the compiled lane


def bench_transforms(dataset, batch: int, repeats: int) -> dict:
    images = dataset.images[:batch]
    pipeline = _transform()
    rng = np.random.default_rng(0)

    def timed(fn, r):
        fn()
        times = []
        for _ in range(r):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return float(np.median(times))

    batched = timed(lambda: pipeline.batch(images, rng), repeats)
    per_image = timed(lambda: np.stack([pipeline(img, rng) for img in images]), repeats)
    return {
        "batched_ms": batched * 1e3,
        "per_image_ms": per_image * 1e3,
        "speedup": per_image / batched,
    }


def bench_distributed(smoke: bool, max_workers: int | None) -> dict:
    """Data-parallel lane: aggregate steps/s vs worker count + bitwise flag.

    ``steps_per_sec`` counts optimiser steps summed over all workers, so with
    real cores the figure scales with the fleet; on a starved runner the
    workers time-slice one core and the ratio hovers near 1.0 (the
    ``check_train_dp`` gate is CPU-count-aware for exactly this reason).
    """
    import os

    cpu_count = os.cpu_count() or 1
    if smoke:
        batch, resolution, samples, epochs = 8, 16, 64, 1
    else:
        batch, resolution, samples, epochs = 16, 16, 128, 2
    classes = 8
    dataset = _dataset(samples, resolution, classes=classes)

    def model_fn():
        return mobilenet_v2("tiny", num_classes=classes)

    # workers=1 must run the exact Trainer code path: verify bitwise parity
    # (parameters and BN statistics) before timing anything.
    parity_config = ExperimentConfig(epochs=1, batch_size=batch, lr=0.05, warmup_epochs=0)
    seed_everything(parity_config.seed)
    reference_model = model_fn()
    Trainer(reference_model, parity_config, compile=False).fit(dataset)
    single = DistributedTrainer(model_fn, parity_config, workers=1, compile=False)
    single.fit(dataset)
    reference_state = reference_model.state_dict()
    single_state = single.model.state_dict()
    single_worker_bitwise = all(
        np.array_equal(reference_state[name], single_state[name]) for name in reference_state
    )

    config = ExperimentConfig(epochs=epochs, batch_size=batch, lr=0.05, warmup_epochs=0)
    target = max_workers if max_workers else min(4, max(2, cpu_count))
    sweep = sorted({1, 2, target})
    workers_sps: dict[str, float] = {}
    for world in sweep:
        trainer = DistributedTrainer(model_fn, config, workers=world, topology="allreduce")
        trainer.fit(dataset)
        if not trainer.stats.consistent:
            raise RuntimeError(f"allreduce digests diverged at workers={world}")
        workers_sps[str(world)] = trainer.stats.steps_per_sec

    gossip = DistributedTrainer(model_fn, config, workers=2, topology="gossip")
    gossip.fit(dataset)

    return {
        "cpu_count": cpu_count,
        "model": "mobilenetv2-tiny",
        "batch_size": batch,
        "epochs": epochs,
        "single_worker_bitwise": single_worker_bitwise,
        "workers_steps_per_sec": workers_sps,
        "max_workers": target,
        "scaling_vs_single": workers_sps[str(target)] / workers_sps["1"],
        "gossip_workers": 2,
        "gossip_steps_per_sec": gossip.stats.steps_per_sec,
    }


def run_benchmarks(smoke: bool, max_workers: int | None = None) -> dict:
    if smoke:
        batch, resolution, samples, min_steps, repeats = 16, 16, 64, 6, 2
    else:
        # Full-resolution training workload (batch 64 at 32x32); the
        # orchestrator's table runs use the same batch size at 16-24 px.
        batch, resolution, samples, min_steps, repeats = 64, 32, 256, 24, 3
    dataset = _dataset(samples, resolution)

    # Lanes are measured interleaved, one pass per lane per round, so slow
    # drift of a shared machine biases every lane equally.
    lanes = {
        "seed": _SeedLane(dataset, batch),
        "eager": _TrainerLane(dataset, batch, compile_flag=False),
        "compiled": _TrainerLane(dataset, batch, compile_flag=True),
        "compiled_noprefetch": _TrainerLane(dataset, batch, compile_flag=True, prefetch=False),
    }
    rates: dict[str, list[float]] = {name: [] for name in lanes}
    for lane in lanes.values():
        lane.warmup()
    names = list(lanes)
    for round_index in range(repeats):
        # Rotate the order every round so no lane always inherits the same
        # machine state (allocator pressure, cache residue) from its
        # predecessor.
        for name in names[round_index % len(names) :] + names[: round_index % len(names)]:
            rates[name].append(lanes[name].measure(min_steps))
    medians = {name: float(np.median(values)) for name, values in rates.items()}
    seed_sps = medians["seed"]
    eager_sps = medians["eager"]
    compiled_sps = medians["compiled"]
    compiled_noprefetch_sps = medians["compiled_noprefetch"]

    return {
        "config": {
            "model": "mobilenetv2-tiny",
            "batch_size": batch,
            "resolution": resolution,
            "samples": samples,
            "min_steps": min_steps,
            "repeats": repeats,
        },
        "train_step": {
            "seed_steps_per_sec": seed_sps,
            "eager_steps_per_sec": eager_sps,
            "compiled_steps_per_sec": compiled_sps,
            "speedup_compiled_vs_seed": compiled_sps / seed_sps,
            "speedup_compiled_vs_eager": compiled_sps / eager_sps,
            "speedup_eager_vs_seed": eager_sps / seed_sps,
        },
        "loader": {
            "compiled_prefetch_on_steps_per_sec": compiled_sps,
            "compiled_prefetch_off_steps_per_sec": compiled_noprefetch_sps,
            "speedup_prefetch": compiled_sps / compiled_noprefetch_sps,
        },
        "transforms": bench_transforms(dataset, batch, repeats=5),
        "distributed": bench_distributed(smoke, max_workers),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes / few repeats (CI)")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="max worker count for the distributed lane (default: min(4, cpus))",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_train.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    results = run_benchmarks(smoke=args.smoke, max_workers=args.workers)
    report = {
        "suite": "bench_train",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "benchmarks": results,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    train = results["train_step"]
    print(f"{'lane':<10s} {'steps/sec':>10s}")
    for lane in ("seed", "eager", "compiled"):
        print(f"{lane:<10s} {train[f'{lane}_steps_per_sec']:>10.2f}")
    print(f"\ncompiled vs seed:  {train['speedup_compiled_vs_seed']:.2f}x")
    print(f"compiled vs eager: {train['speedup_compiled_vs_eager']:.2f}x")
    loader = results["loader"]
    print(f"prefetch on/off:   {loader['speedup_prefetch']:.2f}x")
    tf = results["transforms"]
    print(f"batched transforms: {tf['speedup']:.2f}x vs per-image")
    dp = results["distributed"]
    print(
        f"distributed ({dp['cpu_count']} cpus): "
        + ", ".join(f"{w}w {sps:.2f} steps/s" for w, sps in dp["workers_steps_per_sec"].items())
        + f" | scaling {dp['scaling_vs_single']:.2f}x"
        + f" | bitwise@1w {'ok' if dp['single_worker_bitwise'] else 'FAIL'}"
    )
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
