"""Figure 1(a) — TNNs under-fit: regularisation hurts, NetBooster helps.

The paper's motivating figure shows that DropBlock — a regulariser designed
for over-fitting large networks — *reduces* MobileNetV2 accuracy on ImageNet,
whereas NetBooster's extra training-time capacity improves it.  This benchmark
reproduces the three-way comparison (Vanilla, Vanilla+DropBlock, NetBooster)
on the synthetic corpus.
"""

from __future__ import annotations

from repro.baselines import insert_dropblock
from repro.train import Trainer
from repro.utils import seed_everything

from common import (
    PROFILE,
    get_corpus,
    get_vanilla_pretrained,
    make_model,
    netbooster_accuracy,
    pretrain_config,
    print_table,
)

# Approximate deltas read off Fig. 1(a): DropBlock loses ~0.3-0.5 points,
# NetBooster gains ~1.3-2.6 points over vanilla training.
PAPER_DELTAS = {"Vanilla": 0.0, "DropBlock": -0.4, "NetBooster": +1.9}
NETWORK = "mobilenetv2-tiny"


def run_fig1a() -> dict[str, float]:
    corpus = get_corpus()
    results: dict[str, float] = {}

    _, vanilla_history = get_vanilla_pretrained(NETWORK)
    results["Vanilla"] = vanilla_history.final_val_accuracy

    seed_everything(PROFILE.seed + 61)
    regularised = insert_dropblock(make_model(NETWORK), drop_prob=0.15, block_size=3)
    config = pretrain_config(PROFILE.pretrain_epochs + PROFILE.finetune_epochs)
    history = Trainer(regularised, config).fit(corpus.train, corpus.val)
    results["DropBlock"] = history.final_val_accuracy

    results["NetBooster"] = netbooster_accuracy(NETWORK)

    rows = [
        [name, f"{PAPER_DELTAS[name]:+.1f}", f"{results[name] - results['Vanilla']:+.1f}", f"{results[name]:.1f}"]
        for name in ("Vanilla", "DropBlock", "NetBooster")
    ]
    print_table(
        "Fig. 1(a) — under-fitting: effect of regularisation vs NetBooster",
        ["method", "paper delta vs vanilla", "measured delta", "measured acc"],
        rows,
    )
    return results


def test_fig1a_underfitting(benchmark):
    results = benchmark.pedantic(run_fig1a, rounds=1, iterations=1)
    # Qualitative shape: DropBlock must not *help* a tiny under-fitting network
    # by a meaningful margin, and NetBooster should not be worse than vanilla
    # (both bounds widened to the CPU-scale single-seed noise floor).
    assert results["DropBlock"] <= results["Vanilla"] + 3.0
    assert results["NetBooster"] >= results["Vanilla"] - 2.5


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_fig1a))
