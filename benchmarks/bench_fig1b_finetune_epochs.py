"""Figure 1(b) — longer finetuning cannot rescue a vanilla-pretrained TNN.

The paper finetunes an ImageNet-pretrained MobileNetV2-35 on CIFAR-100 and
shows that quadrupling the number of finetuning epochs barely moves the
accuracy, while NetBooster's better-pretrained features do.  This benchmark
sweeps the finetuning length for the vanilla-pretrained model and compares the
plateau against the NetBooster-transferred model.
"""

from __future__ import annotations

import copy

from repro.train import evaluate, finetune
from repro.utils import seed_everything

from common import (
    PROFILE,
    finetune_config,
    get_downstream,
    get_pretrained_giant,
    get_vanilla_pretrained,
    make_booster,
    print_table,
)

NETWORK = "mobilenetv2-35"
DATASET = "cifar100"
# Paper: +0.2 points when going from 150 to 600 epochs (vanilla plateaus);
# NetBooster improves by ~+1.3 over the vanilla plateau.
PAPER = {"vanilla 1x": 76.08, "vanilla 4x": 76.3, "NetBooster": 76.66}


def run_fig1b() -> dict[str, float]:
    train_set, val_set = get_downstream(DATASET)
    vanilla_pretrained, _ = get_vanilla_pretrained(NETWORK)
    base_epochs = PROFILE.finetune_epochs

    results: dict[str, float] = {}
    for multiplier, label in ((1, "vanilla 1x"), (4, "vanilla 4x")):
        seed_everything(PROFILE.seed + 71)
        model = copy.deepcopy(vanilla_pretrained)
        history = finetune(
            model,
            train_set,
            val_set,
            finetune_config(epochs=base_epochs * multiplier),
            new_num_classes=train_set.num_classes,
        )
        results[label] = history.final_val_accuracy

    seed_everything(PROFILE.seed + 71)
    giant, records, _ = get_pretrained_giant(NETWORK)
    booster = make_booster()
    booster.plt_finetune(giant, train_set, val_set, new_num_classes=train_set.num_classes)
    results["NetBooster"] = evaluate(booster.contract(giant, records), val_set)

    rows = [
        [label, f"{PAPER[label]:.1f}", f"{results[label]:.1f}"]
        for label in ("vanilla 1x", "vanilla 4x", "NetBooster")
    ]
    print_table(
        f"Fig. 1(b) — finetuning-length sweep on {DATASET} ({NETWORK})",
        ["setting", "paper acc (CIFAR-100)", "measured acc (synthetic)"],
        rows,
    )
    return results


def test_fig1b_finetune_epochs(benchmark):
    results = benchmark.pedantic(run_fig1b, rounds=1, iterations=1)
    # Qualitative shape: 4x more vanilla finetuning gives only a marginal gain
    # (the pretrained features are the bottleneck, paper Constraint 2).  At the
    # CPU scale the 1x budget is far from convergence, so the plateau argument
    # only holds loosely; the bound below rejects a qualitative reversal (4x
    # being transformatively better) without claiming the paper's 0.2-point gap.
    assert results["vanilla 4x"] - results["vanilla 1x"] <= 15.0
    assert results["NetBooster"] >= results["vanilla 1x"] - 8.0


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_fig1b))
