"""Table III — Pascal VOC object detection (AP50) with a MobileNetV2-35 backbone.

The paper transfers ImageNet-pretrained backbones to Pascal VOC and reports
AP50 for Vanilla, NetAug and NetBooster.  Here the corpus-pretrained backbones
are plugged into the tiny anchor-free detector and trained on the synthetic
VOC dataset; the NetBooster backbone runs PLT during detection finetuning and
is contracted before the final evaluation.
"""

from __future__ import annotations

import copy

from repro.baselines import train_with_netaug
from repro.core import PLTSchedule, contract_network
from repro.models import TinyDetector
from repro.train import DetectionTrainer, evaluate_ap50
from repro.utils import seed_everything

from common import (
    PROFILE,
    finetune_config,
    get_corpus,
    get_pretrained_giant,
    get_vanilla_pretrained,
    get_voc,
    make_model,
    pretrain_config,
    print_table,
)

PAPER_TABLE3 = {"Vanilla": 60.8, "NetAug": 62.4, "NetBooster": 62.6}
NETWORK = "mobilenetv2-35"
DETECTION_EPOCHS = 8


def _detection_config():
    config = finetune_config(epochs=DETECTION_EPOCHS, lr=0.05)
    return config.replace(batch_size=16)


def _train_detector(backbone, voc, iteration_callbacks=None) -> TinyDetector:
    seed_everything(PROFILE.seed + 21)
    detector = TinyDetector(backbone, num_classes=voc.num_classes, image_size=voc.resolution)
    trainer = DetectionTrainer(detector, _detection_config(), iteration_callbacks=iteration_callbacks or [])
    trainer.fit(voc.train, None)
    return detector


def run_table3() -> dict[str, float]:
    voc = get_voc()
    corpus = get_corpus()
    results: dict[str, float] = {}

    # Vanilla: classification-pretrained backbone, plain detection finetuning.
    vanilla_backbone, _ = get_vanilla_pretrained(NETWORK)
    detector = _train_detector(vanilla_backbone, voc)
    results["Vanilla"] = evaluate_ap50(detector, voc.val)

    # NetAug: width-augmented pretraining, base network exported for detection.
    seed_everything(PROFILE.seed + 22)
    netaug_backbone, _ = train_with_netaug(
        make_model(NETWORK), corpus.train, None, pretrain_config()
    )
    detector = _train_detector(netaug_backbone, voc)
    results["NetAug"] = evaluate_ap50(detector, voc.val)

    # NetBooster: expanded giant backbone, PLT during detection training, then contraction.
    giant, records, _ = get_pretrained_giant(NETWORK)
    giant = copy.deepcopy(giant)
    iterations_per_epoch = max(len(voc.train) // _detection_config().batch_size, 1)
    schedule = PLTSchedule(giant, total_steps=iterations_per_epoch * max(DETECTION_EPOCHS // 3, 1))
    detector = _train_detector(giant, voc, iteration_callbacks=[lambda _step: schedule.step()])
    schedule.finalize()
    detector.backbone = contract_network(giant, records)
    results["NetBooster"] = evaluate_ap50(detector, voc.val)

    print_table(
        "Table III — detection AP50 (synthetic VOC, MobileNetV2-35 backbone)",
        ["method", "paper AP50 (Pascal VOC)", "measured AP50 (synthetic VOC)"],
        [[method, f"{PAPER_TABLE3[method]:.1f}", f"{results[method]:.1f}"] for method in PAPER_TABLE3],
    )
    return results


def test_table3_detection(benchmark):
    results = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    # Pretrained-backbone detectors should produce a meaningful AP50, and
    # NetBooster should not fall behind vanilla by more than noise.
    assert all(0.0 <= v <= 100.0 for v in results.values())
    assert results["NetBooster"] >= results["Vanilla"] - 10.0


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_table3))
