"""Serving benchmarks: int8 vs float throughput, batching, and the fleet.

Eight lanes, written to ``BENCH_serve.json`` so the perf trajectory is tracked
across PRs and gated by ``scripts/check_bench.py``:

1. **Engine lane** — single-stream throughput (imgs/sec) of the int8 integer
   engine (``repro.compile(model, mode="int8")``) vs the float compiled
   runtime (``repro.compile(model)``) on MobileNetV2-Tiny at batch
   1 / 8 / 64.  The acceptance floor is int8 >= 1.5x float at batches 1-8.
2. **Parallel lane** — the threaded tile engine (``threads="auto"``) vs the
   serial execution of the same tile partition at batch 64.  Outputs are
   asserted bit-identical before timing; the >= 1.5x floor only applies on
   machines with >= 4 CPU cores (a sanity floor elsewhere — see the fleet
   lane note below).
3. **Serving lane** — sustained req/s of the dynamic-batching engine
   (max-batch window, padded assembly) vs serial batch-1 serving, both driven
   by the closed-loop load generator.  The acceptance floor is batched >= 2x
   serial.
4. **Fleet lane** — the supervised multi-process fleet (4 replicas over
   shared memory + loopback sockets) vs the threaded in-process engine with
   the same worker count.  The 1.5x fleet-over-threaded floor only applies
   on machines with >= 4 CPU cores — on fewer cores the replicas time-share
   one core and the IPC overhead cannot be amortized, so the gate drops to a
   sanity floor.  ``cpu_count`` is recorded in the report so the gate can
   tell which regime produced it.
5. **Chaos lane** — the same fleet under fault injection (replica SIGKILLs,
   corrupt replies, slow batches).  Gates: zero lost requests, at least one
   supervised restart actually exercised, all replicas serving again at the
   end of the run, and chaos p99 within a small multiple of the clean p99.
6. **Autoscale lane** — a one-replica fleet with an
   :class:`~repro.serve.AutoscaleController` under a ramped spike of
   open-loop (fixed arrival schedule) load.  Single-replica capacity is
   measured closed-loop first, then the spike offers a multiple of it, so
   the lane self-calibrates to the machine.  Gates: the spike forces at
   least one scale-up, the fleet reconverges to ``min_replicas`` with the
   degradation ladder fully recovered once the spike clears, and zero
   requests are lost throughout.  The post-convergence tail p99 must meet
   the SLO on machines with >= 4 CPU cores (on starved runners the replicas
   time-share one core, so only the robustness gates apply — same regime
   split as the fleet lane).
7. **Cold-start lane** — fleet boot time (``Fleet()`` to all replicas READY)
   compiling the model at boot (init + quantize + calibrate + compile) vs
   loading a pre-compiled artifact (:mod:`repro.runtime.artifact`), on a
   calibration-heavy config where the difference matters.  Both fleets must
   produce bit-identical predictions; the artifact boot must be measurably
   faster (CPU-count independent — this is single-process work).
8. **Fidelity lane** — a one-replica fleet serving a two-rung
   :class:`~repro.serve.fidelity.FidelityLadder` (float above int8 of the
   same model) under the same self-calibrated open-loop spike as the
   autoscale lane, pinned at ``max_replicas`` so the controller's only move
   is the ladder.  Records the per-rung latency/agreement tradeoff curve and
   gates that the *first* degradation step was a fidelity drop (not a shed),
   that the low rung actually served work, that the ladder recovered to the
   top rung at idle, and that zero requests were lost.

Also records the int8-vs-fake-quant parity error (max |logit delta|), so a
perf win can never silently trade away correctness.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

import repro
from repro import nn
from repro.compress import calibrate, quantize_model
from repro.models import create_model
from repro.serve import Engine, build_server
from repro.serve.autoscale import AutoscaleController, SLOConfig
from repro.serve.fleet import Fleet, FleetConfig
from repro.serve.loadgen import run_load
from repro.utils import seed_everything

FLEET_REPLICAS = 4
FLEET_CHAOS = "kill:prob=0.02,max=2;corrupt:prob=0.01,max=5;slow:prob=0.05,ms=2"

AUTOSCALE_SPIKE_MULT = 3.0
AUTOSCALE_SPIKE_WINDOW = (0.25, 0.55)
# one submitting thread must outrun the schedule, so the spike peak is capped
AUTOSCALE_MAX_SPIKE_RATE = 2400.0


def interleaved_median_ms(fn_a, fn_b, repeats: int, warmup: int = 5) -> tuple[float, float]:
    """Median wall time of two competing lanes, measured strictly interleaved.

    Alternating the lanes rep-by-rep means both see the same machine state
    (thermal drift, cache pressure), which keeps the *ratio* stable across
    runs — the ratio is what the gate checks.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    times_a, times_b = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - start)
    return float(np.median(times_a) * 1e3), float(np.median(times_b) * 1e3)


def build_engines(model_name: str, resolution: int, seed: int = 0):
    """Float-compiled and int8-compiled engines over the same architecture."""
    seed_everything(seed)
    rng = np.random.default_rng(seed)
    model = create_model(model_name, num_classes=16)
    model.eval()
    float_net = repro.compile(model)  # snapshot before fake-quant rewrites weights
    quantize_model(model)
    calibrate(
        model,
        [rng.normal(0.2, 0.8, size=(8, 3, resolution, resolution)).astype(np.float32) for _ in range(2)],
    )
    int8_net = repro.compile(model, mode="int8")
    return float_net, int8_net, model


def engine_lane(float_net, int8_net, model, resolution: int, repeats: int, rng) -> dict:
    results: dict[str, dict] = {}
    for batch in (1, 8, 64):
        x = rng.normal(0.2, 0.8, size=(batch, 3, resolution, resolution)).astype(np.float32)
        n = repeats if batch < 64 else max(3, repeats // 3)
        float_ms, int8_ms = interleaved_median_ms(
            lambda: float_net.numpy_forward(x), lambda: int8_net.numpy_forward(x), n
        )
        results[f"batch{batch}"] = {
            "float_ms": float_ms,
            "int8_ms": int8_ms,
            "float_imgs_per_sec": batch / float_ms * 1e3,
            "int8_imgs_per_sec": batch / int8_ms * 1e3,
            "speedup_int8_vs_float": float_ms / int8_ms,
        }
    # parity: the integer engine must track the fake-quant oracle
    x = rng.normal(0.2, 0.8, size=(8, 3, resolution, resolution)).astype(np.float32)
    with nn.no_grad():
        oracle = model(nn.Tensor(x)).numpy()
    results["parity_max_abs_logit_delta"] = float(
        np.abs(int8_net.numpy_forward(x) - oracle).max()
    )
    return results


def parallel_lane(model, resolution: int, repeats: int, rng) -> dict:
    """Threaded tile engine (``threads=auto``) vs serial batch-64 throughput.

    Both engines execute the identical tile partition (the partition is a
    pure function of the batch), so outputs are asserted bit-identical before
    any timing; only wall-clock may differ.  ``cpu_count`` is recorded so
    ``scripts/check_bench.py`` can pick the right gate regime — starved
    runners (< 4 cores) only get a sanity floor.
    """
    batch = 64
    x = rng.normal(0.2, 0.8, size=(batch, 3, resolution, resolution)).astype(np.float32)
    serial = repro.compile(model, mode="int8", threads=1)
    threaded = repro.compile(model, mode="int8", threads="auto")
    if not np.array_equal(serial.numpy_forward(x), threaded.numpy_forward(x)):
        raise AssertionError("threaded int8 engine diverged from serial tile execution")
    n = max(3, repeats // 3)
    serial_ms, threaded_ms = interleaved_median_ms(
        lambda: serial.numpy_forward(x), lambda: threaded.numpy_forward(x), n
    )
    return {
        "batch": batch,
        "cpus": os.cpu_count() or 1,
        "threads": threaded.threads,
        "serial_ms": serial_ms,
        "threaded_ms": threaded_ms,
        "serial_imgs_per_sec": batch / serial_ms * 1e3,
        "threaded_imgs_per_sec": batch / threaded_ms * 1e3,
        "parallel_speedup": serial_ms / threaded_ms,
        "bit_identical": True,
    }


def serving_lane(int8_net, resolution: int, n_requests: int) -> dict:
    shape = (3, resolution, resolution)
    with Engine(int8_net, shape, max_batch=1, max_wait_ms=0.0, workers=1) as serial:
        serial_report = run_load(serial, n_requests=n_requests, concurrency=1, warmup=8)
    with Engine(int8_net, shape, max_batch=16, max_wait_ms=2.0, workers=1) as batched:
        batched_report = run_load(batched, n_requests=n_requests, concurrency=32, warmup=16)
        batched_stats = batched.stats()
    return {
        "serial_req_per_sec": serial_report.requests_per_sec,
        "serial_p50_ms": serial_report.latency_ms_p50,
        "batched_req_per_sec": batched_report.requests_per_sec,
        "batched_p50_ms": batched_report.latency_ms_p50,
        "batched_p99_ms": batched_report.latency_ms_p99,
        "batched_mean_batch_size": batched_stats.mean_batch_size,
        "speedup_batched_vs_serial": batched_report.requests_per_sec
        / max(serial_report.requests_per_sec, 1e-9),
    }


def _fleet_run(resolution: int, n_requests: int, chaos: str | None):
    """One closed-loop load run against a fresh replica fleet."""
    config = FleetConfig(
        replicas=FLEET_REPLICAS,
        max_batch=16,
        max_wait_ms=2.0,
        max_pending=256,
        max_attempts=6,
        builder_kwargs={
            "model_name": "mobilenetv2-tiny",
            "resolution": resolution,
            "engine": "int8",
        },
        chaos=chaos,
    )
    with Fleet(config) as fleet:
        fleet.wait_ready(replicas=FLEET_REPLICAS, timeout=120.0)
        with fleet.client(timeout=60.0, retries=6) as client:
            report = run_load(client, n_requests=n_requests, concurrency=32, warmup=16, timeout=60.0)
        # "serving again within the run": give restarts in flight a moment to
        # finish, then count ready replicas BEFORE the drain stops everything
        deadline = time.monotonic() + 10.0
        while fleet.stats().ready < FLEET_REPLICAS and time.monotonic() < deadline:
            time.sleep(0.05)
        ready_at_end = fleet.stats().ready
        fleet.close()  # drain before reading the final counters
        stats = fleet.stats()
        stats.ready = ready_at_end
    return report, stats


def fleet_lane(resolution: int, n_requests: int) -> dict:
    """Multi-process fleet vs the threaded engine, clean and under chaos."""
    threaded = build_server(
        "mobilenetv2-tiny",
        resolution=resolution,
        workers=FLEET_REPLICAS,
        max_batch=16,
        max_wait_ms=2.0,
    )
    with threaded:
        threaded_report = run_load(threaded, n_requests=n_requests, concurrency=32, warmup=16)

    clean_report, clean_stats = _fleet_run(resolution, n_requests, chaos=None)
    chaos_report, chaos_stats = _fleet_run(resolution, n_requests, chaos=FLEET_CHAOS)

    clean_p99 = clean_report.latency_ms_p99
    return {
        "replicas": FLEET_REPLICAS,
        "cpu_count": os.cpu_count(),
        "threaded_req_per_sec": threaded_report.requests_per_sec,
        "threaded_p99_ms": threaded_report.latency_ms_p99,
        "fleet_req_per_sec": clean_report.requests_per_sec,
        "fleet_p50_ms": clean_report.latency_ms_p50,
        "fleet_p99_ms": clean_p99,
        "speedup_fleet_vs_threaded": clean_report.requests_per_sec
        / max(threaded_report.requests_per_sec, 1e-9),
        "clean_lost": clean_stats.lost,
        "clean_errors": clean_report.errors,
        "chaos": {
            "spec": FLEET_CHAOS,
            "req_per_sec": chaos_report.requests_per_sec,
            "p99_ms": chaos_report.latency_ms_p99,
            "p99_ratio_vs_clean": chaos_report.latency_ms_p99 / max(clean_p99, 1e-9),
            "lost": chaos_stats.lost,
            "load_errors": chaos_report.errors,
            "load_timeouts": chaos_report.timeouts,
            "typed_errors": chaos_stats.errors,
            "restarts": chaos_stats.restarts,
            "crashes_detected": chaos_stats.crashes_detected,
            "corrupt_detected": chaos_stats.corrupt_detected,
            "requeued": chaos_stats.requeued,
            "ready_at_end": chaos_stats.ready,
        },
    }


def autoscale_lane(resolution: int, smoke: bool) -> dict:
    """SLO-driven autoscaling under an open-loop traffic spike.

    The lane self-calibrates: it measures single-replica capacity closed-loop
    against the live fleet, offers ``0.7x`` of that as the base rate and
    multiplies it by ``AUTOSCALE_SPIKE_MULT`` inside the spike window — a load
    one replica provably cannot absorb, whatever the machine.  The p99 SLO is
    derived from the measured baseline the same way.  After the schedule ends
    the lane waits for the controller to walk the fleet back to the floor and
    the degradation ladder back to level 0 before snapshotting.
    """
    cpus = os.cpu_count() or 1
    max_replicas = 4 if cpus >= 4 else 2
    config = FleetConfig(
        replicas=1,
        max_replicas=max_replicas,
        max_batch=16,
        max_wait_ms=2.0,
        max_pending=512,
        max_attempts=6,
        stats_window_s=1.5,
        builder_kwargs={
            "model_name": "mobilenetv2-tiny",
            "resolution": resolution,
            "engine": "int8",
        },
    )
    with Fleet(config) as fleet:
        fleet.wait_ready(replicas=1, timeout=120.0)
        with fleet.client(timeout=60.0, retries=6) as client:
            base = run_load(
                client, n_requests=300 if smoke else 600, concurrency=8, warmup=16, timeout=60.0
            )
        capacity = base.requests_per_sec
        slo_p99 = max(25.0, base.latency_ms_p99 * 6.0)
        rate = min(0.7 * capacity, AUTOSCALE_MAX_SPIKE_RATE / AUTOSCALE_SPIKE_MULT)
        duration = 6.0 if smoke else 10.0
        slo = SLOConfig(
            p99_target_ms=slo_p99,
            queue_target=4.0,
            min_replicas=1,
            max_replicas=max_replicas,
            interval=0.1,
            window=3,
            up_cooldown=0.3,
            down_cooldown=0.6,
            ladder_patience=3,
            recover_patience=2,
        )
        with AutoscaleController(fleet, slo) as controller:
            with fleet.client(timeout=60.0, retries=6) as client:
                report = run_load(
                    client,
                    n_requests=0,
                    warmup=8,
                    timeout=60.0,
                    mode="open",
                    rate=rate,
                    duration_s=duration,
                    traffic="spike",
                    spike_mult=AUTOSCALE_SPIKE_MULT,
                    spike_window=AUTOSCALE_SPIKE_WINDOW,
                )
            # idle reconvergence: the controller must walk back to the floor
            # and fully recover the ladder once the spike clears
            deadline = time.monotonic() + slo.down_cooldown * (max_replicas + 2) + 15.0
            while time.monotonic() < deadline:
                if controller.target <= slo.min_replicas and controller.level == 0:
                    break
                time.sleep(0.05)
            state = controller.state()
        fleet.close()  # drain before reading the final counters
        stats = fleet.stats()
    return {
        "cpu_count": cpus,
        "min_replicas": slo.min_replicas,
        "max_replicas": max_replicas,
        "capacity_req_per_sec": capacity,
        "slo_p99_ms": slo_p99,
        "offered_rate": report.offered_rate,
        "spike_mult": AUTOSCALE_SPIKE_MULT,
        "duration_s": duration,
        "offered": report.offered,
        "completed": report.requests,
        "errors": report.errors,
        "timeouts": report.timeouts,
        "p99_ms": report.latency_ms_p99,
        "p99_tail_ms": report.latency_ms_p99_tail,
        "lost": stats.lost,
        "shed": stats.shed,
        "scale_ups": state["scale_ups"],
        "scale_downs": state["scale_downs"],
        "degrades": state["degrades"],
        "recoveries": state["recoveries"],
        "peak_target": state["peak_target"],
        "final_target": state["target"],
        "final_level": state["level"],
        "history": state["history"],
    }


COLD_START_MODEL = "mobilenetv2-100"
COLD_START_RESOLUTION = 32
COLD_START_CALIBRATION = 16
COLD_START_REPLICAS = 2

FIDELITY_RUNGS = "float:mobilenetv2-tiny,int8:mobilenetv2-tiny"


def cold_start_lane(smoke: bool) -> dict:
    """Fleet boot: compile-at-boot vs artifact-load, bit-identity asserted.

    Uses a calibration-heavy int8 config (``COLD_START_CALIBRATION`` batches
    on ``COLD_START_MODEL``) because calibration is the honest cost an
    artifact skips — trace/passes/build are sub-millisecond once the process
    is warm, so a calibration-light config would measure nothing.
    """
    import shutil
    import tempfile

    from repro.serve.fleet import resolve_net

    repeats = 2 if smoke else 3
    recipe = {
        "model_name": COLD_START_MODEL,
        "resolution": COLD_START_RESOLUTION,
        "engine": "int8",
        "calibration_batches": COLD_START_CALIBRATION,
    }
    # the artifact is produced once, outside the timers, from the identical
    # recipe the compile-at-boot path runs — so the fleets must agree bitwise
    net, shape = resolve_net(**recipe)
    tmp = tempfile.mkdtemp(prefix="bench-artifact-")
    path = os.path.join(tmp, "net.rpa")
    start = time.perf_counter()
    info = net.save(path, input_shape=shape)
    save_ms = (time.perf_counter() - start) * 1e3

    probe = np.random.default_rng(7).normal(0.2, 0.8, size=shape).astype(np.float32)

    def boot(builder_kwargs):
        config = FleetConfig(
            replicas=COLD_START_REPLICAS,
            max_batch=8,
            max_wait_ms=1.0,
            max_pending=64,
            builder_kwargs=builder_kwargs,
        )
        start = time.perf_counter()
        with Fleet(config) as fleet:
            fleet.wait_ready(replicas=COLD_START_REPLICAS, timeout=180.0)
            boot_ms = (time.perf_counter() - start) * 1e3
            stats = fleet.stats()
            with fleet.client(timeout=60.0) as client:
                prediction = client.predict(probe, timeout=60.0)
        return boot_ms, stats.cold_start_ms_mean, prediction

    try:
        compile_boots, artifact_boots = [], []
        compile_cold, artifact_cold = [], []
        compile_pred = artifact_pred = None
        for _ in range(repeats):
            boot_ms, cold_ms, compile_pred = boot(recipe)
            compile_boots.append(boot_ms)
            compile_cold.append(cold_ms)
            boot_ms, cold_ms, artifact_pred = boot({"artifact": path})
            artifact_boots.append(boot_ms)
            artifact_cold.append(cold_ms)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    compile_boot_ms = float(np.median(compile_boots))
    artifact_boot_ms = float(np.median(artifact_boots))
    return {
        "model": COLD_START_MODEL,
        "resolution": COLD_START_RESOLUTION,
        "calibration_batches": COLD_START_CALIBRATION,
        "replicas": COLD_START_REPLICAS,
        "repeats": repeats,
        "artifact_bytes": info.nbytes,
        "artifact_save_ms": save_ms,
        "compile_boot_ms": compile_boot_ms,
        "artifact_boot_ms": artifact_boot_ms,
        "boot_speedup_artifact_vs_compile": compile_boot_ms / max(artifact_boot_ms, 1e-9),
        "compile_replica_cold_start_ms": float(np.mean(compile_cold)),
        "artifact_replica_cold_start_ms": float(np.mean(artifact_cold)),
        "outputs_bit_identical": bool(np.array_equal(compile_pred, artifact_pred)),
    }


def fidelity_lane(resolution: int, smoke: bool) -> dict:
    """Multi-fidelity ladder under an open-loop spike, pinned at max capacity.

    ``max_replicas=1`` removes scale-up from the controller's toolbox, so a
    spike that out-runs rung 0 leaves exactly one graceful move: drop
    fidelity.  The lane records the per-rung latency/agreement tradeoff curve
    first (closed-loop at a fixed rung), then the spike, then checks the
    ladder recovered to the top rung once traffic cleared.
    """
    cpus = os.cpu_count() or 1
    config = FleetConfig(
        replicas=1,
        max_replicas=1,
        max_batch=16,
        max_wait_ms=2.0,
        max_pending=512,
        max_attempts=6,
        stats_window_s=1.5,
        builder="repro.serve.fidelity:ladder_backend",
        builder_kwargs={
            "rungs": FIDELITY_RUNGS,
            "resolution": resolution,
            "probe_batch": 64,
        },
    )
    n_requests = 300 if smoke else 600
    with Fleet(config) as fleet:
        fleet.wait_ready(replicas=1, timeout=120.0)
        curve = []
        for rung in range(fleet.fidelity_rungs):
            fleet.set_fidelity(rung, reason="bench")
            time.sleep(0.2)
            with fleet.client(timeout=60.0, retries=6) as client:
                rung_report = run_load(
                    client, n_requests=n_requests, concurrency=8, warmup=16, timeout=60.0
                )
            curve.append(
                {
                    "rung": rung,
                    "req_per_sec": rung_report.requests_per_sec,
                    "p50_ms": rung_report.latency_ms_p50,
                    "p99_ms": rung_report.latency_ms_p99,
                }
            )
        fleet.set_fidelity(0, reason="bench")
        snapshot = fleet.stats().to_dict()["fidelity"]
        for point, rung_stats in zip(curve, snapshot["rungs"]):
            point["name"] = rung_stats["name"]
            point["agreement"] = rung_stats["agreement"]
        served_before = [r["completed"] for r in snapshot["rungs"]]

        capacity = curve[0]["req_per_sec"]
        slo_p99 = max(25.0, curve[0]["p99_ms"] * 6.0)
        rate = min(0.7 * capacity, AUTOSCALE_MAX_SPIKE_RATE / AUTOSCALE_SPIKE_MULT)
        duration = 6.0 if smoke else 10.0
        slo = SLOConfig(
            p99_target_ms=slo_p99,
            queue_target=4.0,
            min_replicas=1,
            max_replicas=1,
            interval=0.1,
            window=3,
            up_cooldown=0.3,
            down_cooldown=0.6,
            ladder_patience=2,
            recover_patience=2,
        )
        with AutoscaleController(fleet, slo) as controller:
            with fleet.client(timeout=60.0, retries=6) as client:
                report = run_load(
                    client,
                    n_requests=0,
                    warmup=8,
                    timeout=60.0,
                    mode="open",
                    rate=rate,
                    duration_s=duration,
                    traffic="spike",
                    spike_mult=AUTOSCALE_SPIKE_MULT,
                    spike_window=AUTOSCALE_SPIKE_WINDOW,
                )
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if controller.level == 0:
                    break
                time.sleep(0.05)
            state = controller.state()
        fleet.close()  # drain before reading the final counters
        stats = fleet.stats()
    fidelity = stats.to_dict()["fidelity"]
    low_rung_served = sum(
        r["completed"] - before
        for r, before in list(zip(fidelity["rungs"], served_before))[1:]
    )
    degrade_levels = [h["level"] for h in state["history"] if h["decision"] == "degrade"]
    return {
        "cpu_count": cpus,
        "rungs": FIDELITY_RUNGS,
        "tradeoff_curve": curve,
        "capacity_req_per_sec": capacity,
        "slo_p99_ms": slo_p99,
        "offered_rate": report.offered_rate,
        "spike_mult": AUTOSCALE_SPIKE_MULT,
        "duration_s": duration,
        "offered": report.offered,
        "completed": report.requests,
        "errors": report.errors,
        "timeouts": report.timeouts,
        "lost": stats.lost,
        "shed": stats.shed,
        "degrades": state["degrades"],
        "recoveries": state["recoveries"],
        "first_degrade_level": degrade_levels[0] if degrade_levels else None,
        "fidelity_rungs": state["fidelity_rungs"],
        "final_level": state["level"],
        "final_rung": fidelity["active_rung"],
        "rung_switches": fidelity["switches"],
        "low_rung_served": low_rung_served,
        "history": state["history"],
    }


def run_benchmarks(smoke: bool, repeats: int) -> dict:
    resolution = 12  # the MCU-scale substrate: experiments run 12-16 px inputs
    n_requests = 1500 if smoke else 3000
    fleet_requests = 1200 if smoke else 2500
    float_net, int8_net, model = build_engines("mobilenetv2-tiny", resolution)
    rng = np.random.default_rng(1)
    return {
        "model": "mobilenetv2-tiny",
        "resolution": resolution,
        "engine": engine_lane(float_net, int8_net, model, resolution, repeats, rng),
        "parallel": parallel_lane(model, resolution, repeats, rng),
        "serving": serving_lane(int8_net, resolution, n_requests),
        "fleet": fleet_lane(resolution, fleet_requests),
        "autoscale": autoscale_lane(resolution, smoke),
        "cold_start": cold_start_lane(smoke),
        "fidelity": fidelity_lane(resolution, smoke),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per point")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()
    repeats = args.repeats if args.repeats is not None else (15 if args.smoke else 40)

    results = run_benchmarks(smoke=args.smoke, repeats=repeats)
    report = {
        "suite": "bench_serve",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "benchmarks": results,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    engine = results["engine"]
    print(f"{'batch':>6s} {'float ms':>10s} {'int8 ms':>10s} {'speedup':>8s}")
    for batch in (1, 8, 64):
        row = engine[f"batch{batch}"]
        print(
            f"{batch:>6d} {row['float_ms']:>10.3f} {row['int8_ms']:>10.3f} "
            f"{row['speedup_int8_vs_float']:>7.2f}x"
        )
    print(f"parity max |logit delta| : {engine['parity_max_abs_logit_delta']:.4f}")
    par = results["parallel"]
    print(
        f"parallel (batch {par['batch']}, {par['threads']} threads on {par['cpus']} cpus): "
        f"serial {par['serial_imgs_per_sec']:.0f} img/s, "
        f"threaded {par['threaded_imgs_per_sec']:.0f} img/s "
        f"({par['parallel_speedup']:.2f}x, bit-identical)"
    )
    serving = results["serving"]
    print(
        f"serving: serial {serving['serial_req_per_sec']:.0f} req/s, "
        f"batched {serving['batched_req_per_sec']:.0f} req/s "
        f"({serving['speedup_batched_vs_serial']:.2f}x, "
        f"mean batch {serving['batched_mean_batch_size']:.1f})"
    )
    fleet = results["fleet"]
    chaos = fleet["chaos"]
    print(
        f"fleet ({fleet['replicas']} replicas, {fleet['cpu_count']} cpus): "
        f"threaded {fleet['threaded_req_per_sec']:.0f} req/s, "
        f"fleet {fleet['fleet_req_per_sec']:.0f} req/s "
        f"({fleet['speedup_fleet_vs_threaded']:.2f}x), p99 {fleet['fleet_p99_ms']:.1f} ms"
    )
    print(
        f"chaos: {chaos['req_per_sec']:.0f} req/s, p99 {chaos['p99_ms']:.1f} ms "
        f"({chaos['p99_ratio_vs_clean']:.2f}x clean), lost {chaos['lost']}, "
        f"restarts {chaos['restarts']} ({chaos['crashes_detected']} crashes, "
        f"{chaos['corrupt_detected']} corrupt caught), "
        f"ready at end {chaos['ready_at_end']}/{fleet['replicas']}"
    )
    scale = results["autoscale"]
    tail = scale["p99_tail_ms"]
    print(
        f"autoscale [{scale['min_replicas']}..{scale['max_replicas']}]: "
        f"spike {scale['offered_rate']:.0f} req/s offered "
        f"({scale['spike_mult']:.0f}x burst vs {scale['capacity_req_per_sec']:.0f} capacity), "
        f"peak target {scale['peak_target']}, final {scale['final_target']} "
        f"(level {scale['final_level']}), "
        f"{scale['scale_ups']} up / {scale['scale_downs']} down / "
        f"{scale['degrades']} degrade, "
        + (
            f"tail p99 {tail:.1f} ms vs SLO {scale['slo_p99_ms']:.0f} ms"
            if tail is not None
            else "tail p99 n/a"
        )
        + f", lost {scale['lost']}, shed {scale['shed']}"
    )
    cold = results["cold_start"]
    print(
        f"cold start ({cold['model']}@{cold['resolution']}, "
        f"{cold['calibration_batches']} calib batches, {cold['replicas']} replicas): "
        f"compile-at-boot {cold['compile_boot_ms']:.0f} ms vs artifact "
        f"{cold['artifact_boot_ms']:.0f} ms "
        f"({cold['boot_speedup_artifact_vs_compile']:.2f}x, "
        f"{cold['artifact_bytes'] / 1024:.0f} kB file, "
        f"bit-identical {cold['outputs_bit_identical']})"
    )
    fid = results["fidelity"]
    curve_txt = "; ".join(
        f"{p['name']}: {p['req_per_sec']:.0f} req/s, p99 {p['p99_ms']:.1f} ms, "
        f"agree {p['agreement']:.2f}"
        for p in fid["tradeoff_curve"]
    )
    print(f"fidelity curve: {curve_txt}")
    print(
        f"fidelity spike: first degrade at level {fid['first_degrade_level']} "
        f"(fidelity floor {fid['fidelity_rungs'] - 1}), "
        f"{fid['low_rung_served']} served below top rung, "
        f"{fid['rung_switches']} switches, final rung {fid['final_rung']} "
        f"(level {fid['final_level']}), lost {fid['lost']}, shed {fid['shed']}"
    )
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
