"""Serving benchmarks: int8 vs float compiled throughput, batched vs serial.

Two lanes, written to ``BENCH_serve.json`` so the perf trajectory is tracked
across PRs and gated by ``scripts/check_bench.py``:

1. **Engine lane** — single-stream throughput (imgs/sec) of the int8 integer
   engine (``repro.compile(model, mode="int8")``) vs the float compiled
   runtime (``repro.compile(model)``) on MobileNetV2-Tiny at batch
   1 / 8 / 64.  The acceptance floor is int8 >= 1.5x float at batches 1-8.
2. **Serving lane** — sustained req/s of the dynamic-batching engine
   (max-batch window, padded assembly) vs serial batch-1 serving, both driven
   by the closed-loop load generator.  The acceptance floor is batched >= 2x
   serial.

Also records the int8-vs-fake-quant parity error (max |logit delta|), so a
perf win can never silently trade away correctness.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro
from repro import nn
from repro.compress import calibrate, quantize_model
from repro.models import create_model
from repro.serve import Engine
from repro.serve.loadgen import run_load
from repro.utils import seed_everything


def interleaved_median_ms(fn_a, fn_b, repeats: int, warmup: int = 5) -> tuple[float, float]:
    """Median wall time of two competing lanes, measured strictly interleaved.

    Alternating the lanes rep-by-rep means both see the same machine state
    (thermal drift, cache pressure), which keeps the *ratio* stable across
    runs — the ratio is what the gate checks.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    times_a, times_b = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - start)
    return float(np.median(times_a) * 1e3), float(np.median(times_b) * 1e3)


def build_engines(model_name: str, resolution: int, seed: int = 0):
    """Float-compiled and int8-compiled engines over the same architecture."""
    seed_everything(seed)
    rng = np.random.default_rng(seed)
    model = create_model(model_name, num_classes=16)
    model.eval()
    float_net = repro.compile(model)  # snapshot before fake-quant rewrites weights
    quantize_model(model)
    calibrate(
        model,
        [rng.normal(0.2, 0.8, size=(8, 3, resolution, resolution)).astype(np.float32) for _ in range(2)],
    )
    int8_net = repro.compile(model, mode="int8")
    return float_net, int8_net, model


def engine_lane(float_net, int8_net, model, resolution: int, repeats: int, rng) -> dict:
    results: dict[str, dict] = {}
    for batch in (1, 8, 64):
        x = rng.normal(0.2, 0.8, size=(batch, 3, resolution, resolution)).astype(np.float32)
        n = repeats if batch < 64 else max(3, repeats // 3)
        float_ms, int8_ms = interleaved_median_ms(
            lambda: float_net.numpy_forward(x), lambda: int8_net.numpy_forward(x), n
        )
        results[f"batch{batch}"] = {
            "float_ms": float_ms,
            "int8_ms": int8_ms,
            "float_imgs_per_sec": batch / float_ms * 1e3,
            "int8_imgs_per_sec": batch / int8_ms * 1e3,
            "speedup_int8_vs_float": float_ms / int8_ms,
        }
    # parity: the integer engine must track the fake-quant oracle
    x = rng.normal(0.2, 0.8, size=(8, 3, resolution, resolution)).astype(np.float32)
    with nn.no_grad():
        oracle = model(nn.Tensor(x)).numpy()
    results["parity_max_abs_logit_delta"] = float(
        np.abs(int8_net.numpy_forward(x) - oracle).max()
    )
    return results


def serving_lane(int8_net, resolution: int, n_requests: int) -> dict:
    shape = (3, resolution, resolution)
    with Engine(int8_net, shape, max_batch=1, max_wait_ms=0.0, workers=1) as serial:
        serial_report = run_load(serial, n_requests=n_requests, concurrency=1, warmup=8)
    with Engine(int8_net, shape, max_batch=16, max_wait_ms=2.0, workers=1) as batched:
        batched_report = run_load(batched, n_requests=n_requests, concurrency=32, warmup=16)
        batched_stats = batched.stats()
    return {
        "serial_req_per_sec": serial_report.requests_per_sec,
        "serial_p50_ms": serial_report.latency_ms_p50,
        "batched_req_per_sec": batched_report.requests_per_sec,
        "batched_p50_ms": batched_report.latency_ms_p50,
        "batched_p99_ms": batched_report.latency_ms_p99,
        "batched_mean_batch_size": batched_stats.mean_batch_size,
        "speedup_batched_vs_serial": batched_report.requests_per_sec
        / max(serial_report.requests_per_sec, 1e-9),
    }


def run_benchmarks(smoke: bool, repeats: int) -> dict:
    resolution = 12  # the MCU-scale substrate: experiments run 12-16 px inputs
    n_requests = 1500 if smoke else 3000
    float_net, int8_net, model = build_engines("mobilenetv2-tiny", resolution)
    rng = np.random.default_rng(1)
    return {
        "model": "mobilenetv2-tiny",
        "resolution": resolution,
        "engine": engine_lane(float_net, int8_net, model, resolution, repeats, rng),
        "serving": serving_lane(int8_net, resolution, n_requests),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per point")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()
    repeats = args.repeats if args.repeats is not None else (15 if args.smoke else 40)

    results = run_benchmarks(smoke=args.smoke, repeats=repeats)
    report = {
        "suite": "bench_serve",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "benchmarks": results,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    engine = results["engine"]
    print(f"{'batch':>6s} {'float ms':>10s} {'int8 ms':>10s} {'speedup':>8s}")
    for batch in (1, 8, 64):
        row = engine[f"batch{batch}"]
        print(
            f"{batch:>6d} {row['float_ms']:>10.3f} {row['int8_ms']:>10.3f} "
            f"{row['speedup_int8_vs_float']:>7.2f}x"
        )
    print(f"parity max |logit delta| : {engine['parity_max_abs_logit_delta']:.4f}")
    serving = results["serving"]
    print(
        f"serving: serial {serving['serial_req_per_sec']:.0f} req/s, "
        f"batched {serving['batched_req_per_sec']:.0f} req/s "
        f"({serving['speedup_batched_vs_serial']:.2f}x, "
        f"mean batch {serving['batched_mean_batch_size']:.1f})"
    )
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
