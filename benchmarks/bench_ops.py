"""Operator-level microbenchmarks for the compute core.

Times the hot primitives (conv2d forward/backward, depthwise conv, pointwise
conv, max-pool, batch-norm) and an end-to-end MobileNetV2-Tiny inference step,
comparing the stride-trick/fused implementations against the seed's
copy-based im2col implementation (re-created here verbatim).  Results are
written to ``BENCH_ops.json`` so successive PRs can track the perf trajectory.

Run with::

    PYTHONPATH=src python benchmarks/bench_ops.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_ops.py --smoke    # CI-sized

This is a standalone script (not a pytest-benchmark suite) so CI can invoke
it cheaply.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro
from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.models import create_model
from repro.utils import seed_everything


# --------------------------------------------------------------------------- #
# seed (copy-based im2col) reference implementations
# --------------------------------------------------------------------------- #
def _col2im_reference(cols, input_shape, kernel, stride, padding):
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = F.conv_output_size(h, kh, stride, padding)
    out_w = F.conv_output_size(w, kw, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def seed_conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride=1, padding=0, groups=1):
    """The seed repo's conv2d: copy-based im2col + grouped einsum + col2im."""
    xd, wd = x.data, weight.data
    n, c_in, h, w = xd.shape
    c_out, c_in_g, kh, kw = wd.shape
    out_h = F.conv_output_size(h, kh, stride, padding)
    out_w = F.conv_output_size(w, kw, stride, padding)

    cols = F.im2col_reference(xd, (kh, kw), stride, padding)
    cols_mat = cols.reshape(n, groups, c_in_g * kh * kw, out_h * out_w)
    w_mat = wd.reshape(groups, c_out // groups, c_in_g * kh * kw)
    out = np.einsum("goc,ngcp->ngop", w_mat, cols_mat, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        grad_mat = grad.reshape(n, groups, c_out // groups, out_h * out_w)
        if weight.requires_grad:
            grad_w = np.einsum("ngop,ngcp->goc", grad_mat, cols_mat, optimize=True)
            weight._accumulate(grad_w.reshape(wd.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.einsum("goc,ngop->ngcp", w_mat, grad_mat, optimize=True)
            grad_cols = grad_cols.reshape(n, c_in, kh, kw, out_h, out_w)
            x._accumulate(_col2im_reference(grad_cols, xd.shape, (kh, kw), stride, padding))

    return Tensor._make(out, parents, backward)


def seed_max_pool2d(x: Tensor, kernel: int, stride=None, padding=0):
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    cols = F.im2col_reference(xd, (kernel, kernel), stride, padding)
    flat = cols.reshape(n, c, kernel * kernel, cols.shape[4], cols.shape[5])
    return Tensor(flat.max(axis=2))


# --------------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------------- #
def median_ms(fn, repeats: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append((time.perf_counter() - start) * 1e3)
    return float(np.median(timings))


def run_benchmarks(smoke: bool, repeats: int) -> dict:
    seed_everything(0)
    rng = np.random.default_rng(0)
    results: dict[str, dict] = {}

    if smoke:
        conv_x = rng.normal(size=(4, 8, 16, 16)).astype(np.float32)
        conv_w = rng.normal(size=(16, 8, 3, 3)).astype(np.float32)
        dw_x = rng.normal(size=(4, 16, 16, 16)).astype(np.float32)
        dw_w = rng.normal(size=(16, 1, 3, 3)).astype(np.float32)
        pw_w = rng.normal(size=(24, 8, 1, 1)).astype(np.float32)
        pool_x = rng.normal(size=(4, 8, 16, 16)).astype(np.float32)
        bn_x = rng.normal(size=(4, 16, 16, 16)).astype(np.float32)
        infer_batch = 4
        resolution = 16
    else:
        conv_x = rng.normal(size=(16, 16, 28, 28)).astype(np.float32)
        conv_w = rng.normal(size=(32, 16, 3, 3)).astype(np.float32)
        dw_x = rng.normal(size=(16, 32, 28, 28)).astype(np.float32)
        dw_w = rng.normal(size=(32, 1, 3, 3)).astype(np.float32)
        pw_w = rng.normal(size=(48, 16, 1, 1)).astype(np.float32)
        pool_x = rng.normal(size=(16, 16, 28, 28)).astype(np.float32)
        bn_x = rng.normal(size=(16, 32, 28, 28)).astype(np.float32)
        infer_batch = 8
        resolution = 24

    # ---------------------------------------------------------- conv2d forward
    with nn.no_grad():
        new_t = median_ms(lambda: F.conv2d(Tensor(conv_x), Tensor(conv_w), stride=1, padding=1), repeats)
        seed_t = median_ms(lambda: seed_conv2d(Tensor(conv_x), Tensor(conv_w), stride=1, padding=1), repeats)
    results["conv2d_fwd_3x3_s1"] = {
        "median_ms": new_t,
        "seed_median_ms": seed_t,
        "speedup": seed_t / new_t,
    }

    # --------------------------------------------------- conv2d forward+backward
    def fwd_bwd(conv_fn):
        x = Tensor(conv_x, requires_grad=True)
        w = Tensor(conv_w, requires_grad=True)
        out = conv_fn(x, w, stride=1, padding=1)
        out.backward(np.ones_like(out.data))

    new_t = median_ms(lambda: fwd_bwd(F.conv2d), repeats)
    seed_t = median_ms(lambda: fwd_bwd(seed_conv2d), repeats)
    results["conv2d_fwd_bwd_3x3_s1"] = {
        "median_ms": new_t,
        "seed_median_ms": seed_t,
        "speedup": seed_t / new_t,
    }

    # ------------------------------------------------------------ depthwise conv
    groups = dw_x.shape[1]
    with nn.no_grad():
        new_t = median_ms(lambda: F.conv2d(Tensor(dw_x), Tensor(dw_w), stride=1, padding=1, groups=groups), repeats)
        seed_t = median_ms(lambda: seed_conv2d(Tensor(dw_x), Tensor(dw_w), stride=1, padding=1, groups=groups), repeats)
    results["depthwise_conv_fwd_3x3"] = {
        "median_ms": new_t,
        "seed_median_ms": seed_t,
        "speedup": seed_t / new_t,
    }

    # ------------------------------------------------------------ pointwise conv
    with nn.no_grad():
        new_t = median_ms(lambda: F.conv2d(Tensor(conv_x), Tensor(pw_w)), repeats)
        seed_t = median_ms(lambda: seed_conv2d(Tensor(conv_x), Tensor(pw_w)), repeats)
    results["pointwise_conv_fwd_1x1"] = {
        "median_ms": new_t,
        "seed_median_ms": seed_t,
        "speedup": seed_t / new_t,
    }

    # ---------------------------------------------------------------- max pool
    with nn.no_grad():
        new_t = median_ms(lambda: F.max_pool2d(Tensor(pool_x), 2), repeats)
        seed_t = median_ms(lambda: seed_max_pool2d(Tensor(pool_x), 2), repeats)
    results["max_pool_fwd_2x2"] = {
        "median_ms": new_t,
        "seed_median_ms": seed_t,
        "speedup": seed_t / new_t,
    }

    # -------------------------------------------------------------- batch norm
    gamma = Tensor(np.ones(bn_x.shape[1], dtype=np.float32))
    beta = Tensor(np.zeros(bn_x.shape[1], dtype=np.float32))
    running_mean = np.zeros(bn_x.shape[1], dtype=np.float32)
    running_var = np.ones(bn_x.shape[1], dtype=np.float32)
    with nn.no_grad():
        bn_t = median_ms(
            lambda: F.batch_norm2d(Tensor(bn_x), gamma, beta, running_mean, running_var, training=True),
            repeats,
        )
    results["batch_norm_fwd_train"] = {"median_ms": bn_t}

    # ----------------------------------------- MobileNetV2-Tiny inference step
    model = create_model("mobilenetv2-tiny", num_classes=16)
    model.eval()
    images = rng.normal(size=(infer_batch, 3, resolution, resolution)).astype(np.float32)
    probe = Tensor(images)
    # Two independently compiled programs of the same model: one through
    # repro.compile, one through the deprecated compile_net wrapper.  Today
    # the wrapper forwards to the frontend, so the ratio ~1.0 documents that
    # the graph-IR indirection is compile-time only; it is kept as a gated
    # canary so any future divergence between the wrapper and the frontend
    # (or a hot-path cost creeping into frontend-built programs) fails CI.
    # The cross-PR trajectory of compiled_median_ms in BENCH_ops.json is the
    # regression record against the pre-IR engines.
    net = repro.compile(model)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.runtime import compile_net

        net_legacy = compile_net(model)

    from repro.nn import layers as _layers  # noqa: F401  (layers resolve F.conv2d at call time)

    def eager_step():
        with nn.no_grad():
            model(probe)

    def seed_step():
        original = F.conv2d
        F.conv2d = seed_conv2d
        try:
            with nn.no_grad():
                model(probe)
        finally:
            F.conv2d = original

    eager_t = median_ms(eager_step, repeats)
    seed_t = median_ms(seed_step, repeats)
    compiled_t = median_ms(lambda: net_legacy.numpy_forward(images), repeats)
    frontend_t = median_ms(lambda: net.numpy_forward(images), repeats)
    results["mobilenetv2_tiny_infer"] = {
        "compiled_median_ms": compiled_t,
        "frontend_median_ms": frontend_t,
        "eager_median_ms": eager_t,
        "seed_median_ms": seed_t,
        "speedup": seed_t / compiled_t,
        "speedup_eager_vs_seed": seed_t / eager_t,
        "speedup_compiled_vs_eager": eager_t / compiled_t,
        "frontend_vs_compiled": compiled_t / frontend_t,
    }

    # --------------------------------------- parallel lane: batch-64 throughput
    # Serial (threads=1, same tile set) vs threads=auto on the tiled program.
    # The partition is a pure function of the batch, so the two lanes run
    # identical arithmetic and must agree bit-for-bit; only wall-clock moves.
    # scripts/check_bench.py gates parallel_speedup with a CPU-count-aware
    # floor (starved 1-2 core runners only get a sanity check).
    import os

    par_batch = 16 if smoke else 64
    par_images = rng.normal(size=(par_batch, 3, resolution, resolution)).astype(np.float32)
    net_serial = repro.compile(model, threads=1)
    net_parallel = repro.compile(model, threads="auto")
    if not np.array_equal(
        net_serial.numpy_forward(par_images), net_parallel.numpy_forward(par_images)
    ):
        raise AssertionError("parallel engine diverged from serial tile execution")
    serial_t = median_ms(lambda: net_serial.numpy_forward(par_images), repeats)
    parallel_t = median_ms(lambda: net_parallel.numpy_forward(par_images), repeats)
    results["mobilenetv2_tiny_infer_parallel"] = {
        "batch": par_batch,
        "cpus": os.cpu_count() or 1,
        "threads": net_parallel.threads,
        "serial_median_ms": serial_t,
        "parallel_median_ms": parallel_t,
        "parallel_speedup": serial_t / parallel_t,
        "bit_identical": True,
    }

    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes / few repeats (CI)")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per op")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_ops.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()
    repeats = args.repeats if args.repeats is not None else (3 if args.smoke else 11)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    results = run_benchmarks(smoke=args.smoke, repeats=repeats)
    report = {
        "suite": "bench_ops",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "benchmarks": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(name) for name in results)
    print(f"{'benchmark':<{width}s} {'median ms':>10s} {'seed ms':>10s} {'speedup':>8s}")
    for name, stats in results.items():
        median = stats.get(
            "median_ms", stats.get("compiled_median_ms", stats.get("parallel_median_ms"))
        )
        seed = stats.get("seed_median_ms", stats.get("serial_median_ms"))
        speed = stats.get("speedup", stats.get("parallel_speedup"))
        print(
            f"{name:<{width}s} {median:>10.3f} "
            f"{seed if seed is not None else float('nan'):>10.3f} "
            f"{speed if speed is not None else float('nan'):>8.2f}"
        )
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
