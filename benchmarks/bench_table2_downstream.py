"""Table II — downstream classification transfer (CIFAR-100, Cars, Flowers102, Food101, Pets).

The paper pretrains on ImageNet and finetunes on five downstream datasets,
comparing Vanilla vs. NetBooster, each optionally combined with knowledge
distillation.  Here the corpus-pretrained models are transferred to the five
synthetic downstream datasets; the NetBooster rows run PLT during the
finetuning phase and contract before evaluation, exactly as in the paper.
"""

from __future__ import annotations

import copy

from repro.baselines import KDLoss
from repro.train import evaluate, finetune
from repro.utils import seed_everything

from common import (
    PROFILE,
    finetune_config,
    get_downstream,
    get_pretrained_giant,
    get_teacher,
    get_vanilla_pretrained,
    make_booster,
    print_table,
)

# Paper Table II (MobileNetV2-Tiny rows) — the qualitative claim is that
# NetBooster transfers better than vanilla pretraining on every dataset.
PAPER_TABLE2 = {
    "cifar100": {"Vanilla": 74.07, "NetBooster": 75.46},
    "cars": {"Vanilla": 76.18, "NetBooster": 80.93},
    "flowers102": {"Vanilla": 90.01, "NetBooster": 90.53},
    "food101": {"Vanilla": 75.43, "NetBooster": 75.96},
    "pets": {"Vanilla": 78.30, "NetBooster": 78.90},
}

DATASETS = list(PAPER_TABLE2)
NETWORK = "mobilenetv2-tiny"


def _finetune_vanilla(pretrained, train_set, val_set, with_kd: bool) -> float:
    seed_everything(PROFILE.seed + 11)
    model = copy.deepcopy(pretrained)
    loss = None
    if with_kd:
        teacher = copy.deepcopy(get_teacher())
        teacher.reset_classifier(train_set.num_classes)
        finetune(teacher, train_set, None, finetune_config())
        loss = KDLoss(teacher, temperature=4.0, alpha=0.5)
    history = finetune(
        model, train_set, val_set, finetune_config(), new_num_classes=train_set.num_classes,
        loss_computer=loss,
    )
    return history.final_val_accuracy


def _finetune_netbooster(giant, records, train_set, val_set, with_kd: bool) -> float:
    seed_everything(PROFILE.seed + 11)
    booster = make_booster()
    giant = copy.deepcopy(giant)
    loss = None
    if with_kd:
        teacher = copy.deepcopy(get_teacher())
        teacher.reset_classifier(train_set.num_classes)
        finetune(teacher, train_set, None, finetune_config())
        loss = KDLoss(teacher, temperature=4.0, alpha=0.5)
    booster.plt_finetune(
        giant, train_set, val_set, new_num_classes=train_set.num_classes, loss_computer=loss
    )
    contracted = booster.contract(giant, records)
    return evaluate(contracted, val_set)


def run_table2() -> dict[str, dict[str, float]]:
    vanilla_pretrained, _ = get_vanilla_pretrained(NETWORK)
    giant, records, _ = get_pretrained_giant(NETWORK)

    results: dict[str, dict[str, float]] = {}
    rows = []
    for dataset_name in DATASETS:
        train_set, val_set = get_downstream(dataset_name)
        vanilla_acc = _finetune_vanilla(vanilla_pretrained, train_set, val_set, with_kd=False)
        booster_acc = _finetune_netbooster(giant, records, train_set, val_set, with_kd=False)
        results[dataset_name] = {"Vanilla": vanilla_acc, "NetBooster": booster_acc}
        rows.append([
            dataset_name,
            f"{PAPER_TABLE2[dataset_name]['Vanilla']:.1f}",
            f"{vanilla_acc:.1f}",
            f"{PAPER_TABLE2[dataset_name]['NetBooster']:.1f}",
            f"{booster_acc:.1f}",
        ])

    # KD composition (paper: MobileNetV2-35 rows) checked on one dataset to bound runtime.
    train_set, val_set = get_downstream("cifar100")
    results["cifar100"]["Vanilla+KD"] = _finetune_vanilla(vanilla_pretrained, train_set, val_set, with_kd=True)
    results["cifar100"]["NetBooster+KD"] = _finetune_netbooster(giant, records, train_set, val_set, with_kd=True)

    print_table(
        "Table II — downstream transfer accuracy (MobileNetV2-Tiny)",
        ["dataset", "paper vanilla", "measured vanilla", "paper NetBooster", "measured NetBooster"],
        rows,
    )
    print(
        "cifar100 with KD:   vanilla+KD {v:.1f}   netbooster+KD {n:.1f}".format(
            v=results["cifar100"]["Vanilla+KD"], n=results["cifar100"]["NetBooster+KD"]
        )
    )
    return results


def test_table2_downstream(benchmark):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    # Paper: NetBooster transfers better on all five datasets.  The downstream
    # sets here are tiny (80-160 validation images), so one image is ~1 point;
    # the single-seed noise floor is several points per dataset.  We therefore
    # check the ordering in aggregate (mean over the five datasets) and require
    # at least two individual datasets to preserve it within noise.
    wins = sum(results[d]["NetBooster"] >= results[d]["Vanilla"] - 2.0 for d in DATASETS)
    assert wins >= 2, f"NetBooster matched/beat vanilla on only {wins}/5 downstream datasets"
    mean_vanilla = sum(results[d]["Vanilla"] for d in DATASETS) / len(DATASETS)
    mean_booster = sum(results[d]["NetBooster"] for d in DATASETS) / len(DATASETS)
    assert mean_booster >= mean_vanilla - 4.0


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_table2))
