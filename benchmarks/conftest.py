"""Benchmark-suite configuration.

Each benchmark runs its (expensive) experiment exactly once via
``benchmark.pedantic(..., rounds=1, iterations=1)``; pytest-benchmark records
the wall-clock time and the benchmark body prints a paper-vs-measured table.
"""

import sys
from pathlib import Path

# Make the shared `common` module importable regardless of rootdir layout.
sys.path.insert(0, str(Path(__file__).parent))
