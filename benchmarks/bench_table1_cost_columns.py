"""Table I cost columns — FLOPs / parameters of the model zoo, and invariance.

Table I of the paper reports, next to the accuracy of every training method,
the inference complexity of each network (23.5 M FLOPs / 0.75 M params for
MobileNetV2-Tiny at 144x144, and so on).  This benchmark regenerates those
columns analytically on the scaled-down model zoo and verifies the remark
below Eq. 4: the *contracted* NetBooster model has exactly the same FLOPs and
parameter count as the original TNN, for every network and regardless of the
expansion ratio used during training.

This bench involves no training and runs in seconds.
"""

from __future__ import annotations

from repro.core import ExpansionConfig, contract_network, expand_network
from repro.core.plt import PLTSchedule
from repro.eval import count_complexity, same_structure
from repro.utils import seed_everything

from common import PROFILE, make_model, print_table

# Paper Table I complexity columns (at the paper's resolutions).
PAPER_COSTS = {
    "mobilenetv2-tiny": {"mflops": 23.5, "params_m": 0.75},
    "mcunet": {"mflops": 81.8, "params_m": 0.74},
    "mobilenetv2-50": {"mflops": 50.2, "params_m": 1.95},
    "mobilenetv2-100": {"mflops": 154.1, "params_m": 3.47},
}

NETWORKS = list(PAPER_COSTS)
RATIOS = (2, 6)


def run_cost_columns() -> dict[str, dict[str, float]]:
    seed_everything(PROFILE.seed)
    input_shape = (3, PROFILE.resolution, PROFILE.resolution)
    results: dict[str, dict[str, float]] = {}
    rows = []
    for network in NETWORKS:
        original = make_model(network)
        report = count_complexity(original, input_shape)
        results[network] = {
            "mflops": report.mflops,
            "params_m": report.params / 1e6,
            "contracted_matches": True,
        }
        for ratio in RATIOS:
            giant, records = expand_network(
                make_model(network), ExpansionConfig(fraction=0.5, expansion_ratio=ratio)
            )
            PLTSchedule(giant, total_steps=1).finalize()
            contracted = contract_network(giant, records)
            matches = same_structure(original, contracted, input_shape)
            results[network]["contracted_matches"] &= matches
        rows.append([
            network,
            f"{PAPER_COSTS[network]['mflops']:.1f}M / {PAPER_COSTS[network]['params_m']:.2f}M",
            f"{report.mflops:.2f}M / {report.params / 1e6:.3f}M",
            "yes" if results[network]["contracted_matches"] else "NO",
        ])
    print_table(
        "Table I (cost columns) — inference complexity and contraction invariance",
        ["network", "paper FLOPs/params (paper res.)", "measured FLOPs/params (scaled res.)", "contracted == original"],
        rows,
    )
    return results


def test_table1_cost_columns(benchmark):
    results = benchmark.pedantic(run_cost_columns, rounds=1, iterations=1)
    # The relative ordering of the four networks' complexity must match Table I.
    measured = [results[n]["mflops"] for n in NETWORKS]
    paper = [PAPER_COSTS[n]["mflops"] for n in NETWORKS]
    measured_order = sorted(range(len(NETWORKS)), key=lambda i: measured[i])
    paper_order = sorted(range(len(NETWORKS)), key=lambda i: paper[i])
    assert measured_order == paper_order
    # Contraction never changes the inference cost (paper Eq. 4 remark).
    assert all(results[n]["contracted_matches"] for n in NETWORKS)


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_cost_columns))
