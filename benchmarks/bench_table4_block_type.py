"""Table IV — ablation on the kind of block inserted during Network Expansion.

The paper expands MobileNetV2-Tiny with inverted residual, basic and
bottleneck blocks and reports both the accuracy of the expanded deep giant
("Expanded Acc.") and the accuracy after PLT + contraction ("Final Acc.").
"""

from __future__ import annotations

from repro.core import ExpansionConfig
from repro.train import evaluate
from repro.utils import seed_everything

from common import PROFILE, get_corpus, get_vanilla_pretrained, make_booster, make_model, print_table

PAPER_TABLE4 = {
    "Vanilla": {"expanded": None, "final": 51.20},
    "inverted_residual": {"expanded": 54.90, "final": 53.70},
    "basic": {"expanded": 54.52, "final": 53.41},
    "bottleneck": {"expanded": 55.23, "final": 53.62},
}
NETWORK = "mobilenetv2-tiny"


def run_table4() -> dict[str, dict[str, float]]:
    corpus = get_corpus()
    results: dict[str, dict[str, float]] = {}

    _, vanilla_history = get_vanilla_pretrained(NETWORK)
    results["Vanilla"] = {"expanded": float("nan"), "final": vanilla_history.final_val_accuracy}

    for block_type in ("inverted_residual", "basic", "bottleneck"):
        seed_everything(PROFILE.seed + 31)
        booster = make_booster(ExpansionConfig(block_type=block_type, fraction=0.5))
        result = booster.run(make_model(NETWORK), corpus.train, corpus.val)
        expanded_acc = max(result.pretrain_history.val_accuracy)
        results[block_type] = {"expanded": expanded_acc, "final": result.final_accuracy}

    rows = []
    for name, paper in PAPER_TABLE4.items():
        measured = results[name]
        rows.append([
            name,
            "-" if paper["expanded"] is None else f"{paper['expanded']:.1f}",
            "-" if name == "Vanilla" else f"{measured['expanded']:.1f}",
            f"{paper['final']:.1f}",
            f"{measured['final']:.1f}",
        ])
    print_table(
        "Table IV — inserted block type ablation (MobileNetV2-Tiny)",
        ["block", "paper expanded", "measured expanded", "paper final", "measured final"],
        rows,
    )
    return results


def test_table4_block_type(benchmark):
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    finals = {k: v["final"] for k, v in results.items() if k != "Vanilla"}
    # Paper: all three block types produce usable giants whose final accuracy
    # lands in a narrow band (within ~0.3%); at the CPU scale the single-seed
    # noise floor is a few points per variant, so we only require the three
    # variants to stay within that widened band of one another.
    assert max(finals.values()) - min(finals.values()) <= 12.0


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_table4))
