"""Table I — large-scale-dataset accuracy of TNN training methods.

The paper compares Vanilla, RocketLaunching, tf-KD, RCO-KD, NetAug and
NetBooster on ImageNet for MobileNetV2-Tiny, MCUNet, MobileNetV2-50 and
MobileNetV2-100.  This benchmark reruns the comparison on the synthetic
corpus: all six methods for MobileNetV2-Tiny and the three-method comparison
(Vanilla / NetAug / NetBooster) for the other networks (MobileNetV2-50/100
only when ``REPRO_BENCH_FULL_NETWORKS=1`` because of their CPU cost).
"""

from __future__ import annotations

import os

from repro.baselines import (
    train_with_netaug,
    train_with_rco_kd,
    train_with_rocket_launching,
    train_with_tf_kd,
)
from repro.eval import count_complexity
from repro.train import evaluate
from repro.utils import seed_everything

from common import (
    PROFILE,
    get_corpus,
    get_teacher,
    get_vanilla_pretrained,
    make_model,
    netbooster_accuracy,
    pretrain_config,
    print_table,
)

# Accuracy numbers reported in the paper's Table I.
PAPER_TABLE1 = {
    "mobilenetv2-tiny": {
        "Vanilla": 51.2, "RocketLaunch": 51.8, "tf-KD": 51.9,
        "RCO-KD": 52.6, "NetAug": 53.0, "NetBooster": 53.7,
    },
    "mcunet": {"Vanilla": 61.4, "NetAug": 62.5, "NetBooster": 62.8},
    "mobilenetv2-50": {"Vanilla": 61.4, "NetAug": 62.5, "NetBooster": 62.7},
    "mobilenetv2-100": {"Vanilla": 69.6, "NetAug": 70.5, "NetBooster": 70.9},
}


def _run_method(method: str, model_name: str, corpus) -> float:
    seed_everything(PROFILE.seed + 3)
    config = pretrain_config(PROFILE.pretrain_epochs + PROFILE.finetune_epochs)
    if method == "Vanilla":
        model, history = get_vanilla_pretrained(model_name)
        return history.final_val_accuracy
    if method == "NetBooster":
        return netbooster_accuracy(model_name)
    if method == "NetAug":
        exported, _ = train_with_netaug(make_model(model_name), corpus.train, None, config)
        return evaluate(exported, corpus.val)
    if method == "tf-KD":
        model = make_model(model_name)
        history = train_with_tf_kd(model, corpus.train, corpus.val, config)
        return history.final_val_accuracy
    if method == "RCO-KD":
        model = make_model(model_name)
        history = train_with_rco_kd(
            model, corpus.train, corpus.val, config,
            num_anchors=2, teacher=get_teacher(), teacher_config=pretrain_config(1),
        )
        return history.final_val_accuracy
    if method == "RocketLaunch":
        model = make_model(model_name)
        history = train_with_rocket_launching(model, corpus.train, corpus.val, config)
        return history.final_val_accuracy
    raise ValueError(method)


def run_table1() -> dict[str, dict[str, float]]:
    corpus = get_corpus()
    networks = ["mobilenetv2-tiny"]
    if os.environ.get("REPRO_BENCH_FULL_NETWORKS") == "1":
        networks += ["mcunet", "mobilenetv2-50", "mobilenetv2-100"]

    results: dict[str, dict[str, float]] = {}
    rows = []
    for network in networks:
        methods = list(PAPER_TABLE1[network])
        results[network] = {}
        report = count_complexity(make_model(network), (3, PROFILE.resolution, PROFILE.resolution))
        for method in methods:
            measured = _run_method(method, network, corpus)
            results[network][method] = measured
            rows.append([
                network,
                f"{report.mflops:.2f}M FLOPs",
                method,
                f"{PAPER_TABLE1[network][method]:.1f}",
                f"{measured:.1f}",
            ])
    print_table(
        "Table I — accuracy on the large-scale corpus",
        ["network", "complexity", "method", "paper acc (ImageNet)", "measured acc (synthetic)"],
        rows,
    )
    return results


def test_table1_imagenet(benchmark):
    results = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    tiny = results["mobilenetv2-tiny"]
    # Qualitative claim: NetBooster improves over vanilla training (paper: +2.5)
    # and is competitive with the strongest baseline.  The single-seed noise
    # floor of the CPU-scale corpus is about +/-2.5 points (see EXPERIMENTS.md),
    # so the assertions only reject results that fall outside that band.
    assert tiny["NetBooster"] >= tiny["Vanilla"] - 2.5
    best_baseline = max(v for k, v in tiny.items() if k != "NetBooster")
    assert tiny["NetBooster"] >= best_baseline - 6.0


if __name__ == "__main__":  # standalone run through the orchestrator cache
    from common import bench_main

    raise SystemExit(bench_main(run_table1))
