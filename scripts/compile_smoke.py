#!/usr/bin/env python
"""CI smoke: compile every registry model in all three modes, diff vs eager.

The unified frontend (``repro.compile``) must route every registry model
through the shared graph IR and produce outputs that match the eager
reference on each engine:

* ``infer``  — fused float program vs the eager forward (round-off tolerance);
* ``int8``   — true-integer engine vs the fake-quant oracle (dequantization
  tolerance derived from the classifier's grid, like the test-suite's bound);
* ``train``  — one fused forward+backward step vs the eager autograd tape on
  an identical model copy (loss, logits and every gradient **bit-identical**);
* ``threads`` — ``CompileOptions(threads=2)`` programs (float and int8) must
  be **bit-identical** to their ``threads=1`` counterparts: the tile
  partition is a pure function of the shape, so thread count may never move
  a single bit.

Run with::

    PYTHONPATH=src python scripts/compile_smoke.py
    PYTHONPATH=src python scripts/compile_smoke.py --models mobilenetv2-tiny mcunet
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

import repro
from repro import nn
from repro.compress import calibrate, quantize_model
from repro.compress.quantization import QuantizedLinear
from repro.models import available_models, create_model
from repro.utils import seed_everything


def _randomize_bn_stats(model: nn.Module, rng) -> None:
    for _, module in model.named_modules():
        if isinstance(module, nn.BatchNorm2d):
            module.running_mean[...] = rng.normal(0.0, 0.2, size=module.num_features)
            module.running_var[...] = rng.uniform(0.5, 1.5, size=module.num_features)


def _dequant_tolerance(model: nn.Module, drift_steps: float = 3.0) -> float:
    """Worst-case logit drift from a few integer steps at the classifier."""
    classifier = next(m for _, m in model.named_modules() if isinstance(m, QuantizedLinear))
    in_scale, _ = classifier.input_qparams()
    w_q = np.abs(classifier.weight_q.astype(np.float64))
    w_scale = np.atleast_1d(np.asarray(classifier.weight_scale, dtype=np.float64))
    row_l1 = (w_q.sum(axis=1) * (w_scale if w_scale.size > 1 else w_scale[0])).max()
    return drift_steps * in_scale * row_l1


def check_infer(name: str, res: int, rng) -> str:
    model = create_model(name, num_classes=8)
    _randomize_bn_stats(model, rng)
    model.eval()
    x = rng.normal(size=(2, 3, res, res)).astype(np.float32)
    with nn.no_grad():
        eager = model(nn.Tensor(x)).numpy()
    out = repro.compile(model, mode="infer").numpy_forward(x)
    delta = float(np.abs(out - eager).max())
    if not np.allclose(out, eager, rtol=1e-3, atol=1e-3):
        raise AssertionError(f"{name}/infer drifted from eager: max|delta|={delta:.3g}")
    return f"max|delta|={delta:.2e}"


def check_int8(name: str, res: int, rng) -> str:
    model = create_model(name, num_classes=8)
    _randomize_bn_stats(model, rng)
    model.eval()
    quantize_model(model)
    batches = [rng.normal(0.2, 0.8, size=(8, 3, res, res)).astype(np.float32) for _ in range(2)]
    calibrate(model, batches)
    x = rng.normal(0.2, 0.8, size=(2, 3, res, res)).astype(np.float32)
    with nn.no_grad():
        oracle = model(nn.Tensor(x)).numpy()
    engine = repro.compile(model, mode="int8", dw_kernel="einsum")
    out = engine.numpy_forward(x)
    delta = float(np.abs(out - oracle).max())
    tolerance = _dequant_tolerance(model)
    if delta > tolerance:
        raise AssertionError(f"{name}/int8 outside dequant tolerance: {delta:.3g} > {tolerance:.3g}")
    if "eager" in engine.ops:
        raise AssertionError(f"{name}/int8 silently fell back to eager ops")
    return f"max|delta|={delta:.2e} (tol {tolerance:.2e})"


def check_threads(name: str, res: int, rng) -> str:
    """``CompileOptions(threads=...)``: threaded == serial, bit for bit."""
    from repro.runtime import CompileOptions

    model = create_model(name, num_classes=8)
    _randomize_bn_stats(model, rng)
    model.eval()
    x = rng.normal(size=(8, 3, res, res)).astype(np.float32)
    serial = repro.compile(model, options=CompileOptions(threads=1)).numpy_forward(x)
    threaded_net = repro.compile(model, options=CompileOptions(threads=2))
    if threaded_net.threads != 2:
        raise AssertionError(f"{name}/threads: CompileOptions(threads=2) not honored")
    if not np.array_equal(threaded_net.numpy_forward(x), serial):
        raise AssertionError(f"{name}/threads: threads=2 output differs from threads=1")

    quantize_model(model)
    calibrate(model, [rng.normal(0.2, 0.8, size=(8, 3, res, res)).astype(np.float32)])
    q_serial = repro.compile(
        model, mode="int8", options=CompileOptions(threads=1, dw_kernel="einsum")
    ).numpy_forward(x)
    q_threaded = repro.compile(
        model, mode="int8", options=CompileOptions(threads=2, dw_kernel="einsum")
    ).numpy_forward(x)
    if not np.array_equal(q_threaded, q_serial):
        raise AssertionError(f"{name}/threads: int8 threads=2 output differs from threads=1")
    return "float+int8 bit-identical at threads 1 vs 2"


def check_train(name: str, res: int, seed: int) -> str:
    def one_step(compiled: bool):
        seed_everything(seed)
        model = create_model(name, num_classes=8)
        model.train()
        rng = np.random.default_rng(seed + 1)
        x = rng.normal(size=(4, 3, res, res)).astype(np.float32)
        y = rng.integers(0, 8, size=4)
        if compiled:
            step = repro.compile(model, mode="train")
            loss, logits = step(x, y)
        else:
            from repro.train.trainer import StandardLoss

            loss_t, logits_t = StandardLoss()(model, nn.Tensor(x), y)
            loss_t.backward()
            loss, logits = loss_t.item(), logits_t.numpy()
        grads = [None if p.grad is None else p.grad.copy() for p in model.parameters()]
        return loss, logits, grads

    loss_c, logits_c, grads_c = one_step(True)
    loss_e, logits_e, grads_e = one_step(False)
    if loss_c != loss_e or not np.array_equal(logits_c, logits_e):
        raise AssertionError(f"{name}/train loss/logits not bit-identical to eager")
    for gc, ge in zip(grads_c, grads_e):
        same = (gc is None and ge is None) or (gc is not None and ge is not None and np.array_equal(gc, ge))
        if not same:
            raise AssertionError(f"{name}/train gradients not bit-identical to eager")
    return f"loss={loss_c:.6f} bit-identical"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="*", default=None, help="registry models (default: all)")
    parser.add_argument("--resolution", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    models = args.models if args.models else available_models()
    failures = []
    for name in models:
        for mode, check in (("infer", check_infer), ("int8", check_int8)):
            rng = np.random.default_rng(args.seed)
            try:
                detail = check(name, args.resolution, rng)
                print(f"ok   {name:<18s} {mode:<6s} {detail}")
            except Exception as error:  # noqa: BLE001 - report and keep going
                failures.append(f"{name}/{mode}: {error}")
                print(f"FAIL {name:<18s} {mode:<6s} {error}")
        try:
            detail = check_train(name, args.resolution, args.seed)
            print(f"ok   {name:<18s} train  {detail}")
        except Exception as error:  # noqa: BLE001
            failures.append(f"{name}/train: {error}")
            print(f"FAIL {name:<18s} train  {error}")
        rng = np.random.default_rng(args.seed)
        try:
            detail = check_threads(name, args.resolution, rng)
            print(f"ok   {name:<18s} thread {detail}")
        except Exception as error:  # noqa: BLE001
            failures.append(f"{name}/threads: {error}")
            print(f"FAIL {name:<18s} thread {error}")
    if failures:
        print(f"\n{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"\ncompile smoke passed: {len(models)} models x 3 modes + threads lane")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
