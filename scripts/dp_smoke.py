#!/usr/bin/env python
"""CI smoke test for data-parallel distributed training.

Runs a 2-worker MobileNetV2-Tiny job under both topologies and asserts the
whole distributed-training contract end to end:

* ``workers=1`` is bitwise identical to the single-process :class:`Trainer`
  (parameters and batch-norm statistics);
* a 2-worker ``allreduce`` run finishes with byte-identical replicas
  (crc32-digest lockstep) and a sane, finite loss curve;
* the allreduce loss curve tracks the single-process curve (same global
  batch stream, averaged gradients — the curves differ only through update
  granularity, so they must agree coarsely);
* a 2-worker ``gossip`` run finishes, reaches consensus, and also produces a
  finite decreasing loss curve.

Sized for starved CI runners (a single CPU time-shares the workers); this is
a correctness smoke, not a throughput benchmark — `bench_train.py` owns the
scaling numbers.

Run with::

    PYTHONPATH=src python scripts/dp_smoke.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.data import SyntheticImageNet
from repro.models import mobilenet_v2
from repro.train import DistributedTrainer, Trainer
from repro.utils import ExperimentConfig, seed_everything

CLASSES = 8


def model_fn():
    return mobilenet_v2("tiny", num_classes=CLASSES)


def main() -> int:
    data = SyntheticImageNet(
        num_classes=CLASSES, samples_per_class=8, val_samples_per_class=2, resolution=16
    )
    config = ExperimentConfig(epochs=2, batch_size=8, lr=0.05, warmup_epochs=0)
    failures: list[str] = []

    # --- single-worker bitwise parity -------------------------------------- #
    seed_everything(config.seed)
    reference_model = model_fn()
    reference = Trainer(reference_model, config, compile=False)
    reference_history = reference.fit(data.train)
    single = DistributedTrainer(model_fn, config, workers=1, compile=False)
    single_history = single.fit(data.train)
    reference_state = reference_model.state_dict()
    single_state = single.model.state_dict()
    mismatched = [
        name
        for name in reference_state
        if not np.array_equal(reference_state[name], single_state[name])
    ]
    if mismatched:
        failures.append(f"workers=1 not bitwise identical to Trainer: {mismatched[:5]}")
    if reference_history.train_loss != single_history.train_loss:
        failures.append(
            f"workers=1 loss curve diverged: {single_history.train_loss} vs "
            f"{reference_history.train_loss}"
        )

    # --- 2-worker allreduce: lockstep + loss-curve parity ------------------ #
    allreduce = DistributedTrainer(model_fn, config, workers=2, topology="allreduce")
    allreduce_history = allreduce.fit(data.train, data.val)
    if not allreduce.stats.consistent:
        failures.append("allreduce replicas not byte-identical at end of run")
    losses = allreduce_history.train_loss
    if not all(np.isfinite(loss) for loss in losses):
        failures.append(f"allreduce loss curve not finite: {losses}")
    if losses[-1] >= losses[0]:
        failures.append(f"allreduce loss did not decrease: {losses}")
    # Same data, averaged gradients: epoch losses must track the
    # single-process curve coarsely (identical batches, coarser updates).
    deltas = [abs(a - b) for a, b in zip(losses, reference_history.train_loss)]
    if max(deltas) > 1.0:
        failures.append(
            f"allreduce loss curve far from single-process curve: {losses} vs "
            f"{reference_history.train_loss}"
        )
    if len(allreduce_history.val_accuracy) != config.epochs:
        failures.append("allreduce run recorded no per-epoch validation accuracy")

    # --- 2-worker gossip: finishes + consensus ----------------------------- #
    gossip = DistributedTrainer(model_fn, config, workers=2, topology="gossip")
    gossip_history = gossip.fit(data.train)
    if not gossip.stats.consistent:
        failures.append("gossip consensus allreduce left replicas unequal")
    g_losses = gossip_history.train_loss
    if not all(np.isfinite(loss) for loss in g_losses):
        failures.append(f"gossip loss curve not finite: {g_losses}")
    if g_losses[-1] >= g_losses[0]:
        failures.append(f"gossip loss did not decrease: {g_losses}")

    print(f"single-process loss curve: {[round(l, 4) for l in reference_history.train_loss]}")
    print(f"allreduce  (2w) loss curve: {[round(l, 4) for l in losses]}")
    print(f"gossip     (2w) loss curve: {[round(l, 4) for l in g_losses]}")
    print(
        f"allreduce {allreduce.stats.steps_per_sec:.2f} aggregate steps/s, "
        f"gossip {gossip.stats.steps_per_sec:.2f}, "
        f"bitwise@1w {'ok' if not mismatched else 'FAIL'}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("distributed smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
