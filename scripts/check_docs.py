#!/usr/bin/env python
"""Documentation checks: doctests + intra-repo Markdown link validation.

Run from the repository root (CI runs this as the ``docs`` job)::

    PYTHONPATH=src python scripts/check_docs.py

Two checks, both must pass:

1. **Doctests** — the examples embedded in the ``repro.experiments`` modules
   (and the runtime facade) are executed with :mod:`doctest`; a stale example
   fails the build.
2. **Links** — every relative link in ``README.md`` and ``docs/*.md`` must
   point at an existing file or directory in the repository.
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DOCTEST_MODULES = [
    "repro.experiments",
    "repro.experiments.cache",
    "repro.experiments.registry",
    "repro.experiments.orchestrator",
    "repro.experiments.__main__",
    "repro.runtime",
]

MARKDOWN_FILES = ["README.md", "CHANGES.md", *(str(p.relative_to(REPO_ROOT)) for p in sorted((REPO_ROOT / "docs").glob("*.md")))]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def run_doctests() -> int:
    failures = 0
    for name in DOCTEST_MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE)
        status = "ok" if result.failed == 0 else "FAIL"
        print(f"doctest {name:<35s} {result.attempted:>3d} examples  [{status}]")
        failures += result.failed
    return failures


def check_links() -> int:
    broken = 0
    for rel in MARKDOWN_FILES:
        path = REPO_ROOT / rel
        if not path.is_file():
            print(f"link check: missing markdown file {rel}")
            broken += 1
            continue
        text = path.read_text(encoding="utf-8")
        file_broken = 0
        for target in _LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target) or target.startswith("#"):
                continue  # external URL or in-page anchor
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                print(f"link check: {rel}: broken link -> {target}")
                file_broken += 1
        print(f"links   {rel:<35s} [{'ok' if file_broken == 0 else 'FAIL'}]")
        broken += file_broken
    return broken


def main() -> int:
    doctest_failures = run_doctests()
    broken_links = check_links()
    if doctest_failures or broken_links:
        print(f"\nFAILED: {doctest_failures} doctest failure(s), {broken_links} broken link(s)")
        return 1
    print("\nall documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
