#!/usr/bin/env python
"""Regression gates over the benchmark JSON reports.

Dispatches on the report's ``suite`` field:

* ``bench_train`` (``BENCH_train.json``) — the compiled training path must
  stay ahead of the eager path and above the seed-speedup floor; the
  distributed data-parallel lane must show aggregate steps/s scaling at max
  workers (CPU-count-aware floor, sanity floor on starved runners) and the
  single-worker bitwise-parity flag must hold everywhere.
* ``bench_serve`` (``BENCH_serve.json``) — the int8 integer engine must reach
  the configured speedup over the float compiled engine at batches 1-8, and
  dynamic batching must sustain the configured multiple of serial batch-1
  serving req/s.  The multi-process fleet lane must beat the threaded engine
  on machines with enough cores (CPU-count-aware floor), and the chaos lane
  must show zero lost requests, exercised-and-recovered restarts, and a
  bounded chaos-vs-clean p99 ratio.  The parallel lane (threaded tile
  engine) must beat serial tile execution at batch 64 under the same
  CPU-count-aware floor and must have asserted bit-identity.  The autoscale
  lane must show the traffic spike forcing a scale-up, reconvergence to the
  replica floor with the degradation ladder fully recovered, zero lost or
  unresolved requests, and (on >= 4 cores) a post-convergence tail p99
  within the derived SLO.  The artifact cold-start lane must boot the fleet
  from a compiled artifact measurably faster than compiling at boot, with
  bit-identical predictions; the fidelity lane must drop fidelity before
  shedding under the spike, actually serve work on the low rung, and recover
  to the top rung at idle with zero lost requests.
* ``bench_ops`` (``BENCH_ops.json``) — the compiled inference program must
  stay above the seed-speedup floor, a program built through
  ``repro.compile`` must match one built through the legacy ``compile_net``
  wrapper (a canary: the graph-IR indirection is compile-time only, and the
  wrapper must never diverge from the frontend), and the threaded-tile
  parallel lane is gated exactly as in ``bench_serve``.

Run after the corresponding benchmark::

    PYTHONPATH=src python benchmarks/bench_train.py --smoke --output /tmp/BENCH_train.json
    python scripts/check_bench.py /tmp/BENCH_train.json

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --output /tmp/BENCH_serve.json
    python scripts/check_bench.py /tmp/BENCH_serve.json

A small tolerance absorbs timer noise on shared CI runners; the full-mode
numbers committed in the repo are the ones that matter for the perf
trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check_train(report: dict, args) -> list[str]:
    """Gate the training-throughput report; returns failure messages."""
    train = report["benchmarks"]["train_step"]
    compiled = train["compiled_steps_per_sec"]
    eager = train["eager_steps_per_sec"]
    seed = train["seed_steps_per_sec"]
    failures = []
    if compiled < args.tolerance * eager:
        failures.append(
            f"compiled path regressed below eager: {compiled:.2f} < "
            f"{args.tolerance:.2f} * {eager:.2f} steps/sec"
        )
    if compiled < args.min_seed_ratio * seed:
        failures.append(
            f"compiled-vs-seed speedup below floor: {compiled / seed:.2f}x < "
            f"{args.min_seed_ratio:.2f}x"
        )
    print(
        f"steps/sec — seed {seed:.2f}, eager {eager:.2f}, compiled {compiled:.2f} "
        f"({train['speedup_compiled_vs_seed']:.2f}x vs seed)"
    )
    failures.extend(check_train_dp(report["benchmarks"].get("distributed"), args))
    return failures


def check_train_dp(lane: dict | None, args) -> list[str]:
    """Gate the data-parallel distributed-training lane of a train report.

    CPU-count aware like the fleet/parallel gates: aggregate steps/s only
    scales when the workers have cores to run on, so the full
    ``--min-dp-speedup`` floor applies on >= 4 cpus and a sanity floor (the
    fleet must not collapse: workers time-share one core, so the aggregate
    rate stays near the single-worker rate) elsewhere.  The single-worker
    bitwise-parity flag must hold everywhere — ``workers=1`` runs the exact
    ``Trainer`` code path and any drift there is a correctness bug, not a
    performance regression.
    """
    if lane is None:
        return ["report missing the distributed (data-parallel) lane"]
    failures = []
    cpus = lane.get("cpu_count") or 1
    if not lane.get("single_worker_bitwise", False):
        failures.append(
            "single-worker DistributedTrainer is not bitwise identical to Trainer"
        )
    if cpus >= 4:
        floor, regime = args.min_dp_speedup, f"{cpus} cpus"
    else:
        floor, regime = args.min_dp_speedup_scarce, f"only {cpus} cpu(s), degraded floor"
    scaling = lane["scaling_vs_single"]
    if scaling < floor:
        failures.append(
            f"distributed scaling below floor at workers={lane['max_workers']}: "
            f"{scaling:.2f}x < {floor:.2f}x vs single worker ({regime})"
        )
    if lane["gossip_steps_per_sec"] <= 0:
        failures.append("gossip topology lane recorded no throughput")
    print(
        f"distributed: {scaling:.2f}x aggregate at workers={lane['max_workers']} "
        f"({regime}), gossip {lane['gossip_steps_per_sec']:.2f} steps/s, "
        f"bitwise@1w {'ok' if lane.get('single_worker_bitwise') else 'FAIL'}"
    )
    return failures


def check_serve(report: dict, args) -> list[str]:
    """Gate the serving report; returns failure messages."""
    bench = report["benchmarks"]
    engine = bench["engine"]
    serving = bench["serving"]
    failures = []
    for batch in (1, 8):
        speedup = engine[f"batch{batch}"]["speedup_int8_vs_float"]
        if speedup < args.min_int8_speedup:
            failures.append(
                f"int8 engine below floor at batch {batch}: "
                f"{speedup:.2f}x < {args.min_int8_speedup:.2f}x vs float compiled"
            )
    batching = serving["speedup_batched_vs_serial"]
    if batching < args.min_batching_speedup:
        failures.append(
            f"dynamic batching below floor: {batching:.2f}x < "
            f"{args.min_batching_speedup:.2f}x vs serial batch-1 serving"
        )
    parity = engine["parity_max_abs_logit_delta"]
    if parity > args.max_parity_delta:
        failures.append(
            f"int8 parity drifted: max |logit delta| {parity:.4f} > {args.max_parity_delta}"
        )
    failures.extend(check_parallel(bench.get("parallel"), args))
    failures.extend(check_fleet(bench.get("fleet"), args))
    failures.extend(check_autoscale(bench.get("autoscale"), args))
    failures.extend(check_cold_start(bench.get("cold_start"), args))
    failures.extend(check_fidelity(bench.get("fidelity"), args))
    speedups = " ".join(
        f"b{batch}={engine[f'batch{batch}']['speedup_int8_vs_float']:.2f}x"
        for batch in (1, 8, 64)
    )
    print(
        f"int8 vs float compiled: {speedups}; "
        f"serving {serving['serial_req_per_sec']:.0f} -> "
        f"{serving['batched_req_per_sec']:.0f} req/s ({batching:.2f}x batched); "
        f"parity {parity:.4f}"
    )
    return failures


def check_fleet(fleet: dict | None, args) -> list[str]:
    """Gate the multi-process fleet and chaos lanes of a serving report.

    The fleet-vs-threaded speedup floor is CPU-count aware: process-level
    parallelism needs cores to run on, so the full ``--min-fleet-speedup``
    floor only applies when the report was produced on >= 4 cores; on
    smaller machines (1-2 core CI runners) the replicas time-share and only
    a sanity floor is enforced.  The robustness gates — zero lost requests,
    restarts exercised and recovered from, bounded chaos tail latency —
    apply everywhere.
    """
    if fleet is None:
        return ["report missing the multi-process fleet lane"]
    failures = []
    chaos = fleet["chaos"]
    cpus = fleet.get("cpu_count") or 1
    if cpus >= 4:
        floor, regime = args.min_fleet_speedup, f"{cpus} cpus"
    else:
        floor, regime = args.min_fleet_speedup_scarce, f"only {cpus} cpu(s), degraded floor"
    speedup = fleet["speedup_fleet_vs_threaded"]
    if speedup < floor:
        failures.append(
            f"fleet throughput below floor: {speedup:.2f}x < {floor:.2f}x "
            f"vs threaded engine ({regime})"
        )
    if fleet["clean_lost"] != 0:
        failures.append(f"clean fleet run lost {fleet['clean_lost']} requests")
    if chaos["lost"] != 0:
        failures.append(f"chaos fleet run lost {chaos['lost']} requests")
    if chaos["restarts"] < 1:
        failures.append("chaos run exercised no supervised restart (kill fault never fired?)")
    if chaos["ready_at_end"] < fleet["replicas"]:
        failures.append(
            f"crashed replicas not all serving again at end of chaos run: "
            f"{chaos['ready_at_end']}/{fleet['replicas']} ready"
        )
    ratio = chaos["p99_ratio_vs_clean"]
    if ratio > args.max_chaos_p99_ratio:
        failures.append(
            f"chaos tail latency blew up: p99 {ratio:.2f}x clean > "
            f"{args.max_chaos_p99_ratio:.2f}x"
        )
    print(
        f"fleet: {speedup:.2f}x vs threaded ({regime}); chaos p99 {ratio:.2f}x clean, "
        f"lost {chaos['lost']}, restarts {chaos['restarts']}, "
        f"ready {chaos['ready_at_end']}/{fleet['replicas']}"
    )
    return failures


def check_autoscale(lane: dict | None, args) -> list[str]:
    """Gate the SLO-driven autoscaling lane of a serving report.

    Robustness gates apply everywhere: the traffic spike must force at least
    one scale-up past the floor, the controller must walk the fleet back to
    ``min_replicas`` with the degradation ladder fully recovered once the
    spike clears, and no request may be lost or left unresolved.  The tail
    (post-convergence) p99-vs-SLO gate mirrors the fleet lane's CPU-count
    split: extra replicas only buy latency when there are cores to run them
    on, so it applies on >= 4 cores only.
    """
    if lane is None:
        return ["report missing the autoscale lane"]
    failures = []
    cpus = lane.get("cpu_count") or 1
    if lane["lost"] != 0:
        failures.append(f"autoscale run lost {lane['lost']} requests")
    if lane["timeouts"] != 0:
        failures.append(
            f"autoscale run left {lane['timeouts']} requests unresolved "
            "(every admitted request must resolve to a result or typed error)"
        )
    if lane["scale_ups"] < 1:
        failures.append("traffic spike never forced a scale-up (spike too weak?)")
    if lane["peak_target"] <= lane["min_replicas"]:
        failures.append(
            f"fleet never grew past the floor: peak target {lane['peak_target']} "
            f"<= min_replicas {lane['min_replicas']}"
        )
    if lane["final_target"] != lane["min_replicas"]:
        failures.append(
            f"fleet did not reconverge to the floor after the spike: "
            f"final target {lane['final_target']} != min_replicas {lane['min_replicas']}"
        )
    if lane["final_level"] != 0:
        failures.append(
            f"degradation ladder still engaged after the spike cleared: "
            f"level {lane['final_level']} != 0"
        )
    tail = lane["p99_tail_ms"]
    if cpus >= 4:
        regime = f"{cpus} cpus"
        if tail is None:
            failures.append("autoscale lane recorded no post-convergence tail latencies")
        elif tail > args.max_autoscale_p99_ratio * lane["slo_p99_ms"]:
            failures.append(
                f"post-convergence tail p99 missed the SLO: {tail:.1f} ms > "
                f"{args.max_autoscale_p99_ratio:.2f} * {lane['slo_p99_ms']:.0f} ms"
            )
    else:
        regime = f"only {cpus} cpu(s), tail-p99 gate waived"
    tail_txt = f"{tail:.1f} ms" if tail is not None else "n/a"
    print(
        f"autoscale: peak {lane['peak_target']} -> final {lane['final_target']} "
        f"[{lane['min_replicas']}..{lane['max_replicas']}], "
        f"{lane['scale_ups']} up / {lane['scale_downs']} down / {lane['degrades']} degrade, "
        f"tail p99 {tail_txt} vs SLO {lane['slo_p99_ms']:.0f} ms ({regime}), "
        f"lost {lane['lost']}, shed {lane['shed']}"
    )
    return failures


def check_cold_start(lane: dict | None, args) -> list[str]:
    """Gate the artifact cold-start lane of a serving report.

    A fleet booted from a compiled artifact must reach READY measurably
    faster than one compiling (init + quantize + calibrate + compile) at
    boot, and both fleets must produce bit-identical predictions.  No
    CPU-count split: replica boot is single-process work, so the floor
    applies everywhere.
    """
    if lane is None:
        return ["report missing the artifact cold-start lane"]
    failures = []
    speedup = lane["boot_speedup_artifact_vs_compile"]
    if speedup < args.min_cold_start_speedup:
        failures.append(
            f"artifact boot not faster than compile-at-boot: {speedup:.2f}x < "
            f"{args.min_cold_start_speedup:.2f}x "
            f"({lane['artifact_boot_ms']:.0f} ms vs {lane['compile_boot_ms']:.0f} ms)"
        )
    if not lane.get("outputs_bit_identical", False):
        failures.append(
            "artifact-served fleet predictions are not bit-identical to the "
            "compile-at-boot fleet"
        )
    print(
        f"cold start: compile {lane['compile_boot_ms']:.0f} ms -> artifact "
        f"{lane['artifact_boot_ms']:.0f} ms ({speedup:.2f}x, "
        f"{lane['artifact_bytes'] / 1024:.0f} kB artifact), bit-identical"
    )
    return failures


def check_fidelity(lane: dict | None, args) -> list[str]:
    """Gate the multi-fidelity ladder lane of a serving report.

    Robustness gates, CPU-count independent (the lane is pinned to one
    replica by construction): under the spike the controller's *first*
    degradation step must be a fidelity drop (level <= rungs - 1, which by
    construction touches no deadline/admission knob), the low rung must have
    actually served work, the ladder must recover to the top rung once the
    spike clears, and nothing may be lost or left unresolved.  The tradeoff
    curve must be well-formed: the low rung stays within a sanity fraction of
    the top rung's throughput.  This is a broken-rung detector, not an int8
    speedup gate — on a starved single-core runner the quantized rung's
    per-request cost at serving batch sizes can trail the float rung even
    when its small-batch latency (the quantity the ladder actually trades
    on) is well ahead; the engine lane owns the speedup floor.
    """
    if lane is None:
        return ["report missing the fidelity ladder lane"]
    failures = []
    floor = lane["fidelity_rungs"] - 1
    first = lane["first_degrade_level"]
    if lane["degrades"] < 1:
        failures.append("fidelity spike never engaged the ladder (spike too weak?)")
    elif first is None or first > floor:
        failures.append(
            f"first degradation was not a fidelity drop: level {first} > "
            f"fidelity floor {floor} (shed before dropping fidelity)"
        )
    if lane["low_rung_served"] < 1:
        failures.append("no requests were served below the top rung during the spike")
    if lane["final_rung"] != 0:
        failures.append(
            f"ladder did not recover to the top rung at idle: final rung "
            f"{lane['final_rung']} != 0"
        )
    if lane["final_level"] != 0:
        failures.append(
            f"degradation ladder still engaged after the spike cleared: "
            f"level {lane['final_level']} != 0"
        )
    if lane["lost"] != 0:
        failures.append(f"fidelity spike lost {lane['lost']} requests")
    if lane["timeouts"] != 0:
        failures.append(
            f"fidelity spike left {lane['timeouts']} requests unresolved "
            "(every admitted request must resolve to a result or typed error)"
        )
    curve = lane["tradeoff_curve"]
    if len(curve) < 2:
        failures.append("fidelity tradeoff curve has fewer than two rungs")
    elif curve[-1]["req_per_sec"] < args.min_fidelity_low_rung_ratio * curve[0]["req_per_sec"]:
        failures.append(
            f"low rung slower than the top rung: "
            f"{curve[-1]['req_per_sec']:.0f} < "
            f"{args.min_fidelity_low_rung_ratio:.2f} * {curve[0]['req_per_sec']:.0f} req/s"
        )
    curve_txt = "; ".join(
        f"{p['name']} {p['req_per_sec']:.0f} req/s (agree {p['agreement']:.2f})"
        for p in curve
    )
    print(
        f"fidelity: {curve_txt}; spike first-degrade level {first} "
        f"(floor {floor}), {lane['low_rung_served']} low-rung served, "
        f"final rung {lane['final_rung']}, lost {lane['lost']}"
    )
    return failures


def check_parallel(lane: dict | None, args) -> list[str]:
    """Gate a threaded-tile parallel lane (bench_ops or bench_serve).

    Mirrors the fleet gate's CPU-count awareness: thread-level parallelism
    needs cores, so the full ``--min-parallel-speedup`` floor only applies
    when the report was produced on >= 4 cores.  On starved runners the
    threaded engine still must not collapse below the sanity floor (it runs
    the identical tile set, so pool overhead is the only possible cost), and
    the recorded bit-identity flag must hold everywhere.
    """
    if lane is None:
        return ["report missing the parallel (threaded tile) lane"]
    failures = []
    cpus = lane.get("cpus") or 1
    if cpus >= 4:
        floor, regime = args.min_parallel_speedup, f"{cpus} cpus"
    else:
        floor, regime = args.min_parallel_speedup_scarce, f"only {cpus} cpu(s), degraded floor"
    speedup = lane["parallel_speedup"]
    if speedup < floor:
        failures.append(
            f"parallel batch-{lane['batch']} throughput below floor: "
            f"{speedup:.2f}x < {floor:.2f}x vs serial tiles ({regime})"
        )
    if not lane.get("bit_identical", False):
        failures.append("parallel lane did not assert bit-identity with the serial tiles")
    print(
        f"parallel: {speedup:.2f}x vs serial at batch {lane['batch']} "
        f"({lane['threads']} threads, {regime}), bit-identical"
    )
    return failures


def check_ops(report: dict, args) -> list[str]:
    """Gate the operator/inference report; returns failure messages."""
    infer = report["benchmarks"]["mobilenetv2_tiny_infer"]
    failures = []
    speedup = infer["speedup"]
    if speedup < args.min_ops_seed_ratio:
        failures.append(
            f"compiled inference below seed floor: {speedup:.2f}x < "
            f"{args.min_ops_seed_ratio:.2f}x"
        )
    frontend = infer.get("frontend_median_ms")
    compiled = infer["compiled_median_ms"]
    if frontend is None:
        failures.append("report missing the repro.compile frontend lane")
    elif frontend > compiled / args.ops_tolerance:
        failures.append(
            f"repro.compile frontend regressed vs direct compile: "
            f"{frontend:.3f} ms > {compiled:.3f} ms / {args.ops_tolerance:.2f}"
        )
    if frontend is not None:
        print(
            f"infer — seed/compiled {speedup:.2f}x, compiled {compiled:.3f} ms, "
            f"frontend {frontend:.3f} ms ({infer['frontend_vs_compiled']:.2f}x)"
        )
    failures.extend(
        check_parallel(report["benchmarks"].get("mobilenetv2_tiny_infer_parallel"), args)
    )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "report",
        type=Path,
        nargs="?",
        default=Path(__file__).resolve().parent.parent / "BENCH_train.json",
        help="path to a bench_train / bench_serve JSON report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.90,
        help="[train] compiled must reach this fraction of eager steps/sec",
    )
    parser.add_argument(
        "--min-seed-ratio",
        type=float,
        default=1.2,
        help="[train] minimum compiled/seed steps-per-sec ratio",
    )
    parser.add_argument(
        "--min-dp-speedup",
        type=float,
        default=1.5,
        help="[train] minimum aggregate-steps/s scaling of the distributed lane at "
        "max workers vs a single worker, on machines with >= 4 cpus",
    )
    parser.add_argument(
        "--min-dp-speedup-scarce",
        type=float,
        default=0.2,
        help="[train] sanity floor for the distributed scaling on < 4 cpus "
        "(workers time-share the core)",
    )
    parser.add_argument(
        "--min-int8-speedup",
        type=float,
        default=1.5,
        help="[serve] minimum int8-vs-float-compiled speedup at batches 1-8",
    )
    parser.add_argument(
        "--min-batching-speedup",
        type=float,
        default=2.0,
        help="[serve] minimum batched-vs-serial served req/s ratio",
    )
    parser.add_argument(
        "--max-parity-delta",
        type=float,
        default=1.0,
        help="[serve] maximum int8-vs-fake-quant |logit delta|",
    )
    parser.add_argument(
        "--min-fleet-speedup",
        type=float,
        default=1.5,
        help="[serve] minimum fleet-vs-threaded req/s ratio on machines with >= 4 cpus",
    )
    parser.add_argument(
        "--min-fleet-speedup-scarce",
        type=float,
        default=0.2,
        help="[serve] sanity floor for the fleet ratio on < 4 cpus (replicas time-share)",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=1.5,
        help="[serve/ops] minimum threaded-vs-serial batch-64 speedup on >= 4 cpus",
    )
    parser.add_argument(
        "--min-parallel-speedup-scarce",
        type=float,
        default=0.5,
        help="[serve/ops] sanity floor for the threaded ratio on < 4 cpus (threads time-share)",
    )
    parser.add_argument(
        "--max-autoscale-p99-ratio",
        type=float,
        default=1.5,
        help="[serve] post-convergence tail p99 must stay within this multiple of the "
        "derived SLO on machines with >= 4 cpus (waived on starved runners)",
    )
    parser.add_argument(
        "--min-cold-start-speedup",
        type=float,
        default=1.3,
        help="[serve] minimum artifact-boot vs compile-at-boot fleet READY speedup",
    )
    parser.add_argument(
        "--min-fidelity-low-rung-ratio",
        type=float,
        default=0.6,
        help="[serve] sanity floor: the ladder's low rung must reach this "
        "fraction of the top rung's closed-loop req/s (catches a broken rung, "
        "not an int8 speedup regression — the engine lane owns that)",
    )
    parser.add_argument(
        "--max-chaos-p99-ratio",
        type=float,
        default=3.0,
        help="[serve] maximum chaos-vs-clean p99 latency ratio for the fleet",
    )
    parser.add_argument(
        "--min-ops-seed-ratio",
        type=float,
        default=1.2,
        help="[ops] minimum compiled-inference/seed speedup",
    )
    parser.add_argument(
        "--ops-tolerance",
        type=float,
        default=0.70,
        help="[ops] frontend must reach this fraction of the direct compiled lane's speed",
    )
    args = parser.parse_args()

    report = json.loads(args.report.read_text())
    suite = report.get("suite", "bench_train")
    if suite == "bench_serve":
        failures = check_serve(report, args)
    elif suite == "bench_train":
        failures = check_train(report, args)
    elif suite == "bench_ops":
        failures = check_ops(report, args)
    else:
        print(f"FAIL: unknown benchmark suite {suite!r}", file=sys.stderr)
        return 1
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
