#!/usr/bin/env python
"""Regression gate over ``BENCH_train.json``.

Fails (exit 1) when the compiled training path regresses below the eager
path, or when the compiled-vs-seed speedup drops under the required floor.
Run after ``benchmarks/bench_train.py``::

    PYTHONPATH=src python benchmarks/bench_train.py --smoke --output /tmp/BENCH_train.json
    python scripts/check_bench.py /tmp/BENCH_train.json

A small tolerance absorbs timer noise on shared CI runners; the full-mode
numbers committed in ``BENCH_train.json`` are the ones that matter for the
perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(report: dict, tolerance: float, min_seed_ratio: float) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    train = report["benchmarks"]["train_step"]
    compiled = train["compiled_steps_per_sec"]
    eager = train["eager_steps_per_sec"]
    seed = train["seed_steps_per_sec"]
    failures = []
    if compiled < tolerance * eager:
        failures.append(
            f"compiled path regressed below eager: {compiled:.2f} < "
            f"{tolerance:.2f} * {eager:.2f} steps/sec"
        )
    if compiled < min_seed_ratio * seed:
        failures.append(
            f"compiled-vs-seed speedup below floor: {compiled / seed:.2f}x < "
            f"{min_seed_ratio:.2f}x"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "report",
        type=Path,
        nargs="?",
        default=Path(__file__).resolve().parent.parent / "BENCH_train.json",
        help="path to a bench_train JSON report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.90,
        help="compiled must reach at least this fraction of eager steps/sec",
    )
    parser.add_argument(
        "--min-seed-ratio",
        type=float,
        default=1.2,
        help="minimum compiled/seed steps-per-sec ratio",
    )
    args = parser.parse_args()

    report = json.loads(args.report.read_text())
    failures = check(report, args.tolerance, args.min_seed_ratio)
    train = report["benchmarks"]["train_step"]
    print(
        f"steps/sec — seed {train['seed_steps_per_sec']:.2f}, "
        f"eager {train['eager_steps_per_sec']:.2f}, "
        f"compiled {train['compiled_steps_per_sec']:.2f} "
        f"({train['speedup_compiled_vs_seed']:.2f}x vs seed)"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
