"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 660 editable installs are not
available; ``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``pip install -e .`` with the pip.conf shipped in this repo) falls back to the
classic ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
