"""Static memory planner for compiled inference programs.

Every activation (and scratch) buffer of a compiled program is requested from
an :class:`ArenaPlanner` during lowering, together with the *lifetime* implied
by the op schedule (the step that writes it and the last step that reads it).
After lowering, :meth:`ArenaPlanner.solve` packs all buffers into one flat
arena with the classic greedy offset-assignment used by MCU deployment stacks
(TFLite-Micro style): buffers are placed largest-first at the lowest offset
that does not collide with any already-placed buffer whose lifetime overlaps.
Two buffers may therefore share the same bytes whenever their live ranges are
disjoint — execution touches a single preallocated allocation and the
steady-state inference path performs **zero** heap allocation.

The planner also produces the deployment-relevant accounting: the peak
simultaneous working set in *logical int8 bytes* (one byte per activation
element, the format the engine models on-device), which is the number
:func:`repro.eval.deployment.peak_activation_memory` approximates analytically
as ``max(layer input + output)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Buffer", "ArenaPlanner", "MemoryPlan", "IOPlan", "plan_io"]


class Buffer:
    """A planner-managed array slot with an explicit live range.

    Attributes
    ----------
    shape:
        Array shape of the slot (element dtype is the arena's ``float32``;
        values held are integer grid points for quantized tensors).
    kind:
        ``"value"`` for op inputs/outputs (counted by the activation
        accounting) or ``"scratch"`` for kernel-internal staging buffers
        (reported separately — analytic SRAM models ignore them).
    birth, death:
        First / last step index at which the slot's contents are live.
    a:
        The backing ``ndarray`` view; assigned by :meth:`ArenaPlanner.solve`.
    """

    __slots__ = ("shape", "size", "kind", "name", "birth", "death", "offset", "a")

    def __init__(self, shape: tuple[int, ...], kind: str, name: str):
        self.shape = tuple(int(s) for s in shape)
        self.size = int(np.prod(self.shape)) if self.shape else 1
        self.kind = kind
        self.name = name
        self.birth: int | None = None
        self.death: int | None = None
        self.offset = -1
        self.a: np.ndarray | None = None

    def touch(self, step: int) -> None:
        """Extend the live range to cover ``step`` (first touch sets birth)."""
        if self.birth is None or step < self.birth:
            self.birth = step
        if self.death is None or step > self.death:
            self.death = step

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.name}, {self.shape}, steps {self.birth}..{self.death}, off {self.offset})"


@dataclass
class MemoryPlan:
    """Result of arena packing, with deployment-style accounting.

    ``peak_value_int8_bytes`` is the planner's peak simultaneous working set
    over *value* buffers at one logical byte per activation element — directly
    comparable to
    :func:`repro.eval.deployment.peak_activation_memory(..., bytes_per_element=1)`.
    """

    arena_elements: int
    arena_bytes_host: int
    peak_value_int8_bytes: int
    peak_total_int8_bytes: int
    buffers: list = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"arena             : {self.arena_elements} elements "
            f"({self.arena_bytes_host / 1024:.1f} kB host float32)",
            f"peak working set  : {self.peak_value_int8_bytes / 1024:.2f} kB int8 activations "
            f"({self.peak_total_int8_bytes / 1024:.2f} kB incl. scratch)",
            f"buffers           : {len(self.buffers)}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class IOPlan:
    """Per-request serving buffer sizes derived from a compiled executor.

    The serving fleet moves request/response tensors through fixed-size
    ``multiprocessing.shared_memory`` slots; this is the planner-backed sizing
    contract for one slot.  A slot holds the request's input tensor and its
    output tensor side by side (``slot_elements = input + output``) so the
    input survives the reply — a redispatch after a replica crash or a corrupt
    reply re-reads the original bytes instead of asking the client again.

    ``peak_value_int8_bytes`` carries the executor's arena-planner working-set
    accounting (``None`` for backends without a memory plan, e.g. eager
    callables), so fleet capacity math can sit next to the per-replica SRAM
    numbers the deployment reports use.
    """

    input_shape: tuple[int, ...]
    input_elements: int
    output_shape: tuple[int, ...]
    output_elements: int
    peak_value_int8_bytes: int | None = None

    @property
    def slot_elements(self) -> int:
        return self.input_elements + self.output_elements

    @property
    def slot_bytes(self) -> int:
        """Bytes per shared-memory slot (float32 wire format)."""
        return self.slot_elements * 4

    def summary(self) -> str:
        peak = (
            f"{self.peak_value_int8_bytes / 1024:.2f} kB planned peak"
            if self.peak_value_int8_bytes is not None
            else "no memory plan"
        )
        return (
            f"slot: {self.input_elements} in + {self.output_elements} out elements "
            f"({self.slot_bytes} B); replica working set: {peak}"
        )


def plan_io(net, input_shape: tuple[int, ...]) -> IOPlan:
    """Derive a serving :class:`IOPlan` from an executor and per-sample shape.

    ``net`` is anything servable — a compiled executor with ``numpy_forward``
    (:class:`~repro.runtime.CompiledNet` / :class:`~repro.runtime.QuantizedNet`)
    or a bare callable.  The output shape comes from one batch-1 probe
    forward; when the executor exposes ``memory_plan`` the arena planner's
    peak working set is attached as well.
    """
    input_shape = tuple(int(s) for s in input_shape)
    forward = net.numpy_forward if hasattr(net, "numpy_forward") else net
    probe = np.zeros((1,) + input_shape, dtype=np.float32)
    out = np.asarray(forward(probe))
    output_shape = tuple(int(s) for s in out.shape[1:])
    peak = None
    if hasattr(net, "memory_plan"):
        try:
            peak = int(net.memory_plan((1,) + input_shape).peak_value_int8_bytes)
        except Exception:
            peak = None
    return IOPlan(
        input_shape=input_shape,
        input_elements=int(np.prod(input_shape)) if input_shape else 1,
        output_shape=output_shape,
        output_elements=int(np.prod(output_shape)) if output_shape else 1,
        peak_value_int8_bytes=peak,
    )


class ArenaPlanner:
    """Collects buffer requests during lowering, then packs them into an arena."""

    def __init__(self):
        self.buffers: list[Buffer] = []
        self._step = 0

    # ------------------------------------------------------------------ #
    # lowering-time API
    # ------------------------------------------------------------------ #
    @property
    def step(self) -> int:
        """Index of the next step to be emitted."""
        return self._step

    def advance(self) -> int:
        """Mark the start of a new execution step; returns its index."""
        self._step += 1
        return self._step

    def alloc(self, shape: tuple[int, ...], kind: str = "value", name: str = "") -> Buffer:
        """Request a buffer; its live range is set by subsequent touches."""
        buf = Buffer(shape, kind, name or f"buf{len(self.buffers)}")
        self.buffers.append(buf)
        return buf

    # ------------------------------------------------------------------ #
    # packing
    # ------------------------------------------------------------------ #
    def solve(
        self, tail_slack: int = 0, materialize: bool = True
    ) -> tuple[np.ndarray | None, MemoryPlan]:
        """Pack all requested buffers and return ``(arena, plan)``.

        Greedy offset assignment: process buffers by decreasing size, place
        each at the lowest offset that does not overlap (in offset space) any
        already-placed buffer with an overlapping live range.

        ``tail_slack`` appends extra elements past the last buffer so kernels
        using shifted overlapping views (the flat-tap depthwise strategy) can
        read harmlessly past a buffer's end without leaving the allocation.

        ``materialize=False`` skips allocating the backing arena (``arena`` is
        ``None`` and no buffer gets a view) — used by the planning *pass* when
        only the :class:`MemoryPlan` accounting is wanted, e.g. the float
        engine's peak-working-set report.
        """
        for buf in self.buffers:  # never-touched requests get a zero-length life
            if buf.birth is None:
                buf.birth = buf.death = 0
        placed: list[Buffer] = []
        for buf in sorted(self.buffers, key=lambda b: (-b.size, b.birth)):
            conflicts = sorted(
                (
                    (p.offset, p.offset + p.size)
                    for p in placed
                    if p.birth <= buf.death and buf.birth <= p.death
                ),
            )
            offset = 0
            for lo, hi in conflicts:
                if offset + buf.size <= lo:
                    break
                offset = max(offset, hi)
            buf.offset = offset
            placed.append(buf)
        total = max((b.offset + b.size for b in self.buffers), default=0)
        arena = None
        if materialize:
            arena = np.zeros(total + tail_slack, dtype=np.float32)
            for buf in self.buffers:
                buf.a = arena[buf.offset : buf.offset + buf.size].reshape(buf.shape)
        peak_value, peak_total = self._peaks()
        plan = MemoryPlan(
            arena_elements=total,
            arena_bytes_host=total * 4,
            peak_value_int8_bytes=peak_value,
            peak_total_int8_bytes=peak_total,
            buffers=list(self.buffers),
        )
        return arena, plan

    def _peaks(self) -> tuple[int, int]:
        """Peak simultaneous live bytes at 1 byte / element, by buffer kind."""
        peak_value = peak_total = 0
        for step in range(self._step + 1):
            live = [b for b in self.buffers if b.birth <= step <= b.death]
            value = sum(b.size for b in live if b.kind == "value")
            total = sum(b.size for b in live)
            peak_value = max(peak_value, value)
            peak_total = max(peak_total, total)
        return peak_value, peak_total
