"""Shared graph IR for the compiled runtimes.

Every engine in :mod:`repro.runtime` — the fused float inference program, the
true-integer int8 engine and the fused training step — used to walk the eager
module tree with its own private lowering function, re-implementing structure
recognition (``ConvBNAct``, ``InvertedResidual``, classifier heads, …) three
times.  This module owns that knowledge once:

* :func:`trace` walks an eager :class:`~repro.nn.module.Module` tree and
  produces a :class:`Graph` of typed :class:`OpNode` records
  (``conv`` / ``qconv`` / ``linear`` / ``qlinear`` / ``bn`` / ``act`` /
  ``pool`` / ``gap`` / ``flatten`` / ``dropout`` / ``residual`` / ``eager``;
  the training pipeline appends a ``loss`` node and may merge ``gap`` +
  ``flatten`` into ``gap_flatten``);
* the passes in :mod:`repro.runtime.passes` transform and annotate the graph
  (BN folding, activation fusion, int8 grid annotation, layout, shape
  inference, arena planning);
* each backend (:mod:`repro.runtime.compiler`, :mod:`repro.runtime.quantized`,
  :mod:`repro.runtime.training`) is a thin consumer that turns the annotated
  graph into executable kernels.

Nodes hold a *reference* to their source module, never copied weights — what a
backend snapshots (or binds live) is a backend decision.  Pass results live in
``OpNode.meta`` (``bn_folds``, ``act``, ``spec``, ``grid``, ``out_shape``) and
``Graph.meta`` (``layout``, ``passes``, ``mode``), which is also what the
executors' ``describe()`` reports render.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..compress.quantization import QuantizedConv2d, QuantizedLinear, _QuantizedWrapper
from ..models.blocks import BasicBlock, Bottleneck, ConvBNAct, InvertedResidual
from ..models.mcunet import MCUNet
from ..models.mobilenetv2 import MobileNetV2
from ..nn.norm import FrozenBatchNorm2d

__all__ = [
    "CompileError",
    "UnsupportedModule",
    "QuantCompileError",
    "OpNode",
    "Graph",
    "trace",
    "activation_spec",
    "bn_scale_shift",
    "ACTIVATION_MODULES",
]


class CompileError(Exception):
    """Base error of the :func:`repro.compile` frontend and its passes."""


class UnsupportedModule(CompileError):
    """Raised by lowering helpers when a module has no fused equivalent.

    Backends catch this to fall back to eager execution; the frontend converts
    an uncaught instance into a :class:`CompileError` for the caller.
    """


class QuantCompileError(CompileError):
    """Raised when a model cannot be lowered to the integer engine."""


# Activation classes the shared tracer recognises; everything else becomes an
# ``eager`` node.  Order matters only for documentation — recognition is a
# plain isinstance check.
ACTIVATION_MODULES = (
    nn.DecayableReLU6,
    nn.DecayableReLU,
    nn.ReLU,
    nn.ReLU6,
    nn.LeakyReLU,
    nn.Sigmoid,
    nn.Tanh,
    nn.Swish,
    nn.HardSigmoid,
    nn.HardSwish,
)


def bn_scale_shift(bn) -> tuple[np.ndarray, np.ndarray]:
    """Eval-mode per-channel scale/shift of a (frozen) batch-norm layer."""
    if isinstance(bn, FrozenBatchNorm2d):
        return bn.scale_and_shift()
    scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
    shift = bn.bias.data - bn.running_mean * scale
    return scale.astype(np.float32), shift.astype(np.float32)


def activation_spec(module: nn.Module) -> tuple | None:
    """Lower an activation module to a kernel spec tuple.

    Parameters
    ----------
    module:
        An eager activation module (``ReLU``, ``ReLU6``, ``LeakyReLU``,
        ``Identity``, or a decayable PLT activation).

    Returns
    -------
    tuple or None
        A ``(kind, *params)`` spec consumed by
        :func:`repro.runtime.kernels.apply_activation`, or ``None`` when the
        activation is (or has decayed to) the identity.

    Raises
    ------
    UnsupportedModule
        If the module is not a recognised activation (the caller then falls
        back to eager execution).
    """
    if isinstance(module, nn.Identity):
        return None
    if isinstance(module, nn.DecayableReLU6):  # before DecayableReLU (subclass)
        if module.alpha >= 1.0:
            return None
        if module.alpha <= 0.0:
            return ("relu6",)
        return ("relu6_interp", module.alpha)
    if isinstance(module, nn.DecayableReLU):
        if module.alpha >= 1.0:
            return None
        if module.alpha <= 0.0:
            return ("relu",)
        return ("leaky", module.alpha)
    if isinstance(module, nn.ReLU):
        return ("relu",)
    if isinstance(module, nn.ReLU6):
        return ("relu6",)
    if isinstance(module, nn.LeakyReLU):
        return ("leaky", module.slope)
    if isinstance(module, nn.Sigmoid):
        return ("sigmoid",)
    if isinstance(module, nn.Tanh):
        return ("tanh",)
    if isinstance(module, nn.Swish):
        return ("swish",)
    if isinstance(module, nn.HardSigmoid):
        return ("hardsigmoid",)
    if isinstance(module, nn.HardSwish):
        return ("hardswish",)
    raise UnsupportedModule(type(module).__name__)


# --------------------------------------------------------------------------- #
# graph
# --------------------------------------------------------------------------- #
@dataclass
class OpNode:
    """One typed operation in a traced :class:`Graph`.

    Attributes
    ----------
    kind:
        Op type tag (``"conv"``, ``"qconv"``, ``"linear"``, ``"qlinear"``,
        ``"bn"``, ``"act"``, ``"pool"``, ``"gap"``, ``"flatten"``,
        ``"dropout"``, ``"residual"``, ``"eager"``, ``"gap_flatten"``,
        ``"loss"``).
    name:
        Dotted module path from the traced root (``"features.3.depthwise"``);
        backends use it to label planner buffers.
    module:
        The source eager module (``None`` for synthetic nodes like ``loss``).
        Referenced, not copied — snapshotting weights is a backend decision.
    attrs:
        Structural attributes fixed at trace time (stride, padding, groups,
        pool kind, dropout rate, …).
    meta:
        Pass annotations (``bn_folds``, ``act``, ``spec``, ``grid``,
        ``out_shape``, …).  Mutated by :class:`~repro.runtime.passes.Pass`
        instances, consumed by backends and ``describe()``.
    body:
        Nested :class:`Graph` for ``residual`` nodes, ``None`` otherwise.
    """

    kind: str
    name: str = ""
    module: nn.Module | None = None
    attrs: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    body: "Graph | None" = None

    def describe_line(self) -> str:
        """One aligned row of a lowering report."""
        bits = [f"{self.name or '<root>':<32s}", f"{self.kind:<11s}"]
        if self.kind in ("conv", "qconv"):
            k = self.attrs.get("kernel")
            bits.append(
                f"{k[0]}x{k[1]} s{self.attrs['stride']} p{self.attrs['padding']} g{self.attrs['groups']}"
            )
        elif self.kind == "pool":
            bits.append(f"{self.attrs['op']} k{self.attrs['kernel']} s{self.attrs['stride']}")
        if self.meta.get("bn_folds"):
            bits.append(f"bn-folded(x{len(self.meta['bn_folds'])})")
        act = self.meta.get("act") or self.meta.get("spec")
        if act is not None:
            bits.append(f"act={act[0]}")
        if "grid" in self.meta:
            scale, zp, nbits = self.meta["grid"]
            bits.append(f"grid=(s={scale:.4g}, zp={zp:.4g}, {nbits}b)")
        if "tileable" in self.meta:
            bits.append("tiled" if self.meta["tileable"] else "serial")
        if "out_shape" in self.meta:
            bits.append("-> " + "x".join(str(s) for s in self.meta["out_shape"]))
        return "  ".join(bits)


class Graph:
    """A traced model: a flat list of :class:`OpNode` (bodies nest via ``residual``).

    Attributes
    ----------
    nodes:
        Ops in execution order.
    source:
        The eager module the graph was traced from (``None`` for nested
        residual bodies).
    meta:
        Graph-level annotations (``layout``, ``mode``, applied ``passes``,
        deferred ``memory_plan``).
    """

    def __init__(self, nodes: list[OpNode], source: nn.Module | None = None):
        self.nodes = list(nodes)
        self.source = source
        self.meta: dict = {}

    def walk(self, depth: int = 0):
        """Yield ``(node, depth)`` over the graph, descending into residual bodies."""
        for node in self.nodes:
            yield node, depth
            if node.body is not None:
                yield from node.body.walk(depth + 1)

    def kinds(self) -> list[str]:
        """Flat list of node kinds in execution order (bodies included)."""
        return [node.kind for node, _ in self.walk()]

    def describe(self) -> str:
        """Human-readable lowering report: passes applied, then the node table."""
        lines = []
        if self.meta.get("mode"):
            lines.append(f"mode    : {self.meta['mode']}")
        if self.meta.get("layout"):
            lines.append(f"layout  : {self.meta['layout']}")
        if self.meta.get("passes"):
            lines.append("passes  : " + " -> ".join(self.meta["passes"]))
        par = self.meta.get("parallel")
        if par is not None:
            if par.get("serial_reason"):
                lines.append(f"parallel: serial fallback ({par['serial_reason']})")
            else:
                lines.append(
                    f"parallel: threads={par['threads']}, waves of <= "
                    f"{par['max_tiles']} batch tiles (>= {par['min_tile']} "
                    "samples each; partition fixed per shape, so results are "
                    "identical at every thread count)"
                )
        lines.append(f"nodes   : {len(list(self.walk()))}")
        for node, depth in self.walk():
            lines.append("  " + "    " * depth + node.describe_line())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph({len(self.nodes)} nodes, source={type(self.source).__name__ if self.source else None})"


# --------------------------------------------------------------------------- #
# the shared tracer
# --------------------------------------------------------------------------- #
def _conv_attrs(layer) -> dict:
    weight = layer.weight.data
    return {
        "stride": getattr(layer, "stride", 1),
        "padding": getattr(layer, "padding", 0),
        "groups": getattr(layer, "groups", 1),
        "kernel": (int(weight.shape[2]), int(weight.shape[3])) if weight.ndim == 4 else (1, 1),
        "in_channels": int(weight.shape[1] * getattr(layer, "groups", 1)) if weight.ndim == 4 else int(weight.shape[1]),
        "out_channels": int(weight.shape[0]),
    }


def _trace_children(named_children, prefix: str) -> list[OpNode]:
    nodes: list[OpNode] = []
    for child_name, child in named_children:
        path = f"{prefix}.{child_name}" if prefix else str(child_name)
        nodes.extend(_trace(child, path))
    return nodes


def _trace(module: nn.Module, name: str) -> list[OpNode]:
    """Trace one module into a list of op nodes (identity ops are elided)."""
    if isinstance(module, nn.Identity):
        return []
    if isinstance(module, nn.Dropout):
        return [OpNode("dropout", name, module, {"rate": module.rate})]
    if isinstance(module, QuantizedLinear):
        return [OpNode("qlinear", name, module, _conv_attrs(module.wrapped))]
    if isinstance(module, QuantizedConv2d):
        return [OpNode("qconv", name, module, _conv_attrs(module.wrapped))]
    if isinstance(module, _QuantizedWrapper):  # pragma: no cover - future wrappers
        return [OpNode("eager", name, module)]
    if isinstance(module, nn.Conv2d):
        return [OpNode("conv", name, module, _conv_attrs(module))]
    if isinstance(module, nn.Linear):
        return [OpNode("linear", name, module, _conv_attrs(module))]
    if isinstance(module, (nn.BatchNorm2d, FrozenBatchNorm2d)):
        return [OpNode("bn", name, module)]
    if isinstance(module, nn.MaxPool2d):
        return [
            OpNode("pool", name, module, {"op": "max", "kernel": module.kernel_size, "stride": module.stride, "padding": module.padding})
        ]
    if isinstance(module, nn.AvgPool2d):
        return [
            OpNode("pool", name, module, {"op": "avg", "kernel": module.kernel_size, "stride": module.stride, "padding": module.padding})
        ]
    if isinstance(module, nn.GlobalAvgPool2d):
        return [OpNode("gap", name, module)]
    if isinstance(module, nn.Flatten):
        return [OpNode("flatten", name, module)]
    if isinstance(module, nn.Sequential):
        return _trace_children(module._modules.items(), name)
    if isinstance(module, ConvBNAct):
        return _trace_children(
            [("conv", module.conv), ("bn", module.bn), ("act", module.act)], name
        )
    if isinstance(module, InvertedResidual):
        body = _trace_children(
            [("expand", module.expand), ("depthwise", module.depthwise), ("project", module.project)],
            name,
        )
        if module.use_residual:
            return [OpNode("residual", name, module, body=Graph(body))]
        return body
    if isinstance(module, BasicBlock):
        body = _trace_children([("conv1", module.conv1), ("conv2", module.conv2)], name)
        if module.use_residual:
            return [OpNode("residual", name, module, body=Graph(body))]
        return body
    if isinstance(module, Bottleneck):
        body = _trace_children(
            [("reduce", module.reduce), ("spatial", module.spatial), ("expand", module.expand)], name
        )
        if module.use_residual:
            return [OpNode("residual", name, module, body=Graph(body))]
        return body
    if isinstance(module, MobileNetV2):
        return _trace_children(
            [
                ("features", module.features),
                ("pool", module.pool),
                ("flatten", module.flatten),
                ("dropout", module.dropout),
                ("classifier", module.classifier),
            ],
            name,
        )
    if isinstance(module, MCUNet):
        return _trace_children(
            [
                ("features", module.features),
                ("pool", module.pool),
                ("flatten", module.flatten),
                ("classifier", module.classifier),
            ],
            name,
        )
    if isinstance(module, ACTIVATION_MODULES):
        return [OpNode("act", name, module)]
    # Unrecognised structure: a single opaque node the backends run eagerly —
    # a traced graph is therefore always complete, merely less typed.
    return [OpNode("eager", name, module)]


def trace(model: nn.Module) -> Graph:
    """Trace an eager module tree into the shared :class:`Graph` IR.

    This is the single tracer every compile mode consumes; mode-specific
    decisions (BN folding, dropout elision, activation fusion, int8 grids)
    are made later by the :mod:`repro.runtime.passes` pipelines, never here.

    Parameters
    ----------
    model:
        Any eager :class:`~repro.nn.module.Module` tree.  Recognised
        structures lower to typed nodes; unknown submodules become opaque
        ``eager`` nodes.

    Returns
    -------
    Graph
        The traced graph, with ``graph.source`` set to ``model``.
    """
    return Graph(_trace(model, ""), source=model)
