"""Compiled-artifact serialization: ``repro.compile(...).save()`` / ``repro.load()``.

Every process used to re-run trace → passes → plan (and, for int8, the whole
calibration pass over representative data) at startup.  An *artifact* makes
deployment ahead-of-time instead: one versioned file captures everything a
fresh process needs to rebuild a bit-identical executor —

* the model identity (registry name + constructor arguments),
* the full parameter/buffer state, including int8 ``weight_q`` /
  ``weight_scale`` tensors and the frozen ``act_low`` / ``act_high``
  calibration grids (so no calibration data is needed at load time),
* the quantization spec and the exact set of quantized layers (int8),
* the compile options and the loss configuration (train),
* a structural record of the annotated IR graph — node kinds/names/attrs,
  pass trail, layout, activation specs, int8 grids, inferred shapes — plus
  the arena-plan accounting at a declared input shape,
* a SHA-256 content fingerprint over the model structure and state.

``load()`` verifies the format version and fingerprint, rebuilds the model,
restores the exact state (integer buffers are re-registered with their stored
dtypes — never truncated through an in-place cast), recompiles through the
deterministic pass pipeline, and then cross-checks the fresh graph against
the stored record.  Any disagreement — truncated file, corrupted arrays,
format skew, a mutated source model, an int8 artifact requested as float, or
compiler drift since the artifact was written — raises :class:`ArtifactError`
with a precise message.  The contract is *never silent misexecution*: an
artifact either reproduces the original executor bit-for-bit or refuses to
load.

File layout (a plain ``.npz`` zip, ``allow_pickle=False``)::

    __header__        uint8 bytes of a canonical-JSON header:
                      magic, format_version, mode, model ref, options,
                      quant / loss sections, graph record, plan record,
                      state manifest, fingerprint
    state::<name>     one entry per ``state_dict()`` tensor, exact dtype

Why recompile instead of pickling kernels?  The pass pipeline is
deterministic and sub-millisecond; what dominates a cold boot is calibration
(forward passes over representative batches) and model preparation, both of
which the artifact skips entirely.  Recompiling from restored state keeps the
format free of code objects (safe to load), keeps artifacts small, and turns
"the compiler changed under the artifact" into a detectable error instead of
a silently different program.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import dataclass

import numpy as np

from .. import nn
from .ir import CompileError, Graph

__all__ = [
    "ArtifactError",
    "ArtifactInfo",
    "FORMAT_VERSION",
    "save_artifact",
    "load_artifact",
    "read_artifact_info",
    "model_fingerprint",
]

MAGIC = "repro-artifact"
FORMAT_VERSION = 1

# Node-meta keys recorded in (and compared against) the graph record.  The
# parallel-planning annotations ("tileable", graph-level "parallel") are
# deliberately excluded: thread count is an environment choice, and outputs
# are bit-identical across it by construction.  "out_shape" is excluded as
# well — InferShapes re-annotates the live graph for whatever concrete shape
# memory_plan()/describe() saw last, so recording it would make an artifact
# saved after those calls fail its own drift check; the plan record already
# witnesses shape behaviour at the canonical input shape.
_RECORDED_META = ("grid", "act", "spec", "bn_folds")
_ENV_PASSES = ("plan_parallel",)


class ArtifactError(Exception):
    """A compiled artifact cannot be written or safely loaded.

    Raised on unreadable/corrupted files, format-version skew, fingerprint
    mismatches (tampered file or mutated source model), mode confusion
    (e.g. loading an int8 artifact as ``"infer"``) and compiler drift
    (the recompiled graph no longer matches the stored record).
    """


@dataclass(frozen=True)
class ArtifactInfo:
    """Parsed header of an artifact file (see :func:`read_artifact_info`)."""

    path: str
    mode: str
    format_version: int
    model: dict
    fingerprint: str
    input_shape: tuple | None
    options: dict
    nbytes: int

    def summary(self) -> str:
        shape = "x".join(str(s) for s in self.input_shape) if self.input_shape else "-"
        return (
            f"{os.path.basename(self.path)}: {self.model.get('name')} "
            f"mode={self.mode} v{self.format_version} input={shape} "
            f"fp={self.fingerprint[:12]} ({self.nbytes / 1024:.0f} kB)"
        )


# --------------------------------------------------------------------------- #
# JSON canonicalisation
# --------------------------------------------------------------------------- #
def _json_safe(value):
    """Project a value into canonical JSON-able form.

    Arrays become ``{"__ndarray__": dtype/shape/sha256}`` digests (the actual
    bytes live in the state entries and the fingerprint); tuples become
    lists; NumPy scalars become Python scalars; anything else unserialisable
    falls back to ``repr`` so records stay deterministic and comparable.
    """
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": {
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "sha256": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            }
        }
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__repr__": repr(value)}


def _dumps(obj) -> str:
    return json.dumps(_json_safe(obj), sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------------- #
# graph record
# --------------------------------------------------------------------------- #
def _node_record(node, depth: int) -> dict:
    meta = {k: node.meta[k] for k in _RECORDED_META if k in node.meta}
    return {
        "kind": node.kind,
        "name": node.name,
        "depth": depth,
        "attrs": node.attrs,
        "meta": meta,
    }


def graph_record(graph: Graph) -> dict:
    """Structural record of an annotated graph, normalised for comparison."""
    record = {
        "mode": graph.meta.get("mode"),
        "layout": graph.meta.get("layout"),
        "passes": [p for p in graph.meta.get("passes", ()) if p not in _ENV_PASSES],
        "nodes": [_node_record(node, depth) for node, depth in graph.walk()],
    }
    # Round-trip through canonical JSON so a record built from a live graph
    # compares equal to one parsed back out of a header.
    return json.loads(_dumps(record))


def _first_graph_diff(stored: dict, fresh: dict) -> str:
    """One human-readable line describing where two graph records diverge."""
    for key in ("mode", "layout", "passes"):
        if stored.get(key) != fresh.get(key):
            return f"{key}: artifact={stored.get(key)!r} recompiled={fresh.get(key)!r}"
    a, b = stored.get("nodes", []), fresh.get("nodes", [])
    if len(a) != len(b):
        return f"node count: artifact={len(a)} recompiled={len(b)}"
    for i, (na, nb) in enumerate(zip(a, b)):
        if na != nb:
            what = "/".join(k for k in na if na.get(k) != nb.get(k)) or "?"
            return f"node {i} ({na.get('kind')} {na.get('name')!r}): {what} differs"
    return "records differ"


# --------------------------------------------------------------------------- #
# fingerprint
# --------------------------------------------------------------------------- #
def _structure(model: nn.Module) -> list:
    return [[name, type(mod).__name__] for name, mod in model.named_modules()]


def _state_digest(state: dict) -> str:
    h = hashlib.sha256()
    for name in sorted(state):
        value = np.ascontiguousarray(state[name])
        h.update(name.encode())
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(value.tobytes())
    return h.hexdigest()


def _fingerprint(mode: str, model_ref: dict, model: nn.Module, state: dict) -> str:
    h = hashlib.sha256()
    h.update(_dumps({"mode": mode, "model": model_ref, "structure": _structure(model)}).encode())
    h.update(_state_digest(state).encode())
    return h.hexdigest()


def model_fingerprint(model: nn.Module, mode: str, model_ref: dict | None = None) -> str:
    """Content fingerprint of a live model, as stored in its artifacts.

    Useful to check — without loading — whether an artifact still matches a
    model you hold: compare against :attr:`ArtifactInfo.fingerprint`.
    """
    ref = model_ref or _registry_ref(model, None)
    return _fingerprint(_canonical_mode(mode), ref, model, model.state_dict())


# --------------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------------- #
def _canonical_mode(mode: str) -> str:
    from .frontend import _MODE_ALIASES

    key = _MODE_ALIASES.get(str(mode).lower())
    if key is None:
        raise ArtifactError(f"unknown mode {mode!r}")
    return key


def _registry_ref(model: nn.Module, explicit: dict | None) -> dict:
    if explicit is not None:
        ref = dict(explicit)
    else:
        ref = getattr(model, "_registry_ref", None)
        if ref is None:
            raise ArtifactError(
                "model carries no registry reference; build it with "
                "repro.models.create_model or pass model_ref={'name': ..., "
                "'num_classes': ...} to save()"
            )
        ref = dict(ref)
    if "name" not in ref:
        raise ArtifactError("model_ref must include a registry 'name'")
    ref.setdefault("num_classes", 16)
    ref.setdefault("kwargs", {})
    return ref


def _executor_mode(executor) -> tuple[str, nn.Module]:
    from .compiler import CompiledNet
    from .quantized import QuantizedNet
    from .training import TrainStep

    if isinstance(executor, QuantizedNet):
        return "int8", executor.source
    if isinstance(executor, CompiledNet):
        return "infer", executor.source
    if isinstance(executor, TrainStep):
        return "train", executor.model
    raise ArtifactError(f"cannot serialize {type(executor).__name__}; expected a repro.compile executor")


def _quant_record(model: nn.Module) -> dict:
    from ..compress.quantization import _QuantizedWrapper

    wrappers = [(name, m) for name, m in model.named_modules() if isinstance(m, _QuantizedWrapper)]
    if not wrappers:
        raise ArtifactError("int8 executor has no quantized layers to serialize")
    specs = {(m.spec.bits, m.spec.symmetric, m.spec.per_channel) for _, m in wrappers}
    if len(specs) > 1:
        raise ArtifactError("mixed quantization specs are not serializable")
    bits, symmetric, per_channel = specs.pop()
    for name, m in wrappers:
        if not m.frozen:
            raise ArtifactError(f"quantized layer {name!r} is not calibrated; freeze before save")
    return {
        "bits": bits,
        "symmetric": symmetric,
        "per_channel": per_channel,
        "wrappers": [name for name, _ in wrappers],
    }


def _plan_record(executor, input_shape) -> dict | None:
    if input_shape is None:
        return None
    shape = tuple(int(s) for s in input_shape)
    plan = executor.memory_plan((1,) + shape)
    return {
        "input_shape": list(shape),
        "arena_elements": int(plan.arena_elements),
        "peak_value_int8_bytes": int(plan.peak_value_int8_bytes),
        "peak_total_int8_bytes": int(plan.peak_total_int8_bytes),
        "buffers": len(plan.buffers),
    }


def save_artifact(executor, path: str, *, input_shape=None, model_ref: dict | None = None) -> ArtifactInfo:
    """Serialize a compiled executor to a single versioned artifact file.

    Parameters
    ----------
    executor:
        A :class:`~repro.runtime.CompiledNet`, :class:`~repro.runtime.QuantizedNet`
        or :class:`~repro.runtime.TrainStep` produced by :func:`repro.compile`
        (it must still carry its annotated graph).
    path:
        Destination file.  Written atomically (temp file + rename).
    input_shape:
        Optional ``(C, H, W)`` deployment shape; when given, the arena-plan
        accounting at that shape is recorded and re-validated at load time.
    model_ref:
        ``{"name", "num_classes", "kwargs"}`` registry reference; only needed
        when the model was not built through :func:`repro.models.create_model`.

    Returns
    -------
    ArtifactInfo
        The header of the file just written.
    """
    mode, model = _executor_mode(executor)
    if model is None:
        raise ArtifactError("executor has no source model attached; cannot serialize")
    graph = executor.graph
    if graph is None:
        raise ArtifactError(
            "executor was built from a raw program (no graph attached); "
            "recompile through repro.compile before saving"
        )
    ref = _registry_ref(model, model_ref)
    state = model.state_dict()
    header = {
        "magic": MAGIC,
        "format_version": FORMAT_VERSION,
        "mode": mode,
        "model": ref,
        "options": {
            "dw_kernel": getattr(executor, "_dw_kernel", "auto"),
            "threads": None,
        },
        "graph": graph_record(graph),
        "plan": _plan_record(executor, input_shape),
        "state": {
            name: {"dtype": str(v.dtype), "shape": list(v.shape)} for name, v in state.items()
        },
        "state_digest": _state_digest(state),
        "fingerprint": _fingerprint(mode, ref, model, state),
    }
    if mode == "train":
        label_smoothing = 0.0
        for node, _ in graph.walk():
            if node.kind == "loss":
                label_smoothing = float(node.attrs.get("label_smoothing", 0.0))
        header["loss"] = {"label_smoothing": label_smoothing}
    if mode == "int8":
        header["quant"] = _quant_record(model)

    payload = {"__header__": np.frombuffer(_dumps(header).encode(), dtype=np.uint8)}
    for name, value in state.items():
        payload[f"state::{name}"] = value
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".artifact.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return _info_from_header(path, header)


# --------------------------------------------------------------------------- #
# read / load
# --------------------------------------------------------------------------- #
def _info_from_header(path: str, header: dict) -> ArtifactInfo:
    plan = header.get("plan") or {}
    shape = plan.get("input_shape")
    return ArtifactInfo(
        path=str(path),
        mode=header["mode"],
        format_version=int(header["format_version"]),
        model=dict(header["model"]),
        fingerprint=header["fingerprint"],
        input_shape=tuple(shape) if shape else None,
        options=dict(header.get("options", {})),
        nbytes=os.path.getsize(path) if os.path.exists(path) else 0,
    )


def _open_artifact(path: str):
    if not os.path.exists(path):
        raise ArtifactError(f"artifact {path!r} does not exist")
    try:
        data = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as error:
        raise ArtifactError(f"artifact {path!r} is not a readable repro artifact: {error}") from error
    if "__header__" not in getattr(data, "files", ()):
        data.close()
        raise ArtifactError(f"artifact {path!r} has no header; not a repro artifact")
    try:
        header = json.loads(bytes(data["__header__"]).decode())
    except (ValueError, UnicodeDecodeError, KeyError, zipfile.BadZipFile) as error:
        data.close()
        raise ArtifactError(f"artifact {path!r} header is corrupted: {error}") from error
    if header.get("magic") != MAGIC:
        data.close()
        raise ArtifactError(f"artifact {path!r} has wrong magic {header.get('magic')!r}")
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        data.close()
        raise ArtifactError(
            f"artifact {path!r} has format version {version}, this runtime "
            f"reads version {FORMAT_VERSION}; re-save the artifact with this runtime"
        )
    return data, header


def _read_state(data, header, path: str) -> dict:
    manifest = header.get("state", {})
    state = {}
    for name, meta in manifest.items():
        key = f"state::{name}"
        if key not in data.files:
            raise ArtifactError(f"artifact {path!r} is truncated: missing state entry {name!r}")
        try:
            value = data[key]
        except (zipfile.BadZipFile, ValueError, OSError, EOFError) as error:
            raise ArtifactError(f"artifact {path!r} state entry {name!r} is corrupted: {error}") from error
        if str(value.dtype) != meta["dtype"] or list(value.shape) != list(meta["shape"]):
            raise ArtifactError(
                f"artifact {path!r} state entry {name!r} does not match its manifest "
                f"({value.dtype}{list(value.shape)} vs {meta['dtype']}{meta['shape']})"
            )
        state[name] = value
    extra = [k for k in data.files if k.startswith("state::") and k[len("state::"):] not in manifest]
    if extra:
        raise ArtifactError(f"artifact {path!r} carries unmanifested state entries: {extra}")
    return state


def read_artifact_info(path: str, *, verify: bool = False) -> ArtifactInfo:
    """Parse (and optionally integrity-check) an artifact header without building.

    With ``verify=True`` every state tensor is read and the stored
    fingerprint is recomputed structurally (manifest + bytes), so truncation
    and bit corruption are caught before any process is forked on the file.
    """
    data, header = _open_artifact(path)
    try:
        if verify:
            # Full-file integrity without building a model: every state array
            # is read back against the manifest (shape/dtype) and the stored
            # state digest is recomputed over the bytes.
            state = _read_state(data, header, path)
            digest = header.get("state_digest")
            if digest != _state_digest(state):
                raise ArtifactError(f"artifact {path!r} state digest mismatch; file is corrupted")
        return _info_from_header(path, header)
    finally:
        data.close()


def _restore_state(model: nn.Module, state: dict, path: str) -> None:
    """Write stored tensors into a freshly built skeleton, exactly.

    Parameters are assigned in place (shape-checked); buffers are
    *re-registered* with the stored array so integer dtypes chosen from the
    original data (``int8`` vs ``int16`` ``weight_q``) survive instead of
    being truncated through an in-place cast into the skeleton's buffer.
    """
    params = dict(model.named_parameters())
    buffers = dict(model.named_buffers())
    missing = sorted((set(params) | set(buffers)) - set(state))
    unexpected = sorted(set(state) - set(params) - set(buffers))
    if missing or unexpected:
        raise ArtifactError(
            f"artifact {path!r} state does not match the rebuilt model "
            f"(missing={missing[:4]}, unexpected={unexpected[:4]}); "
            "the model registry has diverged from the artifact"
        )
    for name, value in state.items():
        if name in params:
            param = params[name]
            if param.data.shape != value.shape:
                raise ArtifactError(
                    f"artifact {path!r} parameter {name!r} shape {value.shape} "
                    f"does not fit the rebuilt model's {param.data.shape}"
                )
            param.data[...] = value
        else:
            owner_path, _, leaf = name.rpartition(".")
            owner = model.get_submodule(owner_path) if owner_path else model
            owner.register_buffer(leaf, value.copy())


def _rebuild_model(header: dict, path: str) -> nn.Module:
    from ..models import create_model

    ref = header["model"]
    try:
        model = create_model(ref["name"], num_classes=int(ref.get("num_classes", 16)), **ref.get("kwargs", {}))
    except (KeyError, TypeError) as error:
        raise ArtifactError(f"artifact {path!r} references an unbuildable model: {error}") from error
    mode = header["mode"]
    if mode == "train":
        model.train()
    else:
        model.eval()
    if mode == "int8":
        from ..compress.quantization import QuantizationSpec, _QuantizedWrapper, quantize_model

        quant = header.get("quant")
        if not quant:
            raise ArtifactError(f"artifact {path!r} is an int8 artifact without a quant section")
        spec = QuantizationSpec(
            bits=int(quant["bits"]),
            symmetric=bool(quant["symmetric"]),
            per_channel=bool(quant["per_channel"]),
        )
        quantize_model(model, spec)
        wrapped = [name for name, m in model.named_modules() if isinstance(m, _QuantizedWrapper)]
        if wrapped != list(quant["wrappers"]):
            raise ArtifactError(
                f"artifact {path!r} quantized layer set does not match the rebuilt "
                f"model; cannot restore a partially-quantized artifact onto it"
            )
    return model


def load_artifact(path: str, *, mode: str | None = None, model: nn.Module | None = None,
                  threads=None, dw_kernel: str | None = None):
    """Load a compiled artifact back into a live, bit-identical executor.

    Parameters
    ----------
    path:
        An artifact file written by :func:`save_artifact` /
        ``executor.save(path)``.
    mode:
        Optional expected mode (``"infer"`` / ``"int8"`` / ``"train"`` or an
        alias).  A mismatch with the stored mode raises :class:`ArtifactError`
        — an int8 artifact can never silently execute as float.
    model:
        Optional live model to validate against: its fingerprint (structure +
        current state) must equal the artifact's, otherwise the model has
        mutated since ``save`` and :class:`ArtifactError` is raised.  When
        omitted the model is rebuilt from the registry reference and the
        stored state.
    threads:
        Parallel-plan override forwarded to :func:`repro.compile` (``None``
        defers to ``$REPRO_THREADS``; outputs are bit-identical across it).
    dw_kernel:
        Int8 depthwise strategy override (defaults to the stored option).

    Returns
    -------
    CompiledNet | QuantizedNet | TrainStep
        A fresh executor, bit-identical to the one that was saved, with an
        :class:`ArtifactInfo` attached as ``executor.artifact``.

    Raises
    ------
    ArtifactError
        Corrupted/truncated files, version skew, fingerprint or mode
        mismatch, registry drift, or a recompiled graph that no longer
        matches the stored record.
    """
    from .frontend import compile_model

    data, header = _open_artifact(path)
    try:
        stored_mode = header["mode"]
        if mode is not None and _canonical_mode(mode) != stored_mode:
            raise ArtifactError(
                f"artifact {path!r} was compiled for mode {stored_mode!r}; "
                f"requested {mode!r} — refusing cross-mode execution"
            )
        state = _read_state(data, header, path)
    finally:
        data.close()

    if model is not None:
        live = model_fingerprint(model, stored_mode, model_ref=header["model"])
        if live != header["fingerprint"]:
            raise ArtifactError(
                f"artifact {path!r} fingerprint does not match the supplied model; "
                "the model has mutated (or is not the model this artifact was saved from)"
            )
    else:
        model = _rebuild_model(header, path)
        _restore_state(model, state, path)
        if stored_mode == "int8":
            from ..compress.quantization import _QuantizedWrapper

            for _, wrapper in model.named_modules():
                if isinstance(wrapper, _QuantizedWrapper):
                    wrapper.observing = False
                    wrapper._samples = []
        restored = _fingerprint(stored_mode, header["model"], model, model.state_dict())
        if restored != header["fingerprint"]:
            raise ArtifactError(
                f"artifact {path!r} fingerprint mismatch after restore; "
                "the file is corrupted or was written by a diverged runtime"
            )

    options = header.get("options", {})
    kwargs = {}
    if stored_mode == "int8":
        kwargs["dw_kernel"] = dw_kernel or options.get("dw_kernel", "auto")
    if threads is not None:
        kwargs["threads"] = threads
    loss = None
    if stored_mode == "train":
        from ..train.trainer import StandardLoss

        loss = StandardLoss(label_smoothing=float(header.get("loss", {}).get("label_smoothing", 0.0)))
    try:
        executor = compile_model(model, mode=stored_mode, loss=loss, **kwargs)
    except CompileError as error:
        raise ArtifactError(f"artifact {path!r} no longer compiles: {error}") from error

    fresh = graph_record(executor.graph)
    stored = header.get("graph")
    if stored is not None and fresh != stored:
        raise ArtifactError(
            f"artifact {path!r} compiler drift: recompiled graph does not match "
            f"the stored record ({_first_graph_diff(stored, fresh)}); "
            "re-save the artifact with this runtime"
        )
    plan = header.get("plan")
    if plan is not None:
        fresh_plan = _plan_record(executor, plan["input_shape"])
        if fresh_plan != plan:
            raise ArtifactError(
                f"artifact {path!r} arena plan drift at input {plan['input_shape']}: "
                f"stored {plan} vs recompiled {fresh_plan}"
            )
    executor.artifact = _info_from_header(path, header)
    return executor
