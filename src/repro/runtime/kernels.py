"""Fused NumPy inference kernels operating on raw ``ndarray`` payloads.

These are the leaf operations executed by a :class:`~repro.runtime.CompiledNet`.
They deliberately bypass the autograd :class:`~repro.nn.tensor.Tensor` wrapper:
no tape nodes, no closures, no gradient bookkeeping.  Each kernel

* reuses the zero-copy sliding-window machinery of
  :mod:`repro.nn.functional` for the convolution/pooling contractions;
* adds bias terms and applies activations *in place* on its freshly
  allocated output, so a fused ``conv -> bias -> act`` step costs exactly one
  output allocation;
* draws padded-input scratch space from the shared per-shape workspace cache
  (safe here: inference retains nothing between calls — and the cache is
  **thread-local**, so tile tasks running on pool workers never alias each
  other's scratch; see :mod:`repro.nn.functional`).

:func:`tiled_conv2d` / :func:`tiled_linear` are the threaded variants: they
cut the output-channel dimension into disjoint slices of one preallocated
output buffer (the deterministic :func:`repro.runtime.parallel.partition`)
and compute each slice as an ordinary fused kernel on a worker thread.  No
locks: the slices are disjoint by construction, and the arena planner's
liveness analysis guarantees nothing else is live in that buffer.

Activations are described by small spec tuples ``(kind, *params)`` — e.g.
``("relu",)``, ``("leaky", 0.3)`` — produced by the compiler from the eager
activation modules.
"""

from __future__ import annotations

import numpy as np

from ..nn.functional import _conv_windows, _pad2d, _pool_slices, conv_output_size

__all__ = [
    "apply_activation",
    "fused_conv2d",
    "fused_linear",
    "tiled_conv2d",
    "tiled_linear",
    "affine_channels",
    "max_pool2d_raw",
    "avg_pool2d_raw",
    "global_avg_pool2d_raw",
    "quantize_input_raw",
    "quantized_conv2d_raw",
    "quantized_linear_raw",
]


def apply_activation(out: np.ndarray, act: tuple | None, inplace: bool = True) -> np.ndarray:
    """Apply an activation spec to ``out``.

    ``inplace=True`` is only valid when ``out`` is a freshly allocated buffer
    owned by the caller (the fused-kernel case); standalone activation ops
    must pass ``inplace=False`` so residual inputs are never clobbered.
    """
    if act is None:
        return out
    kind = act[0]
    if kind == "relu":
        return np.maximum(out, 0.0, out=out) if inplace else np.maximum(out, 0.0)
    if kind == "relu6":
        return np.clip(out, 0.0, 6.0, out=out) if inplace else np.clip(out, 0.0, 6.0)
    if kind == "leaky":
        slope = act[1]
        return np.where(out >= 0.0, out, slope * out)
    if kind == "relu6_interp":
        # DecayableReLU6 mid-anneal: (1 - alpha) * clip(x, 0, 6) + alpha * x.
        alpha = act[1]
        mixed = np.clip(out, 0.0, 6.0)
        mixed *= 1.0 - alpha
        mixed += alpha * out
        return mixed
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-out))
    if kind == "tanh":
        return np.tanh(out, out=out) if inplace else np.tanh(out)
    if kind == "swish":
        return out * (1.0 / (1.0 + np.exp(-out)))
    if kind == "hardsigmoid":
        return np.clip(out * (1.0 / 6.0) + 0.5, 0.0, 1.0)
    if kind == "hardswish":
        return out * np.clip(out * (1.0 / 6.0) + 0.5, 0.0, 1.0)
    raise ValueError(f"unknown activation spec {act!r}")


def fused_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    groups: int,
    act: tuple | None = None,
) -> np.ndarray:
    """Convolution + bias + activation as one kernel (single output buffer).

    Parameters
    ----------
    x:
        Input batch ``(N, C_in, H, W)``, ``float32``.
    weight:
        Filters ``(C_out, C_in // groups, kH, kW)``.
    bias:
        Per-output-channel bias, or ``None``.
    stride, padding, groups:
        Standard convolution hyper-parameters; ``groups == C_in`` selects the
        depthwise fast path, 1x1 kernels the pointwise-matmul fast path.
    act:
        Activation spec tuple (see :func:`apply_activation`), or ``None``.

    Returns
    -------
    ndarray
        ``(N, C_out, H_out, W_out)`` with bias and activation applied
        in place on the single freshly allocated output buffer.
    """
    n, c_in = x.shape[:2]
    c_out, c_in_g, kh, kw = weight.shape
    multiplier = c_out // groups

    if kh == 1 and kw == 1 and groups == 1:
        # Pointwise fast path: batched matmul over channels.
        xp = _pad2d(x, padding, reuse=True)
        xs = xp[:, :, ::stride, ::stride] if stride > 1 else xp
        out_h, out_w = xs.shape[2:4]
        x_flat = np.ascontiguousarray(xs).reshape(n, c_in, out_h * out_w)
        out = np.matmul(weight.reshape(c_out, c_in), x_flat).reshape(n, c_out, out_h, out_w)
        if bias is not None:
            out += bias.reshape(1, c_out, 1, 1)
        return apply_activation(out, act)

    windows = _conv_windows(x, (kh, kw), stride, padding, reuse_pad=True)
    out_h, out_w = windows.shape[2:4]

    if c_in_g == 1 and groups == c_in:
        if multiplier == 1:
            out = np.einsum("nchwij,cij->nchw", windows, weight[:, 0], optimize=True)
        else:
            w_dw = weight.reshape(c_in, multiplier, kh, kw)
            out = np.einsum("nchwij,cmij->ncmhw", windows, w_dw, optimize=True)
            out = out.reshape(n, c_out, out_h, out_w)
    elif groups == 1:
        out = np.einsum("nchwij,ocij->nohw", windows, weight, optimize=True)
    else:
        windows_g = windows.reshape(n, groups, c_in_g, out_h, out_w, kh, kw)
        w_g = weight.reshape(groups, multiplier, c_in_g, kh, kw)
        out = np.einsum("ngqhwij,goqij->ngohw", windows_g, w_g, optimize=True)
        out = out.reshape(n, c_out, out_h, out_w)

    if bias is not None:
        out += bias.reshape(1, c_out, 1, 1)
    return apply_activation(out, act)


def fused_linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, act: tuple | None = None
) -> np.ndarray:
    """``x @ W.T`` + bias + activation as one kernel.

    Parameters
    ----------
    x:
        Input batch ``(N, in_features)``.
    weight:
        ``(out_features, in_features)``.
    bias:
        ``(out_features,)`` or ``None``.
    act:
        Activation spec tuple, or ``None``.

    Returns
    -------
    ndarray
        ``(N, out_features)``.
    """
    out = x @ weight.T
    if bias is not None:
        out += bias
    return apply_activation(out, act)


# Out-channel tiling only pays off when each slice still feeds BLAS a
# decent contraction; below these floors the fork/join overhead dominates.
_COUT_MIN_TILE = 16
_COUT_MIN_CHANNELS = 2 * _COUT_MIN_TILE


def tiled_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    groups: int,
    act: tuple | None,
    executor,
) -> np.ndarray:
    """Output-channel-tiled :func:`fused_conv2d` for small batches.

    Cuts ``C_out`` into the deterministic partition and computes each slice
    with the ordinary fused kernel, writing disjoint ``out[:, c0:c1]``
    views of one preallocated buffer from the executor's worker pool.
    Supported for dense/pointwise (``groups == 1``) and pure depthwise
    (``groups == C_in``, multiplier 1) convolutions; anything else — and
    anything below the tiling floor — falls back to the serial kernel.
    The partition depends only on the shapes, so results are identical at
    every thread count.
    """
    from .parallel import partition

    c_out = weight.shape[0]
    depthwise = groups == x.shape[1] and weight.shape[1] == 1 and c_out == groups
    if not (groups == 1 or depthwise) or c_out < _COUT_MIN_CHANNELS:
        return fused_conv2d(x, weight, bias, stride, padding, groups, act)
    slices = partition(c_out, executor.max_tiles, _COUT_MIN_TILE)
    if len(slices) <= 1:
        return fused_conv2d(x, weight, bias, stride, padding, groups, act)

    n = x.shape[0]
    kh, kw = weight.shape[2:]
    out_h = conv_output_size(x.shape[2], kh, stride, padding)
    out_w = conv_output_size(x.shape[3], kw, stride, padding)
    out = np.empty((n, c_out, out_h, out_w), dtype=x.dtype)

    def run_tile(cols: slice) -> None:
        w_tile = weight[cols]
        b_tile = None if bias is None else bias[cols]
        if depthwise:
            out[:, cols] = fused_conv2d(
                np.ascontiguousarray(x[:, cols]), w_tile, b_tile,
                stride, padding, cols.stop - cols.start, act,
            )
        else:
            out[:, cols] = fused_conv2d(x, w_tile, b_tile, stride, padding, 1, act)

    executor.run_wave([lambda cols=cols: run_tile(cols) for cols in slices])
    return out


def tiled_linear(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    act: tuple | None,
    executor,
) -> np.ndarray:
    """Output-feature-tiled :func:`fused_linear` (same contract as
    :func:`tiled_conv2d`: disjoint slices of one output, fixed partition)."""
    from .parallel import partition

    out_features = weight.shape[0]
    if out_features < _COUT_MIN_CHANNELS:
        return fused_linear(x, weight, bias, act)
    slices = partition(out_features, executor.max_tiles, _COUT_MIN_TILE)
    if len(slices) <= 1:
        return fused_linear(x, weight, bias, act)
    out = np.empty((x.shape[0], out_features), dtype=x.dtype)

    def run_tile(cols: slice) -> None:
        b_tile = None if bias is None else bias[cols]
        out[:, cols] = fused_linear(x, weight[cols], b_tile, act)

    executor.run_wave([lambda cols=cols: run_tile(cols) for cols in slices])
    return out


def affine_channels(
    x: np.ndarray, scale: np.ndarray, shift: np.ndarray, act: tuple | None = None
) -> np.ndarray:
    """Per-channel ``x * scale + shift`` — an eval-mode BatchNorm."""
    shape = (1, -1) + (1,) * (x.ndim - 2)
    out = x * scale.reshape(shape)
    out += shift.reshape(shape)
    return apply_activation(out, act)


def max_pool2d_raw(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    out_h = conv_output_size(x.shape[2], kernel, stride, padding)
    out_w = conv_output_size(x.shape[3], kernel, stride, padding)
    xp = _pad2d(x, padding, reuse=True)
    out = None
    for _, _, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
        out = piece.copy() if out is None else np.maximum(out, piece, out=out)
    return out


def avg_pool2d_raw(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    out_h = conv_output_size(x.shape[2], kernel, stride, padding)
    out_w = conv_output_size(x.shape[3], kernel, stride, padding)
    xp = _pad2d(x, padding, reuse=True)
    out = None
    for _, _, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
        if out is None:
            out = piece.astype(x.dtype, copy=True)
        else:
            out += piece
    out *= 1.0 / (kernel * kernel)
    return out


def global_avg_pool2d_raw(x: np.ndarray) -> np.ndarray:
    return x.mean(axis=(2, 3), keepdims=True)


# --------------------------------------------------------------------------- #
# integer (quantized) kernels
# --------------------------------------------------------------------------- #
def quantize_input_raw(
    x: np.ndarray, scale: float, zero_point: float, bits: int = 8
) -> np.ndarray:
    """Quantize a float tensor onto a calibrated activation grid, zero-centred.

    Returns float32 values on the integer grid shifted by the zero point
    (``v = clip(rint(x / scale), -zp, qmax - zp)``) — the representation used
    by the integer engine: real ``0.0`` maps to ``0.0`` exactly, so zero
    padding needs no special handling, and requantization between grids
    commutes with rounding because zero points are integers.
    """
    qmax = float(2**bits - 1)
    v = np.rint(x * np.float32(1.0 / scale))
    return np.clip(v, -zero_point, qmax - zero_point, out=v)


def quantized_conv2d_raw(
    x: np.ndarray,
    weight_q: np.ndarray,
    multiplier: np.ndarray,
    bias: np.ndarray,
    in_scale: float,
    in_zero_point: float,
    bits: int,
    stride: int,
    padding: int,
    groups: int,
    act: tuple | None = None,
) -> np.ndarray:
    """One-shot integer convolution returning dequantized float output.

    The input is quantized onto the layer's calibrated grid, convolved against
    the raw int8 ``weight_q`` (carried in float32 lanes, where the integer
    accumulation is exact below :math:`2^{24}`), and mapped back to float by
    the fused per-output-channel ``multiplier`` / ``bias``
    (``in_scale * weight_scale * bn_scale`` and
    ``conv_bias * bn_scale + bn_shift``).  This is the self-contained op the
    float compiler uses to route :class:`~repro.compress.QuantizedConv2d`
    wrappers; the planned engine (:mod:`repro.runtime.quantized`) fuses the
    same math across ops instead.
    """
    v = quantize_input_raw(x, in_scale, in_zero_point, bits)
    acc = fused_conv2d(v, weight_q.astype(np.float32), None, stride, padding, groups, None)
    out = acc * multiplier.reshape(1, -1, 1, 1)
    out += bias.reshape(1, -1, 1, 1)
    return apply_activation(out, act)


def quantized_linear_raw(
    x: np.ndarray,
    weight_q: np.ndarray,
    multiplier: np.ndarray,
    bias: np.ndarray,
    in_scale: float,
    in_zero_point: float,
    bits: int,
    act: tuple | None = None,
) -> np.ndarray:
    """One-shot integer linear layer returning dequantized float output."""
    v = quantize_input_raw(x, in_scale, in_zero_point, bits)
    out = v @ weight_q.astype(np.float32).T
    out *= multiplier
    out += bias
    return apply_activation(out, act)
