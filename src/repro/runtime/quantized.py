"""True-integer (int8) inference engine.

This module is the ``mode="int8"`` lowering target of :func:`repro.compile`.
It consumes a model processed by :func:`repro.compress.quantize_model` +
:func:`repro.compress.calibrate` — traced by the shared
:mod:`repro.runtime.ir` tracer and annotated by the int8 pass pipeline
(BN-fold, integer clamp fusion, grid annotation, CNHW layout) — and lowers it
to a statically planned program that *actually executes on the integer grid*,
instead of round-tripping through float like the fake-quant eager path:

* **Weights stay int8.**  Each op reads the wrapper's ``weight_q`` /
  ``weight_scale`` buffers; the float weights are never touched.
* **Activations live on the integer grid end to end.**  The input image is
  quantized once; every conv/linear output is *requantized* straight onto its
  consumer's calibrated grid with a fused per-channel multiplier, and ReLU /
  ReLU6 become clamps in the integer domain.  Values are stored zero-point
  centred, so zero padding is literally zero.  Residual adds and global
  average pooling happen on the grid as well; logits are dequantized at the
  very end.
* **Integer-exact accumulation.**  Grid values are carried in ``float32``
  lanes so the gemms run on BLAS: products of int8 weights with
  ``(2**bits - 1)``-bounded activations accumulate exactly as long as
  ``K * max|w| * max|v| < 2**24``, which is checked per op at lowering time
  (ops exceeding the bound accumulate in float64 instead).  Every kernel
  variant therefore produces bit-identical integers, and results are
  bit-identical across batch sizes — the property the serving layer's padded
  dynamic batching relies on.
* **Static memory plan.**  All activation and scratch buffers are packed into
  one arena by :class:`repro.runtime.planner.ArenaPlanner`; the steady-state
  forward performs no heap allocation on the hot paths, and the plan reports
  the peak int8 working set, directly comparable to
  :func:`repro.eval.deployment.peak_activation_memory`.

Buffers use a channel-outermost ``(C, N, H, W)`` layout so a pointwise
convolution over the whole batch is a single ``(C_out, C_in) @ (C_in, N*H*W)``
sgemm.  Depthwise convolutions choose among several kernel strategies
(flat-tap shift stack, flat einsum, transposed tap-stack, path-optimized
windowed einsum, per-offset accumulation) by timing each candidate on the
planned buffers at plan time — all variants compute the same exact integers,
so the choice never affects results.

The fake-quant eager model remains the accuracy oracle: engine logits match
it to within dequantization tolerance (asserted in the test-suite).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import nn
from ..compress.quantization import _QuantizedWrapper
from ..nn.functional import conv_output_size
from . import kernels
from .ir import Graph, OpNode, QuantCompileError, bn_scale_shift
from .planner import ArenaPlanner, MemoryPlan

__all__ = ["QuantCompileError", "QuantizedNet", "compile_quantized", "build_quantized_program"]

# float32 mantissa capacity: integer sums below this are exact.
_EXACT_F32_BOUND = float(2**24)

_DW_KERNELS = ("auto", "flat", "flat_einsum", "stacked", "einsum", "offsets")


# --------------------------------------------------------------------------- #
# IR nodes
# --------------------------------------------------------------------------- #
class _QConvIR:
    """Integer conv op: int8 weight, input grid, folded BN, fused activation."""

    def __init__(self, wrapper: _QuantizedWrapper, name: str):
        self.name = name or "qconv"
        self.weight_q = wrapper.weight_q
        self.w_scale = np.atleast_1d(np.asarray(wrapper.weight_scale, dtype=np.float32))
        layer = wrapper.wrapped
        self.bias = None if layer.bias is None else layer.bias.data.astype(np.float32)
        self.stride = getattr(layer, "stride", 1)
        self.padding = getattr(layer, "padding", 0)
        self.groups = getattr(layer, "groups", 1)
        self.bits = wrapper.spec.bits
        qparams = wrapper.input_qparams() if not wrapper.observing else None
        if qparams is None:
            raise QuantCompileError(
                f"quantized layer {self.name!r} has no frozen activation range; "
                "run repro.compress.calibrate first"
            )
        self.in_scale, self.in_zp = qparams
        self.bn_scale: np.ndarray | None = None
        self.bn_shift: np.ndarray | None = None
        self.act: tuple | None = None  # ("relu",) / ("relu6",) fuse into the clamp

    @property
    def c_out(self) -> int:
        return self.weight_q.shape[0]

    @property
    def grid(self) -> tuple[float, float, int]:
        return (self.in_scale, self.in_zp, self.bits)

    def fold_bn(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self.bn_scale = scale.astype(np.float32)
        self.bn_shift = shift.astype(np.float32)

    def needs_float64(self) -> bool:
        k = int(np.prod(self.weight_q.shape[1:]))
        max_w = float(np.abs(self.weight_q.astype(np.int32)).max(initial=1))
        return k * max_w * float(2**self.bits - 1) >= _EXACT_F32_BOUND

    def requant_constants(self, out_scale: float | None):
        """Fused multiplier/offset mapping raw accumulators to the output.

        ``out_scale=None`` yields the dequantize-to-float constants.
        """
        bn_scale = self.bn_scale if self.bn_scale is not None else np.float64(1.0)
        bn_shift = self.bn_shift if self.bn_shift is not None else np.float64(0.0)
        w_scale = self.w_scale.astype(np.float64)
        if w_scale.size == 1:
            w_scale = np.full(self.c_out, w_scale[0])
        m = float(self.in_scale) * w_scale * bn_scale
        bias = np.zeros(self.c_out) if self.bias is None else self.bias.astype(np.float64)
        c = bias * bn_scale + bn_shift
        if out_scale is not None:
            m = m / out_scale
            c = c / out_scale
        return m.astype(np.float32), np.asarray(c, dtype=np.float32)


class _QLinearIR(_QConvIR):
    pass


class _AffineIR:
    def __init__(self, scale: np.ndarray, shift: np.ndarray):
        self.scale = scale.astype(np.float32)
        self.shift = shift.astype(np.float32)


class _ActIR:
    def __init__(self, spec: tuple):
        self.spec = spec


class _PoolIR:
    def __init__(self, kind: str, kernel: int, stride: int, padding: int):
        self.kind = kind  # "max" | "avg"
        self.kernel, self.stride, self.padding = kernel, stride, padding


class _GapIR:
    pass


class _FlattenIR:
    pass


class _ResidualIR:
    def __init__(self, body: list):
        self.body = body


class _EagerIR:
    def __init__(self, module: nn.Module):
        self.module = module


# --------------------------------------------------------------------------- #
# lowering: annotated shared graph -> flat internal IR list
# --------------------------------------------------------------------------- #
def _ir_from_node(node: OpNode) -> list:
    """Convert one annotated graph node into the emitter's internal IR.

    The int8 pass pipeline already made every fusion decision —
    ``meta["bn_folds"]`` and ``meta["act"]`` are simply applied here; plain
    (unquantized) convs/linears and unknown modules run eagerly in the float
    domain — correct, merely unfused.
    """
    kind = node.kind
    if kind in ("qconv", "qlinear"):
        ir = (_QConvIR if kind == "qconv" else _QLinearIR)(node.module, node.name)
        for scale, shift in node.meta.get("bn_folds", ()):
            ir.fold_bn(scale, shift)
        act = node.meta.get("act")
        if act is not None:
            ir.act = act
        return [ir]
    if kind == "bn":
        return [_AffineIR(*bn_scale_shift(node.module))]
    if kind == "act":
        return [_ActIR(node.meta["spec"])]
    if kind == "pool":
        return [_PoolIR(node.attrs["op"], node.attrs["kernel"], node.attrs["stride"], node.attrs["padding"])]
    if kind == "gap":
        return [_GapIR()]
    if kind == "flatten":
        return [_FlattenIR()]
    if kind == "residual":
        return [_ResidualIR(_ir_from_graph(node.body))]
    if isinstance(node.module, _QuantizedWrapper):  # pragma: no cover - future wrappers
        raise QuantCompileError(f"unsupported quantized wrapper {type(node.module).__name__}")
    return [_EagerIR(node.module)]


def _ir_from_graph(graph: Graph) -> list:
    nodes: list = []
    for node in graph.nodes:
        nodes.extend(_ir_from_node(node))
    return nodes


# --------------------------------------------------------------------------- #
# emission: IR -> planned steps
# --------------------------------------------------------------------------- #
class _Val:
    """A value flowing between steps: a buffer plus its grid (None = float).

    ``viewer`` maps the backing slot array to the logical tensor — the
    identity for plain contiguous buffers, an interior slice for values
    written straight into a consumer's padded scratch.
    """

    __slots__ = ("buf", "shape", "viewer", "grid")

    def __init__(self, buf, shape, viewer, grid):
        self.buf = buf
        self.shape = tuple(shape)
        self.viewer = viewer
        self.grid = grid


def _identity_view(a):
    return a


def _grid_target(nodes: list, index: int, tail):
    """What representation does the value produced at ``index`` feed into?

    The *grid* (scale/zero-point) propagates through grid-preserving ops
    (pooling, flatten), so the producer requantizes straight onto the grid of
    the next integer op even when such ops intervene.  Returns
    ``("grid", consumer_ir)``, ``("float", None)``, or ``tail`` when the
    chain is exhausted.
    """
    for node in nodes[index + 1 :]:
        if isinstance(node, (_PoolIR, _GapIR, _FlattenIR)):
            continue
        if isinstance(node, (_QConvIR, _QLinearIR)):
            return ("grid", node)
        if isinstance(node, _ResidualIR):
            inner = _grid_target(node.body, -1, ("float", None))
            return inner if inner[0] == "grid" else ("float", None)
        return ("float", None)
    return tail


def _direct_consumer(nodes: list, index: int, consumer) -> bool:
    """True when ``consumer`` is the op immediately after ``index`` (possibly
    as the first op of a residual body), i.e. the producer may write straight
    into the consumer's input slot."""
    if index + 1 >= len(nodes):
        return False
    nxt = nodes[index + 1]
    if nxt is consumer:
        return True
    return isinstance(nxt, _ResidualIR) and bool(nxt.body) and nxt.body[0] is consumer


class _Emitter:
    def __init__(self, planner: ArenaPlanner, dw_kernel: str):
        self.planner = planner
        self.factories: list = []
        self.slot_for: dict[int, tuple] = {}  # id(consumer ir) -> (buf, viewer)
        self.op_log: list[str] = []
        self.dw_kernel = dw_kernel
        self.tail_slack = 0

    def need_tail_slack(self, elements: int) -> None:
        """Reserve arena tail slack for shifted overlapping views."""
        self.tail_slack = max(self.tail_slack, int(elements))

    def emit(self, factory, uses: list, label: str = "") -> None:
        """Schedule one step; ``uses`` are the planner buffers it touches."""
        step = self.planner.advance()
        for buf in uses:
            buf.touch(step)
        self.factories.append((factory, label))

    def log(self, kind: str) -> None:
        self.op_log.append(kind)


def _q_bounds(grid, act: tuple | None) -> tuple[float, float]:
    """Integer-domain clamp for a centred grid, with the activation fused in."""
    scale, zp, bits = grid
    qmax = float(2**bits - 1)
    lo, hi = -zp, qmax - zp
    if act is not None and act[0] in ("relu", "relu6"):
        lo = max(lo, 0.0)
        if act[0] == "relu6":
            hi = min(hi, float(np.rint(6.0 / scale)))
    return lo, hi


def _requantize(acc, m, c, lo, hi, mode, float_act, target, scratch=None):
    """Fused scale + offset (+ integer round/clamp) from accumulator to target.

    When ``target`` is a strided view (a consumer's padded-scratch interior),
    the elementwise chain runs in a contiguous buffer — the accumulator, or
    ``scratch`` when the accumulator itself is strided — and lands in the
    view with a single strided copy, several times cheaper than four strided
    passes.
    """
    if target is acc or target.flags["C_CONTIGUOUS"]:
        work = target
    elif acc.flags["C_CONTIGUOUS"]:
        work = acc
    else:
        work = scratch
    np.multiply(acc, m, out=work)
    work += c
    if mode == "grid":
        np.rint(work, out=work)
        np.clip(work, lo, hi, out=work)
    elif mode == "float" and float_act is not None:
        result = kernels.apply_activation(work, float_act, inplace=True)
        if result is not work:
            work[...] = result
    if work is not target:
        target[...] = work


def _make_conv_slot(em: _Emitter, ir: _QConvIR, c: int, n: int, h: int, w: int):
    """Allocate the (possibly padded) input slot owned by a conv.

    Padded slots get a zero-fill step immediately before the interior write —
    the arena slot is shared with other buffers, so the pad ring must be
    re-zeroed each run (zero *is* the grid zero: values are zero-point
    centred)."""
    p = ir.padding
    if p > 0:
        buf = em.planner.alloc((c, n, h + 2 * p, w + 2 * p), "value", f"{ir.name}.in")

        def viewer(a, p=p, h=h, w=w):
            return a[:, :, p : p + h, p : p + w]

        def fill_factory(buf=buf):
            def run():
                buf.a[...] = 0.0

            return run

        em.emit(fill_factory, [buf], f"fill.{ir.name}")
        return buf, viewer
    buf = em.planner.alloc((c, n, h, w), "value", f"{ir.name}.in")
    return buf, _identity_view


def _emit_quantize(em: _Emitter, val, grid, slot_buf, slot_viewer, external_ctx=None):
    """Quantize a float value (or the external NCHW input) into a grid slot.

    Padded-interior targets are strided, so the rounding chain runs in a
    contiguous scratch buffer and lands with one strided copy.
    """
    scale, zp, bits = grid
    inv = np.float32(1.0 / scale)
    lo, hi = -zp, float(2**bits - 1) - zp
    strided = slot_viewer is not _identity_view
    scratch = em.planner.alloc(
        _viewer_shape(slot_buf, slot_viewer), "scratch", "quantize.tmp"
    ) if strided else None

    if external_ctx is not None:

        def factory(buf=slot_buf, viewer=slot_viewer, ctx=external_ctx, scratch=scratch):
            view = viewer(buf.a)
            work = scratch.a if scratch is not None else view

            def run():
                x = ctx["x"].transpose(1, 0, 2, 3)  # NCHW -> CNHW
                np.multiply(x, inv, out=work)
                np.rint(work, out=work)
                np.clip(work, lo, hi, out=work)
                if work is not view:
                    view[...] = work

            return run

        uses = [slot_buf] if scratch is None else [slot_buf, scratch]
        em.emit(factory, uses, "quantize.input")
    else:

        def factory(src=val.buf, sview=val.viewer, buf=slot_buf, viewer=slot_viewer, scratch=scratch):
            view = viewer(buf.a)
            work = scratch.a if scratch is not None else view

            def run():
                np.multiply(sview(src.a), inv, out=work)
                np.rint(work, out=work)
                np.clip(work, lo, hi, out=work)
                if work is not view:
                    view[...] = work

            return run

        uses = [val.buf, slot_buf] if scratch is None else [val.buf, slot_buf, scratch]
        em.emit(factory, uses, "quantize")
    em.log("quantize")


def _viewer_shape(buf, viewer) -> tuple[int, ...]:
    """Logical shape a slot viewer exposes (computed from the slot's shape)."""
    probe = np.empty(buf.shape, dtype=np.bool_)
    return viewer(probe).shape


def _dw_candidates(ir: _QConvIR, pbuf, em: _Emitter, n, oh, ow):
    """Kernel strategies for a depthwise conv; closures are built at bind time
    (after arena packing) so they can precompute views on the real buffers.

    Every candidate computes the same exact integers (accumulation below
    ``2**24`` is order-independent), so selection never affects results.
    Each ``make_*`` returns ``(run, acc_array)`` — the accumulator the
    requantization step should read (contiguous for most variants, a strided
    slice of the padded-size accumulator for the flat-tap variant).
    """
    planner = em.planner
    c = ir.weight_q.shape[0]
    kh, kw = ir.weight_q.shape[2], ir.weight_q.shape[3]
    stride = ir.stride
    hp, wp = pbuf.shape[2], pbuf.shape[3]
    w_f32 = ir.weight_q.astype(np.float32)[:, 0]  # (C, kh, kw)
    prod = planner.alloc((kh * kw, c, n, hp, wp), "scratch", f"{ir.name}.taps")
    acc = planner.alloc((c, n, oh, ow), "scratch", f"{ir.name}.acc")
    acc_pad = planner.alloc((c, n, hp, wp), "scratch", f"{ir.name}.accpad")
    # The flat-tap view reads up to this many elements past the buffer's end
    # (the overrun lands in pad positions that are never read back).
    em.need_tail_slack((kh - 1) * wp + (kw - 1))

    def windows():
        win = sliding_window_view(pbuf.a, (kh, kw), axis=(2, 3))
        return win[:, :, ::stride, ::stride] if stride > 1 else win

    def make_flat():
        # Each tap is the *whole padded buffer* shifted by i*Wp + j: a set of
        # overlapping views with identical contiguous memory order, stacked
        # via as_strided.  The multiply/reduce then run at contiguous speed;
        # out-of-window positions compute garbage that lands in pad rows/cols
        # (or past the buffer, inside the arena's tail slack) and is excluded
        # by the strided accumulator slice below.
        itemsize = pbuf.a.itemsize
        v = np.lib.stride_tricks.as_strided(
            pbuf.a,
            shape=(kh, kw, c, n, hp, wp),
            strides=(wp * itemsize, itemsize) + pbuf.a.strides,
        )
        w6 = np.ascontiguousarray(w_f32.transpose(1, 2, 0)).reshape(kh, kw, c, 1, 1, 1)
        prod6 = prod.a.reshape(kh, kw, c, n, hp, wp)
        prod_flat = prod.a.reshape(kh * kw, c, n, hp, wp)
        acc_slice = acc_pad.a[:, :, : stride * oh : stride, : stride * ow : stride]

        def run():
            np.multiply(v, w6, out=prod6)
            np.add.reduce(prod_flat, axis=0, out=acc_pad.a)

        return run, acc_slice

    def make_flat_einsum():
        # Same shifted-overlapping-taps trick, but contracted in one einsum
        # pass (no 9x product materialization): V[i, j, c, m] addresses the
        # whole padded buffer shifted by (i, j), flattened per channel.
        itemsize = pbuf.a.itemsize
        nhw = n * hp * wp
        v = np.lib.stride_tricks.as_strided(
            pbuf.a,
            shape=(kh, kw, c, nhw),
            strides=(wp * itemsize, itemsize, nhw * itemsize, itemsize),
        )
        w3 = np.ascontiguousarray(w_f32.transpose(1, 2, 0))  # (kh, kw, C)
        acc2 = acc_pad.a.reshape(c, nhw)
        path = np.einsum_path("ijcm,ijc->cm", v, w3, optimize=True)[0]
        acc_slice = acc_pad.a[:, :, : stride * oh : stride, : stride * ow : stride]

        def run():
            np.einsum("ijcm,ijc->cm", v, w3, optimize=path, out=acc2)

        return run, acc_slice

    def make_stacked():
        vt = windows().transpose(4, 5, 0, 1, 2, 3)
        w6 = np.ascontiguousarray(w_f32.transpose(1, 2, 0)).reshape(kh, kw, c, 1, 1, 1)
        flat_prefix = prod.a.reshape(-1)[: kh * kw * c * n * oh * ow]
        prod6 = flat_prefix.reshape(kh, kw, c, n, oh, ow)
        prod_flat = flat_prefix.reshape(kh * kw, c, n, oh, ow)

        def run():
            np.multiply(vt, w6, out=prod6)
            np.add.reduce(prod_flat, axis=0, out=acc.a)

        return run, acc.a

    def make_einsum():
        win = windows()
        path = np.einsum_path("cnhwij,cij->cnhw", win, w_f32, optimize=True)[0]

        def run():
            np.einsum("cnhwij,cij->cnhw", win, w_f32, optimize=path, out=acc.a)

        return run, acc.a

    def make_offsets():
        taps = []
        for i in range(kh):
            for j in range(kw):
                sl = pbuf.a[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
                taps.append((sl, np.ascontiguousarray(w_f32[:, i, j]).reshape(c, 1, 1, 1)))
        tmp = prod.a.reshape(-1)[: c * n * oh * ow].reshape(c, n, oh, ow)

        def run():
            sl0, w0 = taps[0]
            np.multiply(sl0, w0, out=acc.a)
            for sl, wij in taps[1:]:
                np.multiply(sl, wij, out=tmp)
                np.add(acc.a, tmp, out=acc.a)

        return run, acc.a

    candidates = {
        "flat": make_flat,
        "flat_einsum": make_flat_einsum,
        "stacked": make_stacked,
        "einsum": make_einsum,
        "offsets": make_offsets,
    }
    return candidates, (prod, acc, acc_pad)


def _pick_kernel(candidates: dict, choice: str):
    """Bind-time kernel selection: time each candidate, keep the fastest.

    Safe because every candidate computes the same exact integers — the
    choice affects speed only, never results."""
    if choice != "auto":
        return candidates[choice]()
    best, best_t = None, np.inf
    for make in candidates.values():
        run_acc = make()
        run_acc[0]()  # warmup (also validates shapes)
        start = time.perf_counter()
        for _ in range(3):
            run_acc[0]()
        elapsed = time.perf_counter() - start
        if elapsed < best_t:
            best, best_t = run_acc, elapsed
    return best


def _emit_qconv(em: _Emitter, ir: _QConvIR, val: _Val, nodes: list, index: int, tail) -> _Val:
    c_in, n, h, w = val.shape
    kh, kw = ir.weight_q.shape[2], ir.weight_q.shape[3]
    oh = conv_output_size(h, kh, ir.stride, ir.padding)
    ow = conv_output_size(w, kw, ir.stride, ir.padding)
    c_out = ir.c_out

    # ---- input slot: pre-filled by the producer, borrowed, or built here.
    if id(ir) in em.slot_for:
        pbuf, pview = em.slot_for.pop(id(ir))
    elif val.grid is not None and ir.padding == 0 and val.viewer is _identity_view:
        pbuf, pview = val.buf, _identity_view  # borrow the producer's buffer
    else:
        pbuf, pview = _make_conv_slot(em, ir, c_in, n, h, w)
        if val.grid is None:
            _emit_quantize(em, val, ir.grid, pbuf, pview)
        else:

            def copy_factory(src=val.buf, sview=val.viewer, buf=pbuf, viewer=pview):
                view = viewer(buf.a)

                def run():
                    view[...] = sview(src.a)

                return run

            em.emit(copy_factory, [val.buf, pbuf], f"copy.{ir.name}")

    # ---- output destination.
    request = _grid_target(nodes, index, tail)
    mode = "grid"
    out_view = _identity_view
    if request[0] == "defer":
        _, out_grid, (out_buf, out_view) = request
        mode = "defer"
    elif request[0] == "grid":
        consumer = request[1]
        out_grid = consumer.grid
        if (
            _direct_consumer(nodes, index, consumer)
            and isinstance(consumer, _QConvIR)
            and not isinstance(consumer, _QLinearIR)
        ):
            out_buf, out_view = _make_conv_slot(em, consumer, c_out, n, oh, ow)
            em.slot_for[id(consumer)] = (out_buf, out_view)
        else:
            out_buf = em.planner.alloc((c_out, n, oh, ow), "value", f"{ir.name}.out")
    else:
        out_grid = None
        mode = "float"
        out_buf = em.planner.alloc((c_out, n, oh, ow), "value", f"{ir.name}.out")

    m, c_const = ir.requant_constants(out_grid[0] if out_grid else None)
    m4 = m.reshape(c_out, 1, 1, 1)
    c4 = c_const.reshape(c_out, 1, 1, 1)
    lo, hi = _q_bounds(out_grid, ir.act) if mode == "grid" else (None, None)
    float_act = ir.act if mode == "float" else None
    exact64 = ir.needs_float64()

    depthwise = ir.groups == c_in and ir.weight_q.shape[1] == 1 and ir.groups == c_out
    pointwise = kh == 1 and kw == 1 and ir.groups == 1 and ir.stride == 1 and ir.padding == 0

    if pointwise:
        w2 = ir.weight_q.astype(np.float64 if exact64 else np.float32).reshape(c_out, c_in)
        direct = out_view is _identity_view  # gemm can target the slot itself
        acc = out_buf if direct else em.planner.alloc((c_out, n, oh, ow), "scratch", f"{ir.name}.acc")

        def factory(pbuf=pbuf, pview=pview, acc=acc, out_buf=out_buf, out_view=out_view):
            x2 = pview(pbuf.a).reshape(c_in, n * oh * ow)
            acc2 = acc.a.reshape(c_out, n * oh * ow)
            target = out_view(out_buf.a)

            def run():
                if exact64:
                    acc2[...] = w2 @ x2.astype(np.float64)
                else:
                    np.dot(w2, x2, out=acc2)
                _requantize(acc.a, m4, c4, lo, hi, mode, float_act, target)

            return run

        em.emit(factory, [pbuf, acc, out_buf], f"pw.{ir.name}")
        em.log("qconv.pw")
    elif depthwise:
        candidates, dw_bufs = _dw_candidates(ir, pbuf, em, n, oh, ow)
        choice = em.dw_kernel
        req_scratch = dw_bufs[1]  # the contiguous accumulator doubles as staging

        def factory(out_buf=out_buf, out_view=out_view, req_scratch=req_scratch):
            gemm, acc_arr = _pick_kernel(candidates, choice)
            target = out_view(out_buf.a)

            def run():
                gemm()
                _requantize(acc_arr, m4, c4, lo, hi, mode, float_act, target, req_scratch.a)

            return run

        em.emit(factory, [pbuf, out_buf, *dw_bufs], f"dw.{ir.name}")
        em.log("qconv.dw")
    else:
        c_in_g = ir.weight_q.shape[1]
        p_in = pbuf.shape  # (C, N, Hp, Wp) of the (possibly padded) input slot
        acc = em.planner.alloc((c_out, n, oh, ow), "scratch", f"{ir.name}.acc")
        acc_pad = em.planner.alloc((c_out, p_in[2] * p_in[3] * n), "scratch", f"{ir.name}.accpad")
        col = em.planner.alloc((c_in_g, n, oh, ow), "scratch", f"{ir.name}.col")
        tmp = em.planner.alloc((c_out, n * oh * ow), "scratch", f"{ir.name}.tmp")
        em.need_tail_slack((kh - 1) * p_in[3] + (kw - 1))
        w_taps = ir.weight_q.astype(np.float64 if exact64 else np.float32)
        groups, stride = ir.groups, ir.stride
        m_g = c_out // groups

        def factory(
            pbuf=pbuf, pview=pview, acc=acc, acc_pad=acc_pad, col=col, tmp=tmp,
            out_buf=out_buf, out_view=out_view,
        ):
            target = out_view(out_buf.a)
            padded = pview(pbuf.a) if ir.padding == 0 else pbuf.a
            acc2 = acc.a.reshape(c_out, n * oh * ow)
            col2 = col.a.reshape(c_in_g, n * oh * ow)

            def tap_gemm():
                first = True
                for i in range(kh):
                    for j in range(kw):
                        for g in range(groups):
                            sl = padded[
                                g * c_in_g : (g + 1) * c_in_g,
                                :,
                                i : i + stride * oh : stride,
                                j : j + stride * ow : stride,
                            ]
                            np.copyto(col.a, sl)
                            wij = w_taps[g * m_g : (g + 1) * m_g, :, i, j]
                            rows = acc2[g * m_g : (g + 1) * m_g] if first else tmp.a[g * m_g : (g + 1) * m_g]
                            if exact64:
                                rows[...] = wij @ col2.astype(np.float64)
                            else:
                                np.dot(np.ascontiguousarray(wij), col2, out=rows)
                        if not first:
                            np.add(acc2, tmp.a, out=acc2)
                        first = False

            gemm, acc_arr = tap_gemm, acc.a
            if groups == 1 and not exact64:
                win = sliding_window_view(padded, (kh, kw), axis=(2, 3))
                if stride > 1:
                    win = win[:, :, ::stride, ::stride]
                path = np.einsum_path("cnhwij,ocij->onhw", win, w_taps, optimize=True)[0]

                def einsum_gemm():
                    np.einsum("cnhwij,ocij->onhw", win, w_taps, optimize=path, out=acc.a)

                candidates = {
                    "taps": lambda: (tap_gemm, acc.a),
                    "einsum": lambda: (einsum_gemm, acc.a),
                }
                # flat-tap einsum over the whole padded grid (overrun lands
                # in pad positions / arena slack, excluded by the slice)
                c_in, hp, wp = p_in[0], p_in[2], p_in[3]
                nhw = n * hp * wp
                itemsize = pbuf.a.itemsize
                v = np.lib.stride_tricks.as_strided(
                    pbuf.a,
                    shape=(c_in, kh, kw, nhw),
                    strides=(nhw * itemsize, wp * itemsize, itemsize, itemsize),
                )
                acc_full = acc_pad.a.reshape(c_out, n, hp, wp)
                fpath = np.einsum_path("cijm,ocij->om", v, w_taps, optimize=True)[0]
                flat_slice = acc_full[:, :, : stride * oh : stride, : stride * ow : stride]

                def flat_gemm():
                    np.einsum(
                        "cijm,ocij->om", v, w_taps, optimize=fpath,
                        out=acc_pad.a.reshape(c_out, nhw),
                    )

                candidates["flat"] = lambda: (flat_gemm, flat_slice)
                gemm, acc_arr = _pick_kernel(candidates, "auto")

            def run():
                gemm()
                _requantize(acc_arr, m4, c4, lo, hi, mode, float_act, target, acc.a)

            return run

        em.emit(factory, [pbuf, acc, acc_pad, col, tmp, out_buf], f"im2col.{ir.name}")
        em.log("qconv.im2col")

    out_shape = (c_out, n, oh, ow)
    return _Val(out_buf, out_shape, out_view, out_grid)


def _emit_qlinear(em: _Emitter, ir: _QLinearIR, val: _Val, nodes: list, index: int, tail) -> _Val:
    if len(val.shape) != 2:
        val = _emit_flatten(em, val)
    f, n = val.shape
    m_out = ir.weight_q.shape[0]

    if val.grid is not None:
        in_buf, in_view = val.buf, val.viewer
    else:
        in_buf = em.planner.alloc((f, n), "value", f"{ir.name}.in")
        in_view = _identity_view
        _emit_quantize(em, val, ir.grid, in_buf, in_view)

    request = _grid_target(nodes, index, tail)
    out_grid = request[1].grid if request[0] == "grid" else None
    mode = "grid" if out_grid else "float"
    out_buf = em.planner.alloc((m_out, n), "value", f"{ir.name}.out")
    m, c_const = ir.requant_constants(out_grid[0] if out_grid else None)
    m2, c2 = m.reshape(m_out, 1), c_const.reshape(m_out, 1)
    lo, hi = _q_bounds(out_grid, ir.act) if mode == "grid" else (None, None)
    float_act = ir.act if mode == "float" else None
    exact64 = ir.needs_float64()
    w2 = ir.weight_q.astype(np.float64 if exact64 else np.float32)

    def factory(in_buf=in_buf, in_view=in_view, out_buf=out_buf):
        x2 = in_view(in_buf.a).reshape(f, n)

        def run():
            if exact64:
                out_buf.a[...] = w2 @ x2.astype(np.float64)
            else:
                np.dot(w2, x2, out=out_buf.a)
            _requantize(out_buf.a, m2, c2, lo, hi, mode, float_act, out_buf.a)

        return run

    em.emit(factory, [in_buf, out_buf], f"linear.{ir.name}")
    em.log("qlinear")
    return _Val(out_buf, (m_out, n), _identity_view, out_grid)


def _emit_dequantize(em: _Emitter, val: _Val) -> _Val:
    scale = np.float32(val.grid[0])
    out = em.planner.alloc(val.shape, "value", "dequant")

    def factory(src=val.buf, sview=val.viewer, out=out):
        def run():
            np.multiply(sview(src.a), scale, out=out.a)

        return run

    em.emit(factory, [val.buf, out], "dequantize")
    em.log("dequantize")
    return _Val(out, val.shape, _identity_view, None)


def _emit_gap(em: _Emitter, val: _Val) -> _Val:
    c, n, h, w = val.shape
    out = em.planner.alloc((c, n, 1, 1), "value", "gap")
    on_grid = val.grid is not None
    inv_hw = np.float32(1.0 / (h * w))
    ones = np.ones(h * w, dtype=np.float32)

    def factory(src=val.buf, sview=val.viewer, out=out):
        out_flat = out.a.reshape(c * n)
        out2 = out.a.reshape(c, n)
        x = sview(src.a)
        x2 = x.reshape(c * n, h * w) if x.flags["C_CONTIGUOUS"] else None

        def run():
            if x2 is not None:
                # integer-exact spatial sum as one gemv, then scale (+ round)
                np.dot(x2, ones, out=out_flat)
                np.multiply(out_flat, inv_hw, out=out_flat)
            else:
                np.mean(sview(src.a), axis=(2, 3), out=out2)
            if on_grid:
                np.rint(out2, out=out2)  # integer average pooling

        return run

    em.emit(factory, [val.buf, out], "gap")
    em.log("gap")
    return _Val(out, (c, n, 1, 1), _identity_view, val.grid)


def _emit_pool(em: _Emitter, ir: _PoolIR, val: _Val) -> _Val:
    c, n, h, w = val.shape
    oh = conv_output_size(h, ir.kernel, ir.stride, ir.padding)
    ow = conv_output_size(w, ir.kernel, ir.stride, ir.padding)
    out = em.planner.alloc((c, n, oh, ow), "value", f"{ir.kind}pool")
    round_back = val.grid is not None and ir.kind == "avg"
    fn = kernels.max_pool2d_raw if ir.kind == "max" else kernels.avg_pool2d_raw

    def factory(src=val.buf, sview=val.viewer, out=out):
        def run():
            out.a[...] = fn(sview(src.a), ir.kernel, ir.stride, ir.padding)
            if round_back:
                np.rint(out.a, out=out.a)

        return run

    em.emit(factory, [val.buf, out], f"{ir.kind}pool")
    em.log(f"{ir.kind}pool")
    return _Val(out, (c, n, oh, ow), _identity_view, val.grid)


def _emit_flatten(em: _Emitter, val: _Val) -> _Val:
    if len(val.shape) == 2:
        return val
    c, n, h, w = val.shape
    if h == 1 and w == 1 and val.viewer is _identity_view:
        buf = val.buf
        return _Val(buf, (c, n), lambda a: a.reshape(c, n), val.grid)
    out = em.planner.alloc((c * h * w, n), "value", "flatten")

    def factory(src=val.buf, sview=val.viewer, out=out):
        def run():
            x = sview(src.a)  # (C, N, H, W) -> rows ordered (c, h, w)
            out.a[...] = x.transpose(0, 2, 3, 1).reshape(c * h * w, n)

        return run

    em.emit(factory, [val.buf, out], "flatten")
    em.log("flatten")
    return _Val(out, (c * h * w, n), _identity_view, val.grid)


def _emit_float_apply(em: _Emitter, val: _Val, fn, kind: str) -> _Val:
    """Dequantize if needed, then apply an in-place float transform."""
    if val.grid is not None:
        val = _emit_dequantize(em, val)

    def factory(src=val.buf, sview=val.viewer):
        def run():
            a = sview(src.a)
            result = fn(a)
            if result is not None and result is not a:
                a[...] = result

        return run

    em.emit(factory, [val.buf], kind)
    em.log(kind)
    return val


def _emit_eager(em: _Emitter, ir: _EagerIR, val: _Val) -> _Val:
    if val.grid is not None:
        val = _emit_dequantize(em, val)
    module = ir.module
    # infer the output shape once, at plan time
    probe_shape = (val.shape[1], val.shape[0]) + tuple(val.shape[2:])  # CN.. -> NC..
    was_training = module.training
    module.eval()
    with nn.no_grad():
        probe_out = module(nn.Tensor(np.zeros(probe_shape, dtype=np.float32)))
    module.train(was_training)
    nchw = probe_out.data.shape
    out_shape = (nchw[1], nchw[0]) + tuple(nchw[2:]) if len(nchw) > 1 else nchw
    out = em.planner.alloc(out_shape, "value", "eager")
    axes = (1, 0) + tuple(range(2, len(out_shape)))

    def factory(src=val.buf, sview=val.viewer, out=out):
        def run():
            x = np.ascontiguousarray(sview(src.a).transpose(axes))
            was = module.training
            module.eval()
            try:
                with nn.no_grad():
                    result = module(nn.Tensor(x))
            finally:
                module.train(was)
            data = result.data if isinstance(result, nn.Tensor) else np.asarray(result)
            out.a[...] = data.transpose(axes)

        return run

    em.emit(factory, [val.buf, out], "eager")
    em.log("eager")
    return _Val(out, out_shape, _identity_view, None)


def _emit_residual(em: _Emitter, ir: _ResidualIR, val: _Val, nodes: list, index: int, tail) -> _Val:
    identity = val
    request = _grid_target(nodes, index, tail)
    body_last = ir.body[-1] if ir.body else None
    can_integer_add = (
        request[0] == "grid"
        and isinstance(body_last, _QConvIR)
        and not isinstance(body_last, _QLinearIR)
        and body_last.act is None
    )
    if can_integer_add:
        consumer = request[1]
        out_grid = consumer.grid
        c_out = body_last.c_out
        _, n, h, w = val.shape  # residual blocks preserve the spatial dims
        if (
            _direct_consumer(nodes, index, consumer)
            and isinstance(consumer, _QConvIR)
            and not isinstance(consumer, _QLinearIR)
        ):
            out_buf, out_view = _make_conv_slot(em, consumer, c_out, n, h, w)
            em.slot_for[id(consumer)] = (out_buf, out_view)
        else:
            out_buf = em.planner.alloc((c_out, n, h, w), "value", "resid.out")
            out_view = _identity_view
        # body's last conv writes unrounded grid values into the slot; the
        # identity contribution is added on the same grid, then one round+clamp
        _emit_chain(em, ir.body, val, ("defer", out_grid, (out_buf, out_view)))
        tmp = em.planner.alloc((c_out, n, h, w), "scratch", "resid.tmp")
        k = np.float32((identity.grid[0] if identity.grid else 1.0) / out_grid[0])
        lo, hi = _q_bounds(out_grid, None)

        def factory(idb=identity.buf, idv=identity.viewer, out_buf=out_buf, out_view=out_view, tmp=tmp):
            target = out_view(out_buf.a)

            def run():
                np.multiply(idv(idb.a), k, out=tmp.a)
                np.add(target, tmp.a, out=target)
                np.rint(target, out=target)
                np.clip(target, lo, hi, out=target)

            return run

        em.emit(factory, [identity.buf, out_buf, tmp], "resid.add")
        em.log("resid.add")
        return _Val(out_buf, (c_out, n, h, w), out_view, out_grid)

    # float fallback: body dequantizes, identity is added in float
    body_val = _emit_chain(em, ir.body, val, ("float", None))
    if body_val.grid is not None:
        body_val = _emit_dequantize(em, body_val)
    tmp = em.planner.alloc(body_val.shape, "scratch", "resid.tmp")
    id_scale = np.float32(identity.grid[0]) if identity.grid else None

    def factory(idb=identity.buf, idv=identity.viewer, bb=body_val.buf, bv=body_val.viewer, tmp=tmp):
        def run():
            idx = idv(idb.a)
            body = bv(bb.a)
            if id_scale is not None:
                np.multiply(idx, id_scale, out=tmp.a)
                body += tmp.a
            else:
                body += idx

        return run

    em.emit(factory, [identity.buf, body_val.buf, tmp], "resid.add")
    em.log("resid.add")
    return body_val


def _emit_chain(em: _Emitter, nodes: list, val: _Val, tail) -> _Val:
    for i, node in enumerate(nodes):
        if isinstance(node, _QLinearIR):
            val = _emit_qlinear(em, node, val, nodes, i, tail)
        elif isinstance(node, _QConvIR):
            val = _emit_qconv(em, node, val, nodes, i, tail)
        elif isinstance(node, _ResidualIR):
            val = _emit_residual(em, node, val, nodes, i, tail)
        elif isinstance(node, _GapIR):
            val = _emit_gap(em, val)
        elif isinstance(node, _PoolIR):
            val = _emit_pool(em, node, val)
        elif isinstance(node, _FlattenIR):
            val = _emit_flatten(em, val)
        elif isinstance(node, _ActIR):
            spec = node.spec
            val = _emit_float_apply(
                em,
                val,
                lambda a, s=spec: kernels.apply_activation(a, s, inplace=True),
                f"act.{spec[0]}",
            )
        elif isinstance(node, _AffineIR):
            scale = node.scale.reshape(-1, 1, 1, 1)
            shift = node.shift.reshape(-1, 1, 1, 1)

            def affine(a, s=scale, sh=shift):
                a *= s
                a += sh

            val = _emit_float_apply(em, val, affine, "affine")
        elif isinstance(node, _EagerIR):
            val = _emit_eager(em, node, val)
        else:  # pragma: no cover - defensive
            raise QuantCompileError(f"unhandled IR node {type(node).__name__}")
    return val


# --------------------------------------------------------------------------- #
# execution plans and the public net
# --------------------------------------------------------------------------- #
@dataclass
class _ExecPlan:
    steps: list
    step_labels: list
    ctx: dict
    out_val: _Val
    arena: np.ndarray
    memory: MemoryPlan
    op_log: list

    def run(self, x: np.ndarray) -> np.ndarray:
        self.ctx["x"] = x
        for step in self.steps:
            step()
        out = self.out_val
        result = out.viewer(out.buf.a)
        if out.grid is not None:
            result = result * np.float32(out.grid[0])
        # CN.. -> NC..; always copy — the result must not alias the arena,
        # which the next run overwrites (a batch-1 transpose would otherwise
        # stay contiguous and escape as a live view).
        if result.ndim == 2:  # (M, N) -> (N, M)
            return result.T.copy()
        return result.transpose((1, 0) + tuple(range(2, result.ndim))).copy()


class QuantizedNet:
    """A quantized model lowered to the planned integer engine.

    Callable like :class:`~repro.runtime.compiler.CompiledNet`: Tensor or
    ndarray in, detached Tensor out; :meth:`numpy_forward` stays in ndarray
    land.  Execution plans (arena + bound kernels) are built lazily per input
    shape and cached **per thread**, so a server can run one worker per thread
    against a single :class:`QuantizedNet` without sharing scratch memory.

    Attributes
    ----------
    source:
        The calibrated fake-quant model this engine was compiled from
        (integer weights are snapshotted — recalibrate/retrain requires
        recompiling).
    graph:
        The annotated :class:`~repro.runtime.ir.Graph` the engine was built
        from (``None`` when constructed from a raw IR list).
    """

    def __init__(self, ir: list, source: nn.Module, dw_kernel: str = "auto",
                 graph: Graph | None = None, executor: "ParallelExecutor | None" = None):
        if dw_kernel not in _DW_KERNELS:
            raise ValueError(f"dw_kernel must be one of {_DW_KERNELS}")
        self._ir = ir
        self.source = source
        self.graph = graph
        self._dw_kernel = dw_kernel
        self._local = threading.local()
        # _op_log is assigned by whichever thread builds the first plan; the
        # lock keeps the first-wins publication race out of the engine (plan
        # building may now happen concurrently on pool workers).
        self._log_lock = threading.Lock()
        self._op_log: list[str] | None = None
        self.executor = executor

    @property
    def threads(self) -> int:
        """Worker count of the parallel plan (1 = serial execution)."""
        return 1 if self.executor is None else self.executor.threads

    # ------------------------------------------------------------------ #
    def plan(self, input_shape: tuple[int, int, int, int]) -> _ExecPlan:
        """Build (or fetch the thread-cached) plan for an ``(N, C, H, W)`` shape."""
        cache = getattr(self._local, "plans", None)
        if cache is None:
            cache = self._local.plans = {}
        key = tuple(int(s) for s in input_shape)
        plan = cache.get(key)
        if plan is None:
            plan = self._build(key)
            cache[key] = plan
            with self._log_lock:
                if self._op_log is None:
                    self._op_log = plan.op_log
        return plan

    def _build(self, input_shape) -> _ExecPlan:
        n, c, h, w = input_shape
        planner = ArenaPlanner()
        em = _Emitter(planner, self._dw_kernel)
        ctx: dict = {}
        first = self._ir[0] if self._ir else None
        if isinstance(first, _QConvIR) and not isinstance(first, _QLinearIR):
            # quantize the external input straight into the first conv's slot
            pbuf, pview = _make_conv_slot(em, first, c, n, h, w)
            _emit_quantize(em, None, first.grid, pbuf, pview, external_ctx=ctx)
            em.slot_for[id(first)] = (pbuf, pview)
            val = _Val(pbuf, (c, n, h, w), pview, first.grid)
        else:
            x_buf = planner.alloc((c, n, h, w), "value", "input")

            def input_factory(buf=x_buf):
                def run():
                    buf.a[...] = ctx["x"].transpose(1, 0, 2, 3)

                return run

            em.emit(input_factory, [x_buf], "input")
            val = _Val(x_buf, (c, n, h, w), _identity_view, None)
        out_val = _emit_chain(em, self._ir, val, ("float", None))
        arena, memory = planner.solve(tail_slack=em.tail_slack)
        steps = [factory() for factory, _ in em.factories]
        labels = [label for _, label in em.factories]
        return _ExecPlan(
            steps=steps, step_labels=labels, ctx=ctx, out_val=out_val,
            arena=arena, memory=memory, op_log=em.op_log,
        )

    # ------------------------------------------------------------------ #
    @property
    def ops(self) -> list[str]:
        """Lowered op kinds (e.g. ``"qconv.dw"``); built with the first plan.

        Contains no ``"eager"`` entries when every layer lowered to integer
        kernels — the test-suite asserts this for calibrated registry models.
        """
        if self._op_log is None:
            raise RuntimeError("no plan built yet; run a batch or call plan() first")
        return list(self._op_log)

    def memory_report(self, input_shape: tuple[int, int, int, int]) -> MemoryPlan:
        """The arena plan (peak working set, buffer table) for a shape."""
        return self.plan(tuple(input_shape)).memory

    def memory_plan(self, input_shape: tuple[int, int, int, int]) -> MemoryPlan:
        """Uniform-frontend alias of :meth:`memory_report`.

        Unlike the float engine's pass-computed accounting, this is the
        *executable* plan — the exact arena the engine runs in.
        """
        return self.memory_report(input_shape)

    def describe(self) -> str:
        """Printable lowering report (passes applied + annotated node table)."""
        from .frontend import describe_graph

        return describe_graph(self.graph, self)

    def save(self, path: str, *, input_shape=None, model_ref: dict | None = None):
        """Serialize to a versioned artifact file (see :func:`repro.load`)."""
        from .artifact import save_artifact

        return save_artifact(self, path, input_shape=input_shape, model_ref=model_ref)

    def numpy_forward(self, x: np.ndarray) -> np.ndarray:
        """Run the integer program on a raw ``(N, C, H, W)`` batch.

        With a parallel plan the batch is cut into the deterministic tile
        partition and the tiles run as one wave on the worker pool — each
        worker executes its tile in its *own* thread-cached plan (disjoint
        arena, disjoint scratch: no locks).  Integer accumulation makes the
        engine's output bit-identical across batch sizes, so the tiled
        result equals the untiled one exactly, at every thread count.
        """
        x = np.ascontiguousarray(x, dtype=np.float32)
        if self.executor is not None:
            rows = self.executor.batch_slices(x.shape[0])
            if len(rows) > 1:
                parts = self.executor.run_wave([
                    lambda sl=sl: self.plan(x[sl].shape).run(x[sl]) for sl in rows
                ])
                return np.concatenate(parts, axis=0)
        return self.plan(x.shape).run(x)

    def __call__(self, x) -> nn.Tensor:
        data = x.data if isinstance(x, nn.Tensor) else np.asarray(x, dtype=np.float32)
        return nn.Tensor(self.numpy_forward(data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuantizedNet(source={type(self.source).__name__})"


def build_quantized_program(graph: Graph, dw_kernel: str = "auto") -> QuantizedNet:
    """Lower an annotated graph to a :class:`QuantizedNet` (frontend backend hook).

    A ``plan_parallel`` annotation attaches a
    :class:`~repro.runtime.parallel.ParallelExecutor`; the engine then
    batch-tiles ``numpy_forward`` across per-thread execution plans.
    """
    par = graph.meta.get("parallel")
    executor = None
    if par is not None and not par.get("serial_reason"):
        from .parallel import ParallelExecutor

        executor = ParallelExecutor(par["threads"], par["max_tiles"], par["min_tile"])
    return QuantizedNet(_ir_from_graph(graph), graph.source, dw_kernel=dw_kernel,
                        graph=graph, executor=executor)


from .frontend import _deprecated


@_deprecated("repro.compile(model, mode='int8')")
def compile_quantized(model: nn.Module, dw_kernel: str = "auto") -> QuantizedNet:
    """Deprecated alias of ``repro.compile(model, mode="int8")``.

    Parameters
    ----------
    model:
        A model processed by :func:`repro.compress.quantize_model` and
        :func:`repro.compress.calibrate` (every wrapper must be frozen).
    dw_kernel:
        Depthwise kernel strategy: ``"auto"`` (time the candidates on the
        planned buffers and keep the fastest — the default), or one of
        ``"flat"`` / ``"flat_einsum"`` / ``"stacked"`` / ``"einsum"`` /
        ``"offsets"`` to force a variant.  All variants produce bit-identical
        results.

    Returns
    -------
    QuantizedNet
        The planned integer program.

    Raises
    ------
    QuantCompileError
        If the model contains no quantized layers, or a quantized layer has
        not been calibrated.

    .. deprecated::
        Use :func:`repro.compile` — this wrapper emits a
        :class:`DeprecationWarning` (once) and forwards to it.
    """
    from .frontend import compile_model

    return compile_model(model, mode="int8", dw_kernel=dw_kernel)
