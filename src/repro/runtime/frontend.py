"""One compilation frontend over every runtime engine.

:func:`compile_model` — exported as :func:`repro.compile` — is the single
entry point into the compiled runtimes.  It traces the model once
(:func:`repro.runtime.ir.trace`), schedules the mode's declared pass pipeline
(:mod:`repro.runtime.passes`) and hands the annotated graph to the matching
backend::

    import repro

    net  = repro.compile(model)                       # fused float inference
    qnet = repro.compile(model, mode="int8")          # true-integer engine
    step = repro.compile(model, mode="train",         # fused fwd+bwd step
                         loss=loss_computer, optimizer=optimizer)

Every executor shares a uniform surface: ``__call__`` (Tensor in / detached
Tensor out), ``numpy_forward`` (ndarray in / out; training steps take
``(images, labels)``), ``memory_plan(input_shape)`` (the arena planner's
:class:`~repro.runtime.planner.MemoryPlan`) and ``describe()`` (a printable
lowering report).

The serving layer resolves engines by *name* through the registry here
(``repro.serve --engine {float,int8}``); :func:`register_engine` lets
downstream code add aliases without touching the serving CLI.

The legacy entry points — ``compile_net``, ``compile_quantized``,
``compile_training_step`` — remain importable as thin deprecated wrappers
over this frontend.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass

from .. import nn
from .ir import CompileError, Graph, UnsupportedModule, trace
from .passes import PassManager, inference_pipeline, int8_pipeline, training_pipeline

__all__ = [
    "CompileOptions",
    "CompileError",
    "compile_model",
    "EngineSpec",
    "register_engine",
    "register_artifact_engine",
    "resolve_engine",
    "available_engines",
]

MODES = ("infer", "int8", "train")

_MODE_ALIASES = {
    "infer": "infer",
    "inference": "infer",
    "float": "infer",
    "int8": "int8",
    "quantized": "int8",
    "train": "train",
    "training": "train",
}


@dataclass(frozen=True)
class CompileOptions:
    """Tunable knobs of :func:`repro.compile`, shared across modes.

    Parameters
    ----------
    dw_kernel:
        Depthwise kernel strategy of the int8 engine (``"auto"`` times the
        candidates at plan time; see
        :func:`~repro.runtime.quantized.compile_quantized`).  Ignored by the
        other modes.
    threads:
        Worker count of the parallel execution plan
        (:mod:`repro.runtime.parallel`).  ``None`` (default) defers to
        ``$REPRO_THREADS`` — unset means serial, untiled legacy execution.
        ``0`` / ``"auto"`` / ``"max"`` use one worker per CPU.  Any explicit
        count — *including 1* — schedules the ``plan_parallel`` pass with
        its deterministic batch tiling, so outputs are bit-identical across
        every ``threads`` value (``threads=1`` simply drains the same waves
        inline).  Training mode records the request but keeps its documented
        serial fallback (BN batch statistics couple the batch).
    """

    dw_kernel: str = "auto"
    threads: int | str | None = None


# --------------------------------------------------------------------------- #
# mode builders
# --------------------------------------------------------------------------- #
def _build_infer(model: nn.Module, loss, optimizer, options: CompileOptions):
    from .compiler import build_inference_program

    graph = trace(model)
    graph.meta["mode"] = "infer"
    PassManager(inference_pipeline(threads=options.threads)).run(graph)
    return build_inference_program(graph)


def _build_int8(model: nn.Module, loss, optimizer, options: CompileOptions):
    from ..compress.quantization import _QuantizedWrapper
    from .ir import QuantCompileError
    from .quantized import build_quantized_program

    wrappers = [m for _, m in model.named_modules() if isinstance(m, _QuantizedWrapper)]
    if not wrappers:
        raise QuantCompileError(
            "model has no quantized layers; run repro.compress.quantize_model first"
        )
    graph = trace(model)
    graph.meta["mode"] = "int8"
    PassManager(int8_pipeline(threads=options.threads)).run(graph)
    return build_quantized_program(graph, dw_kernel=options.dw_kernel)


def _build_train(model: nn.Module, loss, optimizer, options: CompileOptions):
    from .training import build_training_program

    label_smoothing = 0.0
    if loss is not None:
        # Exactly StandardLoss — subclasses may override __call__ arbitrarily.
        from ..train.trainer import StandardLoss

        if type(loss) is not StandardLoss:
            raise CompileError(
                f"loss {type(loss).__name__} cannot be lowered to the fused training step"
            )
        label_smoothing = loss.label_smoothing
    graph = trace(model)
    graph.meta["mode"] = "train"
    PassManager(training_pipeline(label_smoothing, threads=options.threads)).run(graph)
    try:
        return build_training_program(graph)
    except UnsupportedModule as error:
        raise CompileError(f"model cannot be lowered to the fused training step: {error}") from error


_MODE_BUILDERS = {"infer": _build_infer, "int8": _build_int8, "train": _build_train}


def compile_model(
    model: nn.Module,
    mode: str = "infer",
    *,
    loss=None,
    optimizer=None,
    options: CompileOptions | None = None,
    **overrides,
):
    """Compile ``model`` for one of the runtime engines.

    Parameters
    ----------
    model:
        The eager :class:`~repro.nn.module.Module` tree to lower.
    mode:
        ``"infer"`` (default) for the fused float program
        (:class:`~repro.runtime.CompiledNet`), ``"int8"`` for the planned
        true-integer engine (:class:`~repro.runtime.QuantizedNet`; the model
        must be quantized and calibrated first), or ``"train"`` for the fused
        forward+backward step (:class:`~repro.runtime.TrainStep`).
        ``"float"``/``"quantized"``/``"training"`` are accepted aliases.
    loss:
        Training mode only: the loss computer to lower
        (a :class:`~repro.train.trainer.StandardLoss` or ``None`` for plain
        cross-entropy).
    optimizer:
        Training mode only; accepted for future lowering (gradients already
        flow through ``param.grad``, which a flat optimizer aliases).
    options:
        A :class:`CompileOptions`; individual fields may instead be passed as
        keyword overrides (``dw_kernel=...``).

    Returns
    -------
    CompiledNet | QuantizedNet | TrainStep
        An executor with the uniform ``__call__`` / ``numpy_forward`` /
        ``memory_plan`` / ``describe`` surface.

    Raises
    ------
    CompileError
        Unknown mode, a training model/loss that cannot be lowered, or — as
        the :class:`~repro.runtime.QuantCompileError` subclass — an int8
        request on an unquantized or uncalibrated model.
    """
    if options is None:
        options = CompileOptions(**overrides)
    elif overrides:
        raise ValueError("pass either a CompileOptions or keyword overrides, not both")
    key = _MODE_ALIASES.get(str(mode).lower())
    if key is None:
        raise CompileError(f"unknown compile mode {mode!r}; expected one of {MODES}")
    return _MODE_BUILDERS[key](model, loss, optimizer, options)


# --------------------------------------------------------------------------- #
# engine registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EngineSpec:
    """A named, servable inference engine resolving to a compile mode.

    An engine may instead be backed by a compiled artifact file
    (:mod:`repro.runtime.artifact`): its ``compile`` then *loads* the stored
    executor — bit-identical to the saved one — rather than compiling the
    passed model (which, when given, is only fingerprint-validated).
    """

    name: str
    mode: str
    description: str = ""
    artifact: str | None = None

    def compile(self, model: nn.Module | None = None, **kwargs):
        """Build this engine's executor via :func:`compile_model` (or artifact load)."""
        if self.artifact is not None:
            from .artifact import load_artifact

            return load_artifact(self.artifact, mode=self.mode, model=model, **kwargs)
        return compile_model(model, mode=self.mode, **kwargs)


_ENGINES: dict[str, EngineSpec] = {}


def register_engine(name: str, mode: str, description: str = "") -> EngineSpec:
    """Register (or replace) a named engine resolving to ``mode``."""
    if _MODE_ALIASES.get(str(mode).lower()) is None:
        raise CompileError(f"unknown compile mode {mode!r} for engine {name!r}")
    spec = EngineSpec(name=name, mode=mode, description=description)
    _ENGINES[name] = spec
    return spec


def register_artifact_engine(name: str, path: str, description: str = "") -> EngineSpec:
    """Register an engine backed by a compiled-artifact file.

    The artifact header is read (and its mode adopted) at registration, so a
    missing or unreadable file fails here — not inside a forked replica.
    """
    from .artifact import read_artifact_info

    info = read_artifact_info(path)
    spec = EngineSpec(
        name=name,
        mode=info.mode,
        description=description or f"artifact-backed {info.mode} engine ({path})",
        artifact=str(path),
    )
    _ENGINES[name] = spec
    return spec


def resolve_engine(name: str) -> EngineSpec:
    """Look up a registered engine by name (used by ``repro.serve --engine``)."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None


def available_engines() -> list[str]:
    """Names accepted by :func:`resolve_engine`."""
    return sorted(_ENGINES)


register_engine("float", "infer", "fused float32 inference (CompiledNet)")
register_engine("int8", "int8", "planned true-integer engine (QuantizedNet)")


# --------------------------------------------------------------------------- #
# deprecation plumbing for the legacy entry points
# --------------------------------------------------------------------------- #
_DEPRECATION_SEEN: set[str] = set()


def _deprecated(replacement: str):
    """Mark a legacy entry point: warn once (per process), then forward.

    The single home of the legacy-shim warning plumbing —
    ``compile_net`` / ``compile_quantized`` / ``compile_training_step`` are
    all plain functions decorated with this, so the once-only bookkeeping,
    message format and warning category cannot drift apart per shim.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if func.__name__ not in _DEPRECATION_SEEN:
                _DEPRECATION_SEEN.add(func.__name__)
                warnings.warn(
                    f"repro.runtime.{func.__name__} is deprecated; use {replacement}",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return func(*args, **kwargs)

        return wrapper

    return decorate


def describe_graph(graph: Graph | None, executor) -> str:
    """Shared ``describe()`` body: graph report plus the executor banner."""
    banner = f"{type(executor).__name__} — compiled by repro.compile"
    if graph is None:
        return banner + " (no graph attached; compiled from a pre-built program)"
    return banner + "\n" + graph.describe()
