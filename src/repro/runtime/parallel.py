"""Parallel scheduling primitives shared by the runtime backends.

Two layers of parallelism run on top of the graph IR, both planned at
compile time and executed lock-free:

1. **Wave scheduling** — :func:`levelize` groups the executable steps of a
   :class:`~repro.runtime.ir.Graph` into *waves*: sets of tasks with no data
   dependencies between them.  The traced chain is value-serial, so waves
   come from *tile expansion*: a batch-tileable node explodes into one task
   per batch tile, and every tile of one node forms a wave.  The
   :class:`ParallelExecutor` dispatches each wave to a persistent worker
   pool and joins it before the next wave starts.
2. **Tile partitioning** — :func:`partition` cuts the batch (or the output
   channels; see :func:`repro.runtime.kernels.tiled_conv2d`) into disjoint
   contiguous slices.  Concurrent tasks therefore write disjoint slices of
   the same output buffer, and the arena planner's liveness analysis already
   guarantees no *other* live buffer overlaps it — so no locks are needed
   anywhere on the hot path (:func:`wave_table` asserts this invariant and
   the tier-1 suite pins it).

**Determinism contract.**  The tile partition is a pure function of the
batch size (``partition`` ignores the worker count entirely); ``threads``
only chooses how many workers execute the fixed tile set.  Every thread
count therefore runs the *same* floating-point reductions in the same
association, and outputs are bit-identical across ``threads=1/2/8/...`` by
construction — ``tests/test_parallel_runtime.py`` asserts this for every
registry model in all three compile modes.

``threads`` resolution (:func:`resolve_threads`): ``None`` defers to the
``REPRO_THREADS`` environment variable (unset → serial, untiled legacy
execution); ``0``/``"auto"``/``"max"`` mean one worker per CPU; any positive
integer is taken literally (``1`` executes the parallel plan inline, which
is how the bit-identity tests get a serial reference for the same tiling).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from .ir import Graph, OpNode

__all__ = [
    "ENV_VAR",
    "resolve_threads",
    "partition",
    "ParallelExecutor",
    "WaveTask",
    "levelize",
    "wave_table",
    "TILEABLE_KINDS",
]

ENV_VAR = "REPRO_THREADS"

# Node kinds whose per-sample outputs are independent of the rest of the
# batch in inference mode (BN is folded or runs in eval mode), so the batch
# dimension may be cut into tiles.  "residual" is tileable iff its body is;
# "eager" wraps an arbitrary module and is never tiled; "loss" couples the
# whole batch (training runs serial anyway).
TILEABLE_KINDS = frozenset(
    {"conv", "linear", "qconv", "qlinear", "bn", "act", "pool", "gap",
     "flatten", "gap_flatten"}
)

# Plan-time tiling heuristic: never more than MAX_TILES tasks per wave
# (sync overhead), never fewer than MIN_TILE samples per task (kernel
# efficiency).  Both are part of the deterministic partition function.
MAX_TILES = 8
MIN_TILE = 2

_POOL_THREAD_PREFIX = "repro-wave"


def resolve_threads(threads: int | str | None = None) -> int:
    """Resolve a ``threads`` request to a concrete worker count.

    ``None`` reads ``$REPRO_THREADS`` (unset/empty → ``1``: serial);
    ``0`` / ``"auto"`` / ``"max"`` mean one worker per CPU; a positive int
    is used as-is.
    """
    if threads is None:
        env = os.environ.get(ENV_VAR, "").strip()
        if not env:
            return 1
        threads = env
    if isinstance(threads, str):
        if threads.lower() in ("auto", "max"):
            return max(1, os.cpu_count() or 1)
        threads = int(threads)
    threads = int(threads)
    if threads < 0:
        raise ValueError(f"threads must be >= 0, got {threads}")
    if threads == 0:
        return max(1, os.cpu_count() or 1)
    return threads


def partition(total: int, max_tiles: int = MAX_TILES, min_tile: int = MIN_TILE) -> list[slice]:
    """Cut ``range(total)`` into balanced contiguous slices.

    A pure function of ``total`` (and the plan constants) — deliberately
    *not* of the worker count, so the reduction tree is fixed per shape and
    outputs cannot depend on how many threads drained the wave.  Returns a
    single full slice when ``total`` is too small to cut.
    """
    total = int(total)
    if total <= 0:
        return [slice(0, total)]
    tiles = min(int(max_tiles), total // max(1, int(min_tile)))
    if tiles <= 1:
        return [slice(0, total)]
    base, extra = divmod(total, tiles)
    slices, start = [], 0
    for index in range(tiles):
        stop = start + base + (1 if index < extra else 0)
        slices.append(slice(start, stop))
        start = stop
    return slices


# --------------------------------------------------------------------------- #
# persistent worker pool
# --------------------------------------------------------------------------- #
_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _reset_pools_after_fork() -> None:
    # A forked child inherits the pool *objects* but none of their worker
    # threads, so any submit() in the child would queue work nobody drains
    # (observed as a hard hang under multiprocessing orchestrators).  Drop
    # the inherited husks — the child lazily builds fresh pools on demand.
    global _POOLS_LOCK
    _POOLS_LOCK = threading.Lock()
    _POOLS.clear()


if hasattr(os, "register_at_fork"):  # not available on Windows
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


def get_pool(workers: int) -> ThreadPoolExecutor | None:
    """Process-wide persistent pool with ``workers`` threads (``None`` for 1).

    Pools are shared by every engine compiled with the same worker count:
    kernels hold no shared mutable state (workspaces are thread-local,
    arena plans are per-thread), so engines cannot interfere through the
    pool beyond queueing.
    """
    workers = int(workers)
    if workers <= 1:
        return None
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = _POOLS[workers] = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"{_POOL_THREAD_PREFIX}-{workers}",
            )
        return pool


def _in_pool_worker() -> bool:
    return threading.current_thread().name.startswith(_POOL_THREAD_PREFIX)


class ParallelExecutor:
    """Dispatches waves of independent tasks to the persistent worker pool.

    ``threads=1`` (or a one-task wave) executes inline on the calling
    thread; results are identical either way because the task set — not the
    worker count — defines the computation.  Nested dispatch (a wave task
    submitting another wave) degrades to inline execution instead of
    deadlocking the pool.
    """

    def __init__(self, threads: int | str | None = None,
                 max_tiles: int = MAX_TILES, min_tile: int = MIN_TILE):
        self.threads = resolve_threads(threads)
        self.max_tiles = int(max_tiles)
        self.min_tile = int(min_tile)

    # ------------------------------------------------------------------ #
    def batch_slices(self, total: int) -> list[slice]:
        """The fixed batch partition for ``total`` samples."""
        return partition(total, self.max_tiles, self.min_tile)

    def run_wave(self, tasks: list) -> list:
        """Run one wave of zero-argument tasks; returns results in order.

        The calling thread always participates (it runs the last task while
        the pool drains the rest), so a wave never deadlocks waiting for
        saturated workers, and ``threads=1`` never touches the pool at all.
        """
        if not tasks:
            return []
        pool = None if self.threads <= 1 or _in_pool_worker() else get_pool(self.threads)
        if pool is None or len(tasks) == 1:
            return [task() for task in tasks]
        futures = [pool.submit(task) for task in tasks[:-1]]
        results = [None] * len(tasks)
        results[-1] = tasks[-1]()
        for index, future in enumerate(futures):
            results[index] = future.result()
        return results

    def map(self, fn, items: list) -> list:
        """``run_wave`` convenience over one function and many items."""
        return self.run_wave([lambda item=item: fn(item) for item in items])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(threads={self.threads}, max_tiles={self.max_tiles})"


# --------------------------------------------------------------------------- #
# levelization
# --------------------------------------------------------------------------- #
@dataclass
class WaveTask:
    """One schedulable unit: a graph step restricted to a batch tile.

    ``rows`` is the batch slice the task reads and writes (``None`` for a
    whole-batch serial step); ``tile``/``tiles`` index it within its wave.
    ``interval`` is filled by :func:`wave_table`: the half-open element
    range the task writes inside the arena plan.
    """

    node: OpNode
    step: str
    tile: int = 0
    tiles: int = 1
    rows: slice | None = None
    interval: tuple[int, int] | None = field(default=None, compare=False)

    def describe(self) -> str:
        label = self.node.name or self.node.kind if self.node is not None else self.step
        if self.tiles <= 1:
            return label
        return f"{label}[tile {self.tile}/{self.tiles} rows {self.rows.start}:{self.rows.stop}]"


def node_tileable(node: OpNode) -> bool:
    """True when the node's batch rows are independent (inference modes)."""
    if node.kind == "residual":
        return all(node_tileable(child) for child in node.body.nodes)
    return node.kind in TILEABLE_KINDS


def levelize(graph: Graph, batch: int | None = None,
             max_tiles: int = MAX_TILES, min_tile: int = MIN_TILE) -> list[list[WaveTask]]:
    """Group the graph's executable steps into waves of independent tasks.

    The traced chain is value-serial — node *k+1* consumes node *k*'s output
    — so distinct nodes can never share a wave; parallelism comes from tile
    expansion: with a concrete ``batch``, each tileable node becomes one
    wave of ``len(partition(batch))`` tile tasks over disjoint row ranges.
    Residual bodies are flattened into their own waves followed by the
    residual-add step.  Without ``batch`` the result is the degenerate
    one-task-per-wave levelization (useful to inspect the schedule shape).
    """
    waves: list[list[WaveTask]] = []

    def emit(node: OpNode, step: str) -> None:
        tileable = node_tileable(node) and node.kind != "residual"
        if step == "residual_add":
            tileable = True
        slices = partition(batch, max_tiles, min_tile) if (batch and tileable) else [None]
        waves.append([
            WaveTask(node, step, tile=index, tiles=len(slices), rows=rows)
            for index, rows in enumerate(slices)
        ])

    def walk(nodes: list[OpNode]) -> None:
        for node in nodes:
            if node.kind == "loss":
                emit(node, "loss")
            elif node.kind == "residual" and node_tileable(node):
                walk(node.body.nodes)
                emit(node, "residual_add")
            else:
                emit(node, node.kind)

    walk(graph.nodes)
    return waves


def wave_table(graph: Graph, input_shape: tuple[int, ...],
               max_tiles: int = MAX_TILES, min_tile: int = MIN_TILE) -> list[list[WaveTask]]:
    """Levelize against a concrete shape and bind arena intervals.

    Runs the shared shape-inference + arena-planning passes, then computes,
    for every tile task, the half-open ``[start, stop)`` element interval it
    writes inside the planned arena (batch tiles are contiguous in both NCHW
    and CNHW layouts once granularity is per-sample rows of the output
    buffer).  Raises :class:`AssertionError` if any two tasks of one wave
    overlap — the lock-free-by-liveness invariant the executor relies on.
    """
    from .passes import plan_graph_memory

    plan = plan_graph_memory(graph, tuple(input_shape))
    by_name: dict[str, object] = {}
    for buf in plan.buffers:
        by_name.setdefault(buf.name, buf)
    batch = int(input_shape[0])
    waves = levelize(graph, batch, max_tiles, min_tile)
    for wave in waves:
        for task in wave:
            node = task.node
            buf = by_name.get(node.name or node.kind)
            if buf is None or buf.offset < 0 or task.rows is None:
                continue
            out_shape = node.meta.get("out_shape")
            if not out_shape or out_shape[0] != batch:
                continue
            per_row = buf.size // batch
            task.interval = (
                buf.offset + task.rows.start * per_row,
                buf.offset + task.rows.stop * per_row,
            )
        bound = [t for t in wave if t.interval is not None]
        for a in range(len(bound)):
            for b in range(a + 1, len(bound)):
                lo_a, hi_a = bound[a].interval
                lo_b, hi_b = bound[b].interval
                assert hi_a <= lo_b or hi_b <= lo_a, (
                    f"wave tasks overlap in the arena: {bound[a].describe()} "
                    f"[{lo_a},{hi_a}) vs {bound[b].describe()} [{lo_b},{hi_b})"
                )
    return waves
