"""Float inference backend: fused NumPy programs from the shared graph IR.

This module is the ``mode="infer"`` lowering target of :func:`repro.compile`.
The frontend traces the model once (:func:`repro.runtime.ir.trace`) and runs
the inference pass pipeline (dropout elimination, BN folding, conv+bias+act
fusion, layout assignment); :func:`build_inference_program` then turns the
annotated graph into a flat chain of op nodes over raw NumPy arrays:

* eval-mode **BatchNorm is folded** into the preceding convolution / linear
  weights (``w' = w * gamma / sqrt(var + eps)``), disappearing entirely;
* **conv + bias + activation** become a single fused kernel call;
* calibrated :class:`~repro.compress.QuantizedConv2d` /
  :class:`~repro.compress.QuantizedLinear` wrappers lower to **real integer
  ops** (:class:`QuantConvOp` / :class:`QuantLinearOp`) executing from the
  stored int8 weights, with BN folded into the requantization constants —
  they never silently drop to the eager fallback (an uncalibrated wrapper,
  still observing ranges, stays eager so observation keeps working);
* anything unrecognised falls back to the eager module under ``no_grad`` — a
  compiled net is therefore always *correct*, merely less fused.

For a whole-network integer pipeline with a static memory plan, compile with
``mode="int8"`` instead — the per-op routing here keeps mixed float/quantized
models compilable with the same entry point.

Compilation snapshots the weights: after further training, compile again to
pick up the new parameters.  The legacy :func:`compile_net` entry point
remains as a deprecated wrapper over :func:`repro.compile`.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from .. import nn
from ..compress.quantization import QuantizedConv2d, QuantizedLinear
from . import kernels
from .ir import Graph, OpNode, UnsupportedModule, activation_spec, bn_scale_shift
from .parallel import ParallelExecutor

__all__ = [
    "CompiledNet",
    "ParallelChain",
    "compile_net",
    "build_inference_program",
    "fold_conv_bn",
    "activation_spec",
    "QuantConvOp",
    "QuantLinearOp",
]

# Backwards-compatible aliases for the pre-IR private helpers.
_Unsupported = UnsupportedModule
_bn_scale_shift = bn_scale_shift


# --------------------------------------------------------------------------- #
# folding helpers
# --------------------------------------------------------------------------- #
def fold_conv_bn(
    weight: np.ndarray,
    bias: np.ndarray | None,
    scale: np.ndarray,
    shift: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a per-output-channel affine into convolution weights.

    Parameters
    ----------
    weight:
        Convolution (or linear) weight, output channels first.
    bias:
        Existing bias, or ``None``.
    scale, shift:
        Per-output-channel affine, e.g. an eval-mode BatchNorm's
        ``gamma / sqrt(var + eps)`` and ``beta - mean * scale``.

    Returns
    -------
    (ndarray, ndarray)
        New ``(weight, bias)`` such that
        ``conv(x, w', b') == affine(conv(x, w, b), scale, shift)``.
    """
    folded_w = weight * scale.reshape((-1,) + (1,) * (weight.ndim - 1))
    folded_b = shift if bias is None else bias * scale + shift
    return folded_w.astype(weight.dtype), np.asarray(folded_b, dtype=weight.dtype)


# --------------------------------------------------------------------------- #
# op nodes
# --------------------------------------------------------------------------- #
class ConvOp:
    """Fused convolution; owns folded weight/bias copies."""

    # Per-sample outputs depend only on that sample: the batch dimension may
    # be cut into tiles (read by ParallelChain; eval-mode/folded BN only).
    batch_tileable = True

    def __init__(self, conv: nn.Conv2d):
        self.weight = conv.weight.data.copy()
        self.bias = None if conv.bias is None else conv.bias.data.copy()
        self.stride = conv.stride
        self.padding = conv.padding
        self.groups = conv.groups
        self.activation: tuple | None = None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self.weight, self.bias = fold_conv_bn(self.weight, self.bias, scale, shift)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.fused_conv2d(
            x, self.weight, self.bias, self.stride, self.padding, self.groups, self.activation
        )

    def tiled_call(self, x: np.ndarray, executor: ParallelExecutor) -> np.ndarray:
        """Out-channel-tiled execution for batches too small to batch-tile."""
        return kernels.tiled_conv2d(
            x, self.weight, self.bias, self.stride, self.padding, self.groups,
            self.activation, executor,
        )


class LinearOp:
    batch_tileable = True

    def __init__(self, linear: nn.Linear):
        self.weight = linear.weight.data.copy()
        self.bias = None if linear.bias is None else linear.bias.data.copy()
        self.activation: tuple | None = None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self.weight = self.weight * scale[:, None]
        self.bias = shift if self.bias is None else self.bias * scale + shift

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.fused_linear(x, self.weight, self.bias, self.activation)

    def tiled_call(self, x: np.ndarray, executor: ParallelExecutor) -> np.ndarray:
        return kernels.tiled_linear(x, self.weight, self.bias, self.activation, executor)


class _QuantOpBase:
    """Shared machinery for the integer conv / linear ops.

    Executes from the wrapper's stored ``weight_q`` int8 array; the fused
    requantization constants (``multiplier = in_scale * weight_scale`` and the
    float bias) absorb any following BatchNorm via :meth:`fold_affine`, so the
    BN-folding pass treats these exactly like :class:`ConvOp`.
    """

    batch_tileable = True

    def __init__(self, wrapper):
        layer = wrapper.wrapped
        qparams = wrapper.input_qparams()
        if wrapper.observing or qparams is None:
            raise UnsupportedModule("uncalibrated quantized wrapper")
        self.in_scale, self.in_zp = qparams
        self.bits = wrapper.spec.bits
        self.weight_q = wrapper.weight_q
        c_out = self.weight_q.shape[0]
        w_scale = np.atleast_1d(np.asarray(wrapper.weight_scale, dtype=np.float64))
        if w_scale.size == 1:
            w_scale = np.full(c_out, w_scale[0])
        self._mult = (self.in_scale * w_scale).astype(np.float64)
        bias = np.zeros(c_out) if layer.bias is None else layer.bias.data.astype(np.float64)
        self._bias = bias
        self.activation: tuple | None = None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self._mult = self._mult * scale
        self._bias = self._bias * scale + shift


class QuantConvOp(_QuantOpBase):
    """Fused integer convolution lowered from a calibrated wrapper."""

    def __init__(self, wrapper: QuantizedConv2d):
        super().__init__(wrapper)
        conv = wrapper.wrapped
        self.stride = conv.stride
        self.padding = conv.padding
        self.groups = conv.groups

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.quantized_conv2d_raw(
            x,
            self.weight_q,
            self._mult.astype(np.float32),
            self._bias.astype(np.float32),
            self.in_scale,
            self.in_zp,
            self.bits,
            self.stride,
            self.padding,
            self.groups,
            self.activation,
        )


class QuantLinearOp(_QuantOpBase):
    """Fused integer linear layer lowered from a calibrated wrapper."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.quantized_linear_raw(
            x,
            self.weight_q,
            self._mult.astype(np.float32),
            self._bias.astype(np.float32),
            self.in_scale,
            self.in_zp,
            self.bits,
            self.activation,
        )


class AffineOp:
    """Standalone eval-mode batch norm (not preceded by a foldable conv)."""

    batch_tileable = True

    def __init__(self, scale: np.ndarray, shift: np.ndarray):
        self.scale = scale.copy()
        self.shift = shift.copy()
        self.activation: tuple | None = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.affine_channels(x, self.scale, self.shift, self.activation)


class ActivationOp:
    """Standalone activation; never mutates its input (may be a residual)."""

    batch_tileable = True

    def __init__(self, act: tuple):
        self.act = act

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.apply_activation(x, self.act, inplace=False)


class MaxPoolOp:
    batch_tileable = True

    def __init__(self, pool: nn.MaxPool2d):
        self.kernel, self.stride, self.padding = pool.kernel_size, pool.stride, pool.padding

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.max_pool2d_raw(x, self.kernel, self.stride, self.padding)


class AvgPoolOp:
    batch_tileable = True

    def __init__(self, pool: nn.AvgPool2d):
        self.kernel, self.stride, self.padding = pool.kernel_size, pool.stride, pool.padding

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.avg_pool2d_raw(x, self.kernel, self.stride, self.padding)


class GlobalAvgPoolOp:
    batch_tileable = True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.global_avg_pool2d_raw(x)


class FlattenOp:
    batch_tileable = True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class ChainOp:
    """Run a list of ops in order."""

    def __init__(self, ops: list):
        self.ops = ops

    @property
    def batch_tileable(self) -> bool:
        return all(getattr(op, "batch_tileable", False) for op in self.ops)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for op in self.ops:
            x = op(x)
        return x

    def tiled_call(self, x: np.ndarray, executor: ParallelExecutor) -> np.ndarray:
        for op in self.ops:
            tiled = getattr(op, "tiled_call", None)
            x = op(x) if tiled is None else tiled(x, executor)
        return x


class ResidualOp:
    """``body(x) + x``; body must end in a kernel producing a fresh buffer."""

    def __init__(self, body):
        self.body = body

    @property
    def batch_tileable(self) -> bool:
        return getattr(self.body, "batch_tileable", False)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.body(x)
        if out is x:  # degenerate empty body: never mutate the input
            return x + x
        out += x
        return out

    def tiled_call(self, x: np.ndarray, executor: ParallelExecutor) -> np.ndarray:
        out = self.body.tiled_call(x, executor)
        if out is x:
            return x + x
        out += x
        return out


class EagerOp:
    """Correctness fallback: run the eager module in eval mode under no_grad.

    Never batch-tiled (the wrapped module is opaque — it may couple samples),
    and guarded by a lock: the eval/train toggle mutates ``module.training``,
    which would race when one compiled net is hammered from many request
    threads (the serving engine does exactly that).
    """

    batch_tileable = False

    def __init__(self, module: nn.Module):
        self.module = module
        self._lock = threading.Lock()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        with self._lock:
            was_training = self.module.training
            self.module.eval()
            try:
                with nn.no_grad():
                    out = self.module(nn.Tensor(x))
            finally:
                self.module.train(was_training)
        return out.data if isinstance(out, nn.Tensor) else np.asarray(out)


class ParallelChain:
    """Wave-dispatching program: the chain cut into tileable segments.

    Consecutive batch-tileable ops form one *segment*; a segment executes as
    a wave of per-batch-tile tasks on the executor's persistent pool (one
    concatenate per segment — a fully tileable graph, the common case for
    registry models, costs a single concat for the whole network).  Batches
    too small for the fixed partition fall through to per-op output-channel
    tiling (:meth:`ConvOp.tiled_call`); untileable ops (eager fallbacks) run
    serially between segments.

    The tile partition is a pure function of the batch size — see
    :mod:`repro.runtime.parallel` for why that makes outputs bit-identical
    across thread counts.
    """

    def __init__(self, ops: list, executor: ParallelExecutor):
        self.executor = executor
        self.ops = list(ops)  # flat op list, for introspection parity with ChainOp
        self.segments: list[tuple[bool, ChainOp]] = []
        run: list = []
        for op in ops:
            if getattr(op, "batch_tileable", False):
                run.append(op)
                continue
            if run:
                self.segments.append((True, ChainOp(run)))
                run = []
            self.segments.append((False, op))
        if run:
            self.segments.append((True, ChainOp(run)))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for tileable, segment in self.segments:
            if not tileable:
                x = segment(x)
                continue
            rows = self.executor.batch_slices(x.shape[0])
            if len(rows) > 1:
                parts = self.executor.run_wave(
                    [lambda sl=sl: segment(x[sl]) for sl in rows]
                )
                x = np.concatenate(parts, axis=0)
            else:
                x = segment.tiled_call(x, self.executor)
        return x


# --------------------------------------------------------------------------- #
# graph -> ops
# --------------------------------------------------------------------------- #
def _op_from_node(node: OpNode):
    """Build the executable op for one annotated graph node."""
    kind = node.kind
    if kind in ("qconv", "qlinear"):
        # Calibrated wrappers route through real integer ops; a wrapper still
        # observing activation ranges must keep running eagerly so calibration
        # continues to record extrema (the passes left it unannotated).
        try:
            op = (QuantConvOp if kind == "qconv" else QuantLinearOp)(node.module)
        except UnsupportedModule:
            return EagerOp(node.module)
    elif kind == "conv":
        op = ConvOp(node.module)
    elif kind == "linear":
        op = LinearOp(node.module)
    elif kind == "bn":
        op = AffineOp(*bn_scale_shift(node.module))
    elif kind == "act":
        return ActivationOp(node.meta["spec"])
    elif kind == "pool":
        return MaxPoolOp(node.module) if node.attrs["op"] == "max" else AvgPoolOp(node.module)
    elif kind == "gap":
        return GlobalAvgPoolOp()
    elif kind == "flatten":
        return FlattenOp()
    elif kind == "residual":
        return ResidualOp(ChainOp(_ops_from_graph(node.body)))
    else:
        return EagerOp(node.module)
    for scale, shift in node.meta.get("bn_folds", ()):
        op.fold_affine(scale, shift)
    act = node.meta.get("act")
    if act is not None:
        op.activation = act
    return op


def _ops_from_graph(graph: Graph) -> list:
    return [_op_from_node(node) for node in graph.nodes]


def build_inference_program(graph: Graph) -> "CompiledNet":
    """Lower an annotated graph to a :class:`CompiledNet` (frontend backend hook).

    When the ``plan_parallel`` pass annotated the graph, the program is a
    :class:`ParallelChain` over a :class:`ParallelExecutor` — including at
    ``threads=1``, which runs the identical tile set inline (the serial
    reference of the cross-thread-count bit-identity contract).
    """
    ops = _ops_from_graph(graph)
    par = graph.meta.get("parallel")
    if par is not None and not par.get("serial_reason"):
        executor = ParallelExecutor(par["threads"], par["max_tiles"], par["min_tile"])
        return CompiledNet(ParallelChain(ops, executor), graph.source, graph=graph,
                           executor=executor)
    program = ops[0] if len(ops) == 1 else ChainOp(ops)
    return CompiledNet(program, graph.source, graph=graph)


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
class CompiledNet:
    """A model lowered to fused NumPy kernels for inference.

    Callable like the eager module: accepts a :class:`~repro.nn.tensor.Tensor`
    or ``ndarray`` and returns a detached ``Tensor``.  Use
    :meth:`numpy_forward` to stay entirely in ``ndarray`` land.

    Attributes
    ----------
    source:
        The eager module this program was compiled from (weights are
        snapshotted — mutating ``source`` does not affect the program).
    graph:
        The annotated :class:`~repro.runtime.ir.Graph` the program was built
        from (``None`` when constructed from a raw program).
    """

    def __init__(
        self,
        program: Callable[[np.ndarray], np.ndarray],
        source: nn.Module,
        graph: Graph | None = None,
        executor: ParallelExecutor | None = None,
    ):
        self._program = program
        self.source = source
        self.graph = graph
        self.executor = executor

    @property
    def threads(self) -> int:
        """Worker count of the parallel plan (1 = serial execution)."""
        return 1 if self.executor is None else self.executor.threads

    def numpy_forward(self, x: np.ndarray) -> np.ndarray:
        """Run the fused program on a raw batch.

        Parameters
        ----------
        x:
            Input batch; converted to contiguous ``float32`` if needed.

        Returns
        -------
        ndarray
            The network output (logits), no autograd involvement.
        """
        return self._program(np.ascontiguousarray(x, dtype=np.float32))

    def __call__(self, x) -> nn.Tensor:
        """Tensor-in / detached-Tensor-out convenience wrapper."""
        data = x.data if isinstance(x, nn.Tensor) else np.asarray(x, dtype=np.float32)
        return nn.Tensor(self.numpy_forward(data))

    def memory_plan(self, input_shape: tuple[int, ...]):
        """Arena-planner accounting for an ``(N, C, H, W)`` input shape.

        Runs the shared shape-inference + arena-planning passes over the
        compiled graph and returns the
        :class:`~repro.runtime.planner.MemoryPlan` an arena-backed execution
        of this program would need — the float twin of
        :meth:`~repro.runtime.QuantizedNet.memory_plan`, with the same
        one-logical-byte-per-activation accounting.
        """
        if self.graph is None:
            raise RuntimeError("this CompiledNet was built without a graph; no plan available")
        from .passes import plan_graph_memory

        return plan_graph_memory(self.graph, tuple(input_shape))

    def describe(self) -> str:
        """Printable lowering report (passes applied + annotated node table)."""
        from .frontend import describe_graph

        return describe_graph(self.graph, self)

    def save(self, path: str, *, input_shape=None, model_ref: dict | None = None):
        """Serialize to a versioned artifact file (see :func:`repro.load`)."""
        from .artifact import save_artifact

        return save_artifact(self, path, input_shape=input_shape, model_ref=model_ref)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledNet(source={type(self.source).__name__})"


from .frontend import _deprecated


@_deprecated("repro.compile(model, mode='infer')")
def compile_net(model: nn.Module) -> CompiledNet:
    """Deprecated alias of ``repro.compile(model, mode="infer")``.

    BatchNorm layers are folded using their *current* running statistics and
    weights — recompile after any further training.  Unrecognised submodules
    run eagerly, so compilation never changes semantics beyond eval-mode
    float reassociation (differences are at round-off level).

    .. deprecated::
        Use :func:`repro.compile` — this wrapper emits a
        :class:`DeprecationWarning` (once) and forwards to it.
    """
    from .frontend import compile_model

    return compile_model(model, mode="infer")
