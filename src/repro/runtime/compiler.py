"""Compile trained modules into fused inference programs.

:func:`compile_net` walks an eager :class:`~repro.nn.module.Module` tree and
lowers it to a flat chain of op nodes over raw NumPy arrays:

* eval-mode **BatchNorm is folded** into the preceding convolution / linear
  weights (``w' = w * gamma / sqrt(var + eps)``), disappearing entirely;
* **conv + bias + activation** become a single fused kernel call;
* known composite blocks (``ConvBNAct``, ``InvertedResidual``, ``BasicBlock``,
  ``Bottleneck``) and classifier heads (``MobileNetV2``, ``MCUNet``) lower
  structurally;
* calibrated :class:`~repro.compress.QuantizedConv2d` /
  :class:`~repro.compress.QuantizedLinear` wrappers lower to **real integer
  ops** (:class:`QuantConvOp` / :class:`QuantLinearOp`) executing from the
  stored int8 weights, with BN folded into the requantization constants —
  they never silently drop to the eager fallback (an uncalibrated wrapper,
  still observing ranges, stays eager so observation keeps working);
* anything unrecognised falls back to the eager module under ``no_grad`` — a
  compiled net is therefore always *correct*, merely less fused.

For a whole-network integer pipeline with a static memory plan, use
:func:`repro.runtime.compile_quantized` instead — the per-op routing here
keeps mixed float/quantized models compilable with the same entry point.

Compilation snapshots the weights: after further training, call
:func:`compile_net` again to pick up the new parameters.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .. import nn
from ..compress.quantization import QuantizedConv2d, QuantizedLinear
from ..models.blocks import BasicBlock, Bottleneck, ConvBNAct, InvertedResidual
from ..models.mcunet import MCUNet
from ..models.mobilenetv2 import MobileNetV2
from ..nn.norm import FrozenBatchNorm2d
from . import kernels

__all__ = [
    "CompiledNet",
    "compile_net",
    "fold_conv_bn",
    "activation_spec",
    "QuantConvOp",
    "QuantLinearOp",
]


class _Unsupported(Exception):
    """Raised by lowering helpers when a module has no fused equivalent."""


# --------------------------------------------------------------------------- #
# folding helpers
# --------------------------------------------------------------------------- #
def _bn_scale_shift(bn) -> tuple[np.ndarray, np.ndarray]:
    """Eval-mode scale/shift of a (frozen) batch-norm layer."""
    if isinstance(bn, FrozenBatchNorm2d):
        return bn.scale_and_shift()
    scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
    shift = bn.bias.data - bn.running_mean * scale
    return scale.astype(np.float32), shift.astype(np.float32)


def fold_conv_bn(
    weight: np.ndarray,
    bias: np.ndarray | None,
    scale: np.ndarray,
    shift: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a per-output-channel affine into convolution weights.

    Parameters
    ----------
    weight:
        Convolution (or linear) weight, output channels first.
    bias:
        Existing bias, or ``None``.
    scale, shift:
        Per-output-channel affine, e.g. an eval-mode BatchNorm's
        ``gamma / sqrt(var + eps)`` and ``beta - mean * scale``.

    Returns
    -------
    (ndarray, ndarray)
        New ``(weight, bias)`` such that
        ``conv(x, w', b') == affine(conv(x, w, b), scale, shift)``.
    """
    folded_w = weight * scale.reshape((-1,) + (1,) * (weight.ndim - 1))
    folded_b = shift if bias is None else bias * scale + shift
    return folded_w.astype(weight.dtype), np.asarray(folded_b, dtype=weight.dtype)


def activation_spec(module: nn.Module) -> tuple | None:
    """Lower an activation module to a kernel spec tuple.

    Parameters
    ----------
    module:
        An eager activation module (``ReLU``, ``ReLU6``, ``LeakyReLU``,
        ``Identity``, or a decayable PLT activation).

    Returns
    -------
    tuple or None
        A ``(kind, *params)`` spec consumed by
        :func:`repro.runtime.kernels.apply_activation`, or ``None`` when the
        activation is (or has decayed to) the identity.

    Raises
    ------
    _Unsupported
        If the module is not a recognised activation (the caller then falls
        back to eager execution).
    """
    if isinstance(module, nn.Identity):
        return None
    if isinstance(module, nn.DecayableReLU6):  # before DecayableReLU (subclass)
        if module.alpha >= 1.0:
            return None
        if module.alpha <= 0.0:
            return ("relu6",)
        return ("relu6_interp", module.alpha)
    if isinstance(module, nn.DecayableReLU):
        if module.alpha >= 1.0:
            return None
        if module.alpha <= 0.0:
            return ("relu",)
        return ("leaky", module.alpha)
    if isinstance(module, nn.ReLU):
        return ("relu",)
    if isinstance(module, nn.ReLU6):
        return ("relu6",)
    if isinstance(module, nn.LeakyReLU):
        return ("leaky", module.slope)
    if isinstance(module, nn.Sigmoid):
        return ("sigmoid",)
    if isinstance(module, nn.Tanh):
        return ("tanh",)
    if isinstance(module, nn.Swish):
        return ("swish",)
    if isinstance(module, nn.HardSigmoid):
        return ("hardsigmoid",)
    if isinstance(module, nn.HardSwish):
        return ("hardswish",)
    raise _Unsupported(type(module).__name__)


# --------------------------------------------------------------------------- #
# op nodes
# --------------------------------------------------------------------------- #
class ConvOp:
    """Fused convolution; owns folded weight/bias copies."""

    def __init__(self, conv: nn.Conv2d):
        self.weight = conv.weight.data.copy()
        self.bias = None if conv.bias is None else conv.bias.data.copy()
        self.stride = conv.stride
        self.padding = conv.padding
        self.groups = conv.groups
        self.activation: tuple | None = None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self.weight, self.bias = fold_conv_bn(self.weight, self.bias, scale, shift)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.fused_conv2d(
            x, self.weight, self.bias, self.stride, self.padding, self.groups, self.activation
        )


class LinearOp:
    def __init__(self, linear: nn.Linear):
        self.weight = linear.weight.data.copy()
        self.bias = None if linear.bias is None else linear.bias.data.copy()
        self.activation: tuple | None = None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self.weight = self.weight * scale[:, None]
        self.bias = shift if self.bias is None else self.bias * scale + shift

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.fused_linear(x, self.weight, self.bias, self.activation)


class _QuantOpBase:
    """Shared machinery for the integer conv / linear ops.

    Executes from the wrapper's stored ``weight_q`` int8 array; the fused
    requantization constants (``multiplier = in_scale * weight_scale`` and the
    float bias) absorb any following BatchNorm via :meth:`fold_affine`, so the
    peephole fusion pass treats these exactly like :class:`ConvOp`.
    """

    def __init__(self, wrapper):
        layer = wrapper.wrapped
        qparams = wrapper.input_qparams()
        if wrapper.observing or qparams is None:
            raise _Unsupported("uncalibrated quantized wrapper")
        self.in_scale, self.in_zp = qparams
        self.bits = wrapper.spec.bits
        self.weight_q = wrapper.weight_q
        c_out = self.weight_q.shape[0]
        w_scale = np.atleast_1d(np.asarray(wrapper.weight_scale, dtype=np.float64))
        if w_scale.size == 1:
            w_scale = np.full(c_out, w_scale[0])
        self._mult = (self.in_scale * w_scale).astype(np.float64)
        bias = np.zeros(c_out) if layer.bias is None else layer.bias.data.astype(np.float64)
        self._bias = bias
        self.activation: tuple | None = None

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self._mult = self._mult * scale
        self._bias = self._bias * scale + shift


class QuantConvOp(_QuantOpBase):
    """Fused integer convolution lowered from a calibrated wrapper."""

    def __init__(self, wrapper: QuantizedConv2d):
        super().__init__(wrapper)
        conv = wrapper.wrapped
        self.stride = conv.stride
        self.padding = conv.padding
        self.groups = conv.groups

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.quantized_conv2d_raw(
            x,
            self.weight_q,
            self._mult.astype(np.float32),
            self._bias.astype(np.float32),
            self.in_scale,
            self.in_zp,
            self.bits,
            self.stride,
            self.padding,
            self.groups,
            self.activation,
        )


class QuantLinearOp(_QuantOpBase):
    """Fused integer linear layer lowered from a calibrated wrapper."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.quantized_linear_raw(
            x,
            self.weight_q,
            self._mult.astype(np.float32),
            self._bias.astype(np.float32),
            self.in_scale,
            self.in_zp,
            self.bits,
            self.activation,
        )


class AffineOp:
    """Standalone eval-mode batch norm (not preceded by a foldable conv)."""

    def __init__(self, scale: np.ndarray, shift: np.ndarray):
        self.scale = scale.copy()
        self.shift = shift.copy()
        self.activation: tuple | None = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.affine_channels(x, self.scale, self.shift, self.activation)


class ActivationOp:
    """Standalone activation; never mutates its input (may be a residual)."""

    def __init__(self, act: tuple):
        self.act = act

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.apply_activation(x, self.act, inplace=False)


class MaxPoolOp:
    def __init__(self, pool: nn.MaxPool2d):
        self.kernel, self.stride, self.padding = pool.kernel_size, pool.stride, pool.padding

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.max_pool2d_raw(x, self.kernel, self.stride, self.padding)


class AvgPoolOp:
    def __init__(self, pool: nn.AvgPool2d):
        self.kernel, self.stride, self.padding = pool.kernel_size, pool.stride, pool.padding

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.avg_pool2d_raw(x, self.kernel, self.stride, self.padding)


class GlobalAvgPoolOp:
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return kernels.global_avg_pool2d_raw(x)


class FlattenOp:
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class ChainOp:
    """Run a list of ops in order."""

    def __init__(self, ops: list):
        self.ops = ops

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for op in self.ops:
            x = op(x)
        return x


class ResidualOp:
    """``body(x) + x``; body must end in a kernel producing a fresh buffer."""

    def __init__(self, body):
        self.body = body

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.body(x)
        if out is x:  # degenerate empty body: never mutate the input
            return x + x
        out += x
        return out


class EagerOp:
    """Correctness fallback: run the eager module in eval mode under no_grad."""

    def __init__(self, module: nn.Module):
        self.module = module

    def __call__(self, x: np.ndarray) -> np.ndarray:
        was_training = self.module.training
        self.module.eval()
        try:
            with nn.no_grad():
                out = self.module(nn.Tensor(x))
        finally:
            self.module.train(was_training)
        return out.data if isinstance(out, nn.Tensor) else np.asarray(out)


# --------------------------------------------------------------------------- #
# lowering
# --------------------------------------------------------------------------- #
def _fuse(ops: list) -> list:
    """Peephole pass: fold affines into conv/linear, attach activations."""
    foldable = (ConvOp, LinearOp, _QuantOpBase)
    fused: list = []
    for op in ops:
        prev = fused[-1] if fused else None
        if isinstance(op, AffineOp) and isinstance(prev, foldable) and prev.activation is None:
            prev.fold_affine(op.scale, op.shift)
        elif isinstance(op, ActivationOp) and isinstance(prev, foldable + (AffineOp,)) and prev.activation is None:
            prev.activation = op.act
        else:
            fused.append(op)
    return fused


def _lower_sequence(modules: list[nn.Module]) -> ChainOp:
    ops: list = []
    for module in modules:
        op = _lower(module)
        if op is None:
            continue
        if isinstance(op, ChainOp):
            ops.extend(op.ops)
        else:
            ops.append(op)
    return ChainOp(_fuse(ops))


def _lower(module: nn.Module):
    """Lower one module to an op node (``None`` elides identity ops)."""
    if isinstance(module, (nn.Identity, nn.Dropout)):
        return None  # dropout is the identity at inference time
    if isinstance(module, (QuantizedConv2d, QuantizedLinear)):
        # Calibrated wrappers route through real integer ops; a wrapper still
        # observing activation ranges must keep running eagerly so calibration
        # continues to record extrema.
        try:
            op_cls = QuantConvOp if isinstance(module, QuantizedConv2d) else QuantLinearOp
            return op_cls(module)
        except _Unsupported:
            return EagerOp(module)
    if isinstance(module, nn.Conv2d):
        return ConvOp(module)
    if isinstance(module, nn.Linear):
        return LinearOp(module)
    if isinstance(module, (nn.BatchNorm2d, FrozenBatchNorm2d)):
        return AffineOp(*_bn_scale_shift(module))
    if isinstance(module, nn.MaxPool2d):
        return MaxPoolOp(module)
    if isinstance(module, nn.AvgPool2d):
        return AvgPoolOp(module)
    if isinstance(module, nn.GlobalAvgPool2d):
        return GlobalAvgPoolOp()
    if isinstance(module, nn.Flatten):
        return FlattenOp()
    if isinstance(module, nn.Sequential):
        return _lower_sequence(list(module._modules.values()))
    if isinstance(module, ConvBNAct):
        return _lower_sequence([module.conv, module.bn, module.act])
    if isinstance(module, InvertedResidual):
        body = _lower_sequence([module.expand, module.depthwise, module.project])
        return ResidualOp(body) if module.use_residual else body
    if isinstance(module, BasicBlock):
        body = _lower_sequence([module.conv1, module.conv2])
        return ResidualOp(body) if module.use_residual else body
    if isinstance(module, Bottleneck):
        body = _lower_sequence([module.reduce, module.spatial, module.expand])
        return ResidualOp(body) if module.use_residual else body
    if isinstance(module, MobileNetV2):
        return _lower_sequence(
            [module.features, module.pool, module.flatten, module.dropout, module.classifier]
        )
    if isinstance(module, MCUNet):
        return _lower_sequence([module.features, module.pool, module.flatten, module.classifier])
    try:
        spec = activation_spec(module)
    except _Unsupported:
        return EagerOp(module)
    return ActivationOp(spec) if spec is not None else None


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
class CompiledNet:
    """A model lowered to fused NumPy kernels for inference.

    Callable like the eager module: accepts a :class:`~repro.nn.tensor.Tensor`
    or ``ndarray`` and returns a detached ``Tensor``.  Use
    :meth:`numpy_forward` to stay entirely in ``ndarray`` land.

    Attributes
    ----------
    source:
        The eager module this program was compiled from (weights are
        snapshotted — mutating ``source`` does not affect the program).
    """

    def __init__(self, program: Callable[[np.ndarray], np.ndarray], source: nn.Module):
        self._program = program
        self.source = source

    def numpy_forward(self, x: np.ndarray) -> np.ndarray:
        """Run the fused program on a raw batch.

        Parameters
        ----------
        x:
            Input batch; converted to contiguous ``float32`` if needed.

        Returns
        -------
        ndarray
            The network output (logits), no autograd involvement.
        """
        return self._program(np.ascontiguousarray(x, dtype=np.float32))

    def __call__(self, x) -> nn.Tensor:
        """Tensor-in / detached-Tensor-out convenience wrapper."""
        data = x.data if isinstance(x, nn.Tensor) else np.asarray(x, dtype=np.float32)
        return nn.Tensor(self.numpy_forward(data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledNet(source={type(self.source).__name__})"


def compile_net(model: nn.Module) -> CompiledNet:
    """Compile ``model`` into a :class:`CompiledNet` for fused inference.

    BatchNorm layers are folded using their *current* running statistics and
    weights — recompile after any further training.  Unrecognised submodules
    run eagerly, so compilation never changes semantics beyond eval-mode
    float reassociation (differences are at round-off level).

    Parameters
    ----------
    model:
        A trained eager :class:`~repro.nn.module.Module` tree.

    Returns
    -------
    CompiledNet
        A flat chain of fused kernels over raw arrays.
    """
    op = _lower(model)
    if op is None:
        op = ChainOp([])
    return CompiledNet(op, model)
