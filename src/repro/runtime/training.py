"""Training backend: fused forward+backward programs from the shared graph IR.

This module is the ``mode="train"`` lowering target of :func:`repro.compile`.
The frontend traces the model with the same :mod:`repro.runtime.ir` tracer as
the inference engines and runs the training pass pipeline (inactive-dropout
elimination, GAP+Flatten fusion, loss attachment — BN folding and activation
fusion deliberately do *not* run: training keeps batch statistics and matched
backward pairs); :func:`build_training_program` then turns the graph into a
flat chain of train nodes over raw NumPy arrays, each implementing a matched
``forward`` / ``backward`` pair:

* convolution / linear / batch-norm / activation nodes call the **same raw
  kernels** as the autograd ops (``repro.nn.functional``), so a compiled step
  is *bit-identical* to the eager tape — only the per-step tape construction,
  Tensor wrappers and backward-closure allocation disappear;
* BatchNorm runs in **training mode** inside the fused graph (batch
  statistics, running-stat updates and the full three-term backward);
* parameter gradients are accumulated straight into ``param.grad`` — when the
  optimiser is a :class:`~repro.optim.flat.FlatSGD` those are views into its
  flat gradient buffer, so the whole backward pass writes into one
  preallocated array;
* per-shape **workspaces are reused across steps** (grad staging buffers,
  column buffers, scatter accumulators), eliminating the per-step large
  allocations of the eager path;
* decayable activations read their module's ``alpha`` *live*, so Progressive
  Linearization Tuning schedules keep working under compilation;
* anything unrecognised falls back to an :class:`EagerNode` that runs the
  submodule on the autograd tape — a compiled step is therefore always
  *correct*, merely less fused.

Compilation captures module/parameter object identity, not weights: in-place
updates (optimiser steps, ``load_state_dict``) are picked up automatically.
:meth:`TrainStep.matches` detects structural edits (swapped submodules or
parameters) so callers can recompile.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from .ir import Graph, OpNode, UnsupportedModule

__all__ = ["TrainStep", "compile_training_step", "build_training_program"]

# Backwards-compatible alias for the pre-IR private exception.
_Unsupported = UnsupportedModule


# --------------------------------------------------------------------------- #
# train nodes
# --------------------------------------------------------------------------- #
class ConvTrainNode:
    """Fused conv2d forward+backward bound to a live :class:`~repro.nn.Conv2d`.

    Output and input-gradient arrays live in per-node C-contiguous buffers,
    so steady-state steps perform no large allocations.  Each buffer is
    written once per step and consumed before the next forward overwrites it.
    """

    def __init__(self, conv: nn.Conv2d):
        self.conv = conv
        self.stride = conv.stride
        self.padding = conv.padding
        self.groups = conv.groups
        self._buffers: dict[str, np.ndarray] = {}

    def _buf(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = self._buffers[name] = np.empty(shape, dtype=dtype)
        return buf

    def forward(self, x: np.ndarray) -> np.ndarray:
        conv = self.conv
        wd = conv.weight.data
        n, c_in = x.shape[:2]
        c_out, c_in_g, kh, kw = wd.shape
        stride, padding, groups = self.stride, self.padding, self.groups
        self._x_shape = x.shape
        self._pointwise = kh == 1 and kw == 1 and groups == 1
        self._depthwise = c_in_g == 1 and groups == c_in
        if self._pointwise:
            xp = F._pad2d(x, padding)
            xs = xp[:, :, ::stride, ::stride] if stride > 1 else xp
            out_h, out_w = xs.shape[2:4]
            self._x_flat = np.ascontiguousarray(xs).reshape(n, c_in, out_h * out_w)
            out = self._buf("pw_out", (n, c_out, out_h, out_w), x.dtype)
            np.matmul(
                wd.reshape(c_out, c_in), self._x_flat,
                out=out.reshape(n, c_out, out_h * out_w),
            )
        elif self._depthwise:
            xp = F._pad2d(x, padding)
            windows = sliding_window_view(xp, (kh, kw), axis=(2, 3))
            if stride > 1:
                windows = windows[:, :, ::stride, ::stride]
            self._windows = windows
            if c_out == c_in:
                out = F._depthwise_conv_forward(
                    xp, windows, wd, stride,
                    out=self._buf("dw_out", windows.shape[:4], x.dtype),
                )
            else:  # channel multiplier > 1 — rare, handled by the einsum path
                w_dw = wd.reshape(c_in, c_out // groups, kh, kw)
                out = np.einsum("nchwij,cmij->ncmhw", windows, w_dw, optimize=True)
                out = out.reshape(n, c_out, *out.shape[3:])
        elif groups == 1:
            windows = F._conv_windows(x, (kh, kw), stride, padding, reuse_pad=True)
            expected = (c_in, kh, kw, n) + windows.shape[2:4]
            self._cols = F._dense_conv_cols(windows, out=self._buf("cols", expected, x.dtype))
            out = F._dense_conv_forward_from_cols(self._cols, wd)
        else:
            raise RuntimeError("grouped (non-depthwise) convs lower to EagerNode")
        if conv.bias is not None:
            out += conv.bias.data.reshape(1, c_out, 1, 1)
        return out

    # Set on the program's first node: the input batch never needs a gradient,
    # matching the eager path where the image tensor has requires_grad=False.
    skip_input_grad = False

    def backward(self, grad: np.ndarray) -> np.ndarray | None:
        conv = self.conv
        wd = conv.weight.data
        # Same dtype normalisation as the eager op entry (activation backward
        # chains can promote gradients to float64).
        grad = np.asarray(grad, dtype=wd.dtype)
        need_w = conv.weight.requires_grad
        need_x = not self.skip_input_grad
        dx_buf = self._buf("dx", self._x_shape, grad.dtype) if need_x else None
        if conv.bias is not None and conv.bias.requires_grad:
            conv.bias._accumulate(grad.sum(axis=(0, 2, 3)), owned=True)
        if self._pointwise:
            dx, dw = F._pointwise_conv_backward(
                grad, self._x_flat, wd, self._x_shape, self.stride, self.padding,
                need_x=need_x, need_w=need_w, dx_out=dx_buf,
            )
        elif self._depthwise:
            if wd.shape[0] == self._x_shape[1]:
                dx, dw = F._depthwise_conv_backward(
                    grad, self._windows, wd, self._x_shape, self.stride, self.padding,
                    need_x=need_x, need_w=need_w, dx_out=dx_buf,
                )
            else:
                n, c_in = self._x_shape[:2]
                kh, kw = wd.shape[2:]
                multiplier = wd.shape[0] // c_in
                grad_g = grad.reshape(n, c_in, multiplier, *grad.shape[2:])
                dw = None
                if need_w:
                    dw = np.einsum(
                        "ncmhw,nchwij->cmij", grad_g, self._windows, optimize=True
                    ).reshape(wd.shape)
                w_dw = wd.reshape(c_in, multiplier, kh, kw)
                grad_windows = np.einsum("ncmhw,cmij->nchwij", grad_g, w_dw, optimize=True)
                dx = F._scatter_windows(
                    grad_windows, self._x_shape, (kh, kw), self.stride, self.padding
                )
        else:
            dx, dw = F._dense_conv_backward(
                grad, self._cols, wd, self._x_shape, self.stride, self.padding,
                need_x=need_x, need_w=need_w, dx_out=dx_buf,
            )
        if dw is not None:
            conv.weight._accumulate(dw, owned=True)
        return dx

    def captures(self):
        yield self.conv
        yield self.conv.weight
        if self.conv.bias is not None:
            yield self.conv.bias


class BNTrainNode:
    """Training-mode batch norm: batch stats, running-stat updates, full backward.

    Keeps three per-node workspaces (forward output, input gradient, scratch)
    so the whole layer runs with zero per-step large allocations.  Safe
    because each buffer is written once per step and every consumer reads it
    before the next forward pass overwrites it.
    """

    def __init__(self, bn: nn.BatchNorm2d):
        self.bn = bn
        self._out = None

    def _buffers(self, x: np.ndarray):
        if self._out is None or self._out.shape != x.shape:
            # Explicit C-order (not empty_like): layouts must match the fresh
            # arrays the eager path produces, or downstream contractions drift
            # by ulps and break bitwise parity.
            self._out = np.empty(x.shape, dtype=x.dtype)
            self._dx = np.empty(x.shape, dtype=x.dtype)
            self._scratch = np.empty(x.shape, dtype=x.dtype)
        return self._out

    def forward(self, x: np.ndarray) -> np.ndarray:
        bn = self.bn
        out, self._cache = F.batch_norm2d_train_raw(
            x, bn.weight.data, bn.bias.data, bn.running_mean, bn.running_var,
            bn.momentum, bn.eps, out=self._buffers(x),
        )
        return out

    # Set when this is the program's first node (input needs no gradient).
    skip_input_grad = False

    def backward(self, grad: np.ndarray) -> np.ndarray | None:
        bn = self.bn
        grad = np.asarray(grad, dtype=self._out.dtype)  # eager-op dtype entry cast
        dx, dgamma, dbeta = F.batch_norm2d_train_grad(
            grad, self._cache, bn.weight.data,
            need_x=not self.skip_input_grad,
            need_gamma=bn.weight.requires_grad,
            need_beta=bn.bias.requires_grad,
            dx_out=self._dx,
            scratch=self._scratch,
        )
        if dgamma is not None:
            bn.weight._accumulate(dgamma)
        if dbeta is not None:
            bn.bias._accumulate(dbeta)
        self._cache = None
        return dx

    def captures(self):
        yield self.bn
        yield self.bn.weight
        yield self.bn.bias


class ActTrainNode:
    """Activation with a hand-matched backward; reads decay ``alpha`` live.

    The hot paths (ReLU / ReLU6) run in per-node output, mask and gradient
    buffers — identical values to the eager tape, zero steady-state allocs.
    """

    def __init__(self, module: nn.Module):
        self.module = module
        # Resolved per call for decayables so PLT schedules apply.
        if isinstance(module, nn.DecayableReLU6):
            self._kind = "decay_relu6"
        elif isinstance(module, nn.DecayableReLU):
            self._kind = "decay_relu"
        elif isinstance(module, nn.ReLU):
            self._kind = "relu"
        elif isinstance(module, nn.ReLU6):
            self._kind = "relu6"
        elif isinstance(module, nn.LeakyReLU):
            self._kind = "leaky"
        else:
            raise _Unsupported(type(module).__name__)
        self._out = None

    def _buffers(self, x: np.ndarray):
        if self._out is None or self._out.shape != x.shape:
            self._out = np.empty(x.shape, dtype=x.dtype)
            self._dx = np.empty(x.shape, dtype=x.dtype)
            self._mask = np.empty(x.shape, dtype=bool)
            self._mask2 = np.empty(x.shape, dtype=bool)
        return self._out

    def forward(self, x: np.ndarray) -> np.ndarray:
        kind = self._kind
        self._x = x
        if kind == "decay_relu6":
            alpha = self.module.alpha
            if alpha >= 1.0:
                self._mode = ("identity",)
                return x
            clipped = np.clip(x, 0.0, 6.0, out=self._buffers(x))
            if alpha <= 0.0:
                self._mode = ("relu6",)
                return clipped
            # Mirrors the eager tape chain clipped*(1-a) + x*a bit-for-bit.
            a = np.float32(alpha)
            one_minus = np.float32(1.0 - alpha)
            self._mode = ("relu6_interp", a, one_minus)
            return clipped * one_minus + x * a
        if kind == "decay_relu":
            alpha = self.module.alpha
            if alpha >= 1.0:
                self._mode = ("identity",)
                return x
            if alpha <= 0.0:
                self._mode = ("relu",)
                return np.maximum(x, 0.0, out=self._buffers(x))
            self._mode = ("leaky", alpha)
            return np.where(x >= 0, x, alpha * x)
        if kind == "relu":
            self._mode = ("relu",)
            return np.maximum(x, 0.0, out=self._buffers(x))
        if kind == "relu6":
            self._mode = ("relu6",)
            return np.clip(x, 0.0, 6.0, out=self._buffers(x))
        self._mode = ("leaky", self.module.slope)
        return np.where(x >= 0, x, self.module.slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mode = self._mode
        x = self._x
        self._x = None
        kind = mode[0]
        if kind == "identity":
            return grad
        if kind == "relu":
            np.greater(x, 0, out=self._mask)
            return np.multiply(grad, self._mask, out=self._dx)
        if kind == "relu6":
            np.greater_equal(x, 0.0, out=self._mask)
            np.less_equal(x, 6.0, out=self._mask2)
            self._mask &= self._mask2
            return np.multiply(grad, self._mask, out=self._dx)
        if kind == "leaky":
            return grad * np.where(x >= 0, 1.0, mode[1])
        # relu6_interp: d/dx [clip(x,0,6)*(1-a) + x*a] = a + (1-a)*mask
        a, one_minus = mode[1], mode[2]
        mask = (x >= 0.0) & (x <= 6.0)
        return grad * a + (grad * one_minus) * mask

    def captures(self):
        yield self.module


class LinearTrainNode:
    """Linear layer replicating the eager matmul/transpose tape bit-for-bit."""

    def __init__(self, linear: nn.Linear):
        self.linear = linear

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.linear.weight.data.T
        if self.linear.bias is not None:
            out = out + self.linear.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        linear = self.linear
        wd = linear.weight.data
        if linear.bias is not None and linear.bias.requires_grad:
            linear.bias._accumulate(grad.sum(axis=0))
        if linear.weight.requires_grad:
            # Same contraction order as the eager transpose-node backward.
            dw_t = np.swapaxes(self._x, -1, -2) @ grad
            linear.weight._accumulate(dw_t.transpose(1, 0))
        dx = grad @ wd
        self._x = None
        return dx

    def captures(self):
        yield self.linear
        yield self.linear.weight
        if self.linear.bias is not None:
            yield self.linear.bias


class GapFlattenNode:
    """Global average pool + flatten: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self):
        self._dx = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        self._shape = x.shape
        self._inv_count = 1.0 / max(h * w, 1)
        return x.mean(axis=(2, 3), keepdims=True).reshape(n, c)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        g = (grad * self._inv_count).reshape(n, c, 1, 1)
        # Materialise (don't hand out a 0-strided broadcast view): downstream
        # contractions are bit-sensitive to operand strides, and the eager
        # tape materialises this gradient at accumulation time.
        if self._dx is None or self._dx.shape != self._shape or self._dx.dtype != g.dtype:
            self._dx = np.empty(self._shape, dtype=g.dtype)
        self._dx[...] = g
        return self._dx

    def captures(self):
        return ()


class ResidualTrainNode:
    """``body(x) + x`` with gradient fan-in on the skip connection."""

    def __init__(self, body: "ChainTrainNode"):
        self.body = body

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body.forward(x)
        return out + x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.body.backward(grad) + grad

    def captures(self):
        yield from self.body.captures()


class ChainTrainNode:
    """Run nodes in order (and in reverse for the backward sweep)."""

    def __init__(self, nodes: list):
        self.nodes = nodes

    def forward(self, x: np.ndarray) -> np.ndarray:
        for node in self.nodes:
            x = node.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for node in reversed(self.nodes):
            grad = node.backward(grad)
        return grad

    def captures(self):
        for node in self.nodes:
            yield from node.captures()


class EagerNode:
    """Correctness fallback: run the submodule on the autograd tape.

    The segment still participates in the fused program — its parameter
    gradients accumulate through the normal ``Tensor._accumulate`` path (into
    the flat gradient buffer when one is bound) and the input gradient is
    handed back to the surrounding compiled nodes.
    """

    def __init__(self, module: nn.Module):
        self.module = module

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in = Tensor(x, requires_grad=True)
        self._out = self.module(self._in)
        return self._out.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._out.backward(grad)
        dx = self._in.grad
        self._in = self._out = None
        return dx

    def captures(self):
        yield self.module
        yield from (p for p in self.module.parameters())


class CrossEntropyTrainNode:
    """Fused softmax cross-entropy with label smoothing."""

    def __init__(self, label_smoothing: float = 0.0):
        self.label_smoothing = label_smoothing

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        self._targets = F._cross_entropy_targets(
            labels, logits.shape[-1], self.label_smoothing, soft_targets=False
        )
        loss, self._cache = F.softmax_cross_entropy_raw(logits, self._targets)
        return float(loss)

    def backward(self) -> np.ndarray:
        grad = F.softmax_cross_entropy_grad(self._cache, self._targets, upstream=1.0)
        self._cache = self._targets = None
        return grad


# --------------------------------------------------------------------------- #
# lowering: annotated shared graph -> train nodes
# --------------------------------------------------------------------------- #
def _train_node_from(node: OpNode):
    """Build the matched forward/backward node for one graph node.

    Anything without a fused training implementation — grouped non-depthwise
    convs, frozen/quantized layers, pools, active dropout (stochastic: keeps
    the module's own RNG), unknown modules — becomes an :class:`EagerNode`
    running on the autograd tape inside the program.
    """
    kind = node.kind
    module = node.module
    if kind == "conv":
        if module.groups > 1 and module.groups != module.in_channels:
            return EagerNode(module)
        return ConvTrainNode(module)
    if kind == "bn":
        if isinstance(module, nn.BatchNorm2d):
            return BNTrainNode(module)
        return EagerNode(module)  # FrozenBatchNorm2d has no batch statistics
    if kind == "linear":
        return LinearTrainNode(module)
    if kind == "act":
        try:
            return ActTrainNode(module)
        except UnsupportedModule:
            return EagerNode(module)
    if kind == "gap_flatten":
        return GapFlattenNode()
    if kind in ("gap", "flatten"):
        # A stray GAP/Flatten (not part of the pooled-head idiom the
        # fuse_gap_flatten pass merges) has no matched backward; in practice
        # the model zoo always pairs them.
        raise UnsupportedModule("unpaired GlobalAvgPool2d/Flatten")
    if kind == "residual":
        return ResidualTrainNode(_chain_from_graph(node.body))
    return EagerNode(module)  # dropout / pool / quantized wrappers / unknown


def _chain_from_graph(graph: Graph) -> "ChainTrainNode":
    return ChainTrainNode([_train_node_from(node) for node in graph.nodes if node.kind != "loss"])


def structure_signature(model: nn.Module) -> tuple:
    """Identity signature of a module tree: every submodule and parameter id.

    A direct recursion (no name-string construction, no intermediate lists)
    so the per-step staleness check stays cheap.
    """
    ids: list[int] = []

    def visit(module: nn.Module) -> None:
        ids.append(id(module))
        for param in module._parameters.values():
            ids.append(id(param))
        for child in module._modules.values():
            visit(child)

    visit(model)
    return tuple(ids)


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
class TrainStep:
    """A compiled forward+backward training step.

    Calling the step runs the fused program on a raw batch, accumulates
    parameter gradients into ``param.grad`` (the optimiser's flat gradient
    buffer when bound) and returns ``(loss, logits)``.  The caller — normally
    :class:`~repro.train.trainer.Trainer` — remains responsible for
    ``optimizer.zero_grad()`` / ``optimizer.step()`` so schedulers, gradient
    clipping and iteration callbacks keep their usual sequencing.

    Attributes
    ----------
    model:
        The eager module the program was compiled from.  Weights are *not*
        snapshotted: nodes read the live parameter arrays every call.
    graph:
        The annotated :class:`~repro.runtime.ir.Graph` the program was built
        from (``None`` when constructed from pre-built nodes).
    """

    def __init__(
        self,
        model: nn.Module,
        chain: ChainTrainNode,
        loss: CrossEntropyTrainNode,
        graph: Graph | None = None,
    ):
        self.model = model
        self.chain = chain
        self.loss = loss
        self.graph = graph
        if chain.nodes and isinstance(chain.nodes[0], (ConvTrainNode, BNTrainNode)):
            chain.nodes[0].skip_input_grad = True
        self._signature = structure_signature(model)

    @property
    def threads(self) -> int:
        """Always 1: the fused step keeps the documented serial fallback.

        BatchNorm runs in batch-statistics mode during training, coupling
        every sample of the batch, so the step cannot be batch-tiled; a
        ``CompileOptions(threads=N)`` request is recorded by the
        ``plan_parallel`` pass with its serial reason (see ``describe()``)
        and execution stays single-threaded and bit-identical to eager.
        """
        return 1

    def matches(self, model: nn.Module) -> bool:
        """True while ``model``'s structure still matches the compiled program.

        Detects swapped submodules or replaced parameters (e.g. NetBooster
        contraction, ``reset_classifier``); in-place weight mutation is always
        picked up live and needs no recompilation.
        """
        return model is self.model and structure_signature(model) == self._signature

    def __call__(self, images: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Run one fused forward+backward pass.

        Parameters
        ----------
        images:
            Input batch ``(N, C, H, W)``; converted to contiguous float32.
        labels:
            Integer class labels ``(N,)``.

        Returns
        -------
        (float, ndarray)
            The scalar loss and a detached copy of the logits.
        """
        x = np.ascontiguousarray(images, dtype=np.float32)
        logits = self.chain.forward(x)
        loss = self.loss.forward(logits, labels)
        grad = self.loss.backward()
        self.chain.backward(grad)
        return loss, logits.copy()

    def numpy_forward(self, images: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Uniform-frontend alias of :meth:`__call__` (raw arrays in/out)."""
        return self(images, labels)

    def memory_plan(self, input_shape: tuple[int, ...]):
        """Arena-planner accounting of the *forward* value buffers.

        Gradients and per-node workspaces are excluded — the number reported
        is the forward working set under layer-by-layer execution, comparable
        to the inference engines' plans for the same model.
        """
        if self.graph is None:
            raise RuntimeError("this TrainStep was built without a graph; no plan available")
        from .passes import plan_graph_memory

        return plan_graph_memory(self.graph, tuple(input_shape))

    def describe(self) -> str:
        """Printable lowering report (passes applied + annotated node table)."""
        from .frontend import describe_graph

        return describe_graph(self.graph, self)

    def save(self, path: str, *, input_shape=None, model_ref: dict | None = None):
        """Serialize to a versioned artifact file (see :func:`repro.load`)."""
        from .artifact import save_artifact

        return save_artifact(self, path, input_shape=input_shape, model_ref=model_ref)


def build_training_program(graph: Graph) -> TrainStep:
    """Lower an annotated graph to a :class:`TrainStep` (frontend backend hook)."""
    chain = _chain_from_graph(graph)
    if not chain.nodes:
        raise UnsupportedModule("model lowered to an empty training program")
    label_smoothing = 0.0
    for node in graph.nodes:
        if node.kind == "loss":
            label_smoothing = node.attrs.get("label_smoothing", 0.0)
    return TrainStep(graph.source, chain, CrossEntropyTrainNode(label_smoothing), graph=graph)


from .frontend import _deprecated


@_deprecated("repro.compile(model, mode='train', loss=..., optimizer=...)")
def compile_training_step(
    model: nn.Module,
    loss=None,
    optimizer=None,
) -> TrainStep | None:
    """Deprecated alias of ``repro.compile(model, mode="train", loss=...)``.

    Parameters
    ----------
    model:
        The eager module to train.  Recognised structures (the model zoo's
        conv/BN/activation blocks) lower to fused forward+backward kernels;
        unknown submodules run on the autograd tape inside the program.
    loss:
        A :class:`~repro.train.trainer.StandardLoss` (or ``None`` for plain
        cross-entropy).  Any other loss computer returns ``None`` — callers
        fall back to the eager path.
    optimizer:
        Unused at compile time (gradients flow through ``param.grad``);
        accepted so call sites can pass their optimiser for future lowering.

    Returns
    -------
    TrainStep or None
        The compiled step, or ``None`` when the loss cannot be lowered
        (where :func:`repro.compile` raises
        :class:`~repro.runtime.ir.CompileError`, this legacy wrapper keeps
        the historical ``None`` contract).

    .. deprecated::
        Use :func:`repro.compile` — this wrapper emits a
        :class:`DeprecationWarning` (once) and forwards to it.
    """
    from .frontend import compile_model
    from .ir import CompileError

    try:
        return compile_model(model, mode="train", loss=loss, optimizer=optimizer)
    except CompileError:
        return None
