"""Declared compiler passes over the shared :mod:`repro.runtime.ir` graph.

A :class:`PassManager` runs an ordered list of :class:`Pass` instances over a
traced :class:`~repro.runtime.ir.Graph` and enforces the pipeline's ordering
invariants (BN folding before activation fusion, shape inference and layout
assignment before arena planning).  The mode pipelines —
:func:`inference_pipeline`, :func:`int8_pipeline`, :func:`training_pipeline` —
are what the :func:`repro.compile` frontend schedules; backends only consume
the annotations the passes leave in ``node.meta`` / ``graph.meta``:

=====================  =====================================================
pass                   annotation
=====================  =====================================================
``eliminate_dropout``  removes inference-time identity nodes
``fold_batchnorm``     ``node.meta["bn_folds"] = [(scale, shift), ...]``
``fuse_activations``   ``node.meta["act"]`` (fused) / ``node.meta["spec"]``
``lower_int8``         ``node.meta["grid"]`` (+ calibration validation)
``fuse_gap_flatten``   merges ``gap`` + ``flatten`` into ``gap_flatten``
``attach_loss``        appends the training ``loss`` node
``assign_layout``      ``graph.meta["layout"] = "NCHW" | "CNHW"``
``plan_parallel``      ``graph.meta["parallel"]`` — worker count + tiling
                       constants; ``node.meta["tileable"]`` per node
``infer_shapes``       ``node.meta["out_shape"]`` for a concrete input shape
``plan_memory``        ``graph.meta["memory_plan"]`` — liveness-packed
                       :class:`~repro.runtime.planner.MemoryPlan`
=====================  =====================================================

Arena planning is deliberately a *pass* (not an int8-engine private): the
float inference program gets the same deployment-style peak-working-set
accounting through :func:`plan_graph_memory` /
:meth:`repro.runtime.CompiledNet.memory_plan`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.functional import conv_output_size
from .ir import (
    CompileError,
    Graph,
    OpNode,
    QuantCompileError,
    activation_spec,
    bn_scale_shift,
)
from .planner import ArenaPlanner, MemoryPlan

__all__ = [
    "Pass",
    "PassManager",
    "PassOrderError",
    "EliminateDropout",
    "FoldBatchNorm",
    "FuseActivations",
    "LowerInt8",
    "FuseGapFlatten",
    "AttachLoss",
    "AssignLayout",
    "PlanParallel",
    "InferShapes",
    "PlanMemory",
    "inference_pipeline",
    "int8_pipeline",
    "training_pipeline",
    "plan_graph_memory",
]


class PassOrderError(CompileError):
    """A pass pipeline violates a declared ordering invariant."""


class Pass:
    """One graph transformation with declared ordering constraints.

    Attributes
    ----------
    name:
        Stable identifier recorded in ``graph.meta["passes"]``.
    requires:
        Pass names that must be scheduled *earlier in the same pipeline*.
    after:
        Pass names that, *when present* in the pipeline, must come earlier.
    """

    name: str = "pass"
    requires: tuple[str, ...] = ()
    after: tuple[str, ...] = ()

    def run(self, graph: Graph) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class PassManager:
    """Validates ordering invariants, then runs the passes in sequence.

    Raises
    ------
    PassOrderError
        At *construction* time when a pass's ``requires`` is missing or
        scheduled late, or an ``after`` constraint is violated — a bad
        pipeline never runs half-way.
    """

    def __init__(self, passes: list[Pass]):
        self.passes = list(passes)
        names = [p.name for p in self.passes]
        for index, p in enumerate(self.passes):
            earlier = set(names[:index])
            for required in p.requires:
                if required not in earlier:
                    raise PassOrderError(
                        f"pass {p.name!r} requires {required!r} to run earlier in the pipeline"
                    )
            for predecessor in p.after:
                if predecessor in names and predecessor not in earlier:
                    raise PassOrderError(
                        f"pass {p.name!r} must run after {predecessor!r}"
                    )

    def run(self, graph: Graph, record: bool = True) -> Graph:
        """Run the pipeline; ``record=False`` keeps ``graph.meta["passes"]``
        untouched (used for the deferred per-shape planning passes, which may
        run many times on one compiled graph)."""
        applied = graph.meta.setdefault("passes", []) if record else None
        for p in self.passes:
            p.run(graph)
            if applied is not None:
                applied.append(p.describe())
        return graph


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _quant_lowerable(module) -> bool:
    """True when a quantized wrapper is calibrated (lowerable to integer ops)."""
    return not module.observing and module.input_qparams() is not None


def _rewrite(graph: Graph, rewrite_list) -> None:
    """Apply ``rewrite_list`` to the graph's node list and every residual body."""
    graph.nodes = rewrite_list(graph.nodes)
    for node in graph.nodes:
        if node.body is not None:
            _rewrite(node.body, rewrite_list)


# --------------------------------------------------------------------------- #
# passes
# --------------------------------------------------------------------------- #
class EliminateDropout(Pass):
    """Remove dropout nodes that are the identity for the compile mode.

    Inference modes drop every dropout node; the training pipeline
    (``keep_active=True``) keeps stochastically active ones (``rate > 0``),
    which the training backend runs on the eager tape to preserve the
    module's own RNG stream.
    """

    name = "eliminate_dropout"

    def __init__(self, keep_active: bool = False):
        self.keep_active = keep_active

    def run(self, graph: Graph) -> None:
        def rewrite(nodes):
            kept = []
            for node in nodes:
                if node.kind == "dropout":
                    if self.keep_active and node.attrs.get("rate", 0.0) > 0.0:
                        kept.append(node)
                    continue
                kept.append(node)
            return kept

        _rewrite(graph, rewrite)


class FoldBatchNorm(Pass):
    """Fold eval-mode BN affines into the preceding conv/linear node.

    Records ``(scale, shift)`` pairs in ``node.meta["bn_folds"]`` (applied in
    order by the backends) and removes the folded ``bn`` node.  Quantized
    targets must be calibrated — an uncalibrated wrapper falls back to eager
    execution in the float backend, where folding would corrupt results.

    Parameters
    ----------
    targets:
        Node kinds BN may fold into (the int8 pipeline restricts this to
        quantized ops; unquantized convs run eagerly there).
    repeat:
        Allow several consecutive BNs to fold into one op (float behaviour);
        the int8 engine folds at most one BN into its requant constants.
    """

    name = "fold_batchnorm"

    def __init__(
        self,
        targets: tuple[str, ...] = ("conv", "linear", "qconv", "qlinear"),
        repeat: bool = True,
    ):
        self.targets = targets
        self.repeat = repeat

    def _foldable(self, node: OpNode) -> bool:
        if node.kind not in self.targets:
            return False
        if node.kind in ("qconv", "qlinear") and not _quant_lowerable(node.module):
            return False
        if node.meta.get("act") is not None:
            return False
        return self.repeat or "bn_folds" not in node.meta

    def run(self, graph: Graph) -> None:
        def rewrite(nodes):
            kept: list[OpNode] = []
            for node in nodes:
                prev = kept[-1] if kept else None
                if node.kind == "bn" and prev is not None and self._foldable(prev):
                    prev.meta.setdefault("bn_folds", []).append(bn_scale_shift(node.module))
                    continue
                kept.append(node)
            return kept

        _rewrite(graph, rewrite)


class FuseActivations(Pass):
    """Attach activation specs to the preceding fused op.

    Resolves each ``act`` node to a kernel spec (reading decayable ``alpha``
    at compile time, like both legacy paths did), elides identity-decayed
    activations, and fuses the spec into the previous node's ``meta["act"]``
    when that node can execute it — conv/linear/standalone-BN in float mode;
    calibrated quantized ops (ReLU/ReLU6 only, which become integer clamps)
    in int8 mode.  Unfusable activations stay as standalone nodes with
    ``meta["spec"]`` resolved.
    """

    name = "fuse_activations"
    after = ("fold_batchnorm",)

    def __init__(self, int8: bool = False):
        self.int8 = int8

    def _fusable_into(self, prev: OpNode, spec: tuple) -> bool:
        if prev is None or prev.meta.get("act") is not None:
            return False
        if self.int8:
            return prev.kind in ("qconv", "qlinear") and spec[0] in ("relu", "relu6")
        if prev.kind in ("qconv", "qlinear"):
            return _quant_lowerable(prev.module)
        return prev.kind in ("conv", "linear", "bn")

    def run(self, graph: Graph) -> None:
        def rewrite(nodes):
            kept: list[OpNode] = []
            for node in nodes:
                if node.kind != "act":
                    kept.append(node)
                    continue
                spec = activation_spec(node.module)
                if spec is None:  # decayed to identity
                    continue
                prev = kept[-1] if kept else None
                if self._fusable_into(prev, spec):
                    prev.meta["act"] = spec
                else:
                    node.meta["spec"] = spec
                    kept.append(node)
            return kept

        _rewrite(graph, rewrite)


class LowerInt8(Pass):
    """Validate calibration and annotate each quantized node's integer grid.

    Every quantized node gains its input grid ``(scale, zero_point, bits)``
    — the annotation ``describe()`` renders and the emitter's contract rests
    on — and an uncalibrated wrapper fails the whole pipeline here with an
    actionable error instead of deep inside the emitter.  The derived
    requantization constants (BN folds, consumer output scale, exact-f32
    bound) stay an emission-time concern: they depend on the consumer grid,
    which only the backend's dataflow walk knows.
    """

    name = "lower_int8"
    after = ("fold_batchnorm", "fuse_activations")

    def run(self, graph: Graph) -> None:
        for node, _ in graph.walk():
            if node.kind not in ("qconv", "qlinear"):
                continue
            wrapper = node.module
            qparams = wrapper.input_qparams() if not wrapper.observing else None
            if qparams is None:
                raise QuantCompileError(
                    f"quantized layer {node.name or node.kind!r} has no frozen activation "
                    "range; run repro.compress.calibrate first"
                )
            in_scale, in_zp = qparams
            node.meta["grid"] = (in_scale, in_zp, wrapper.spec.bits)


class FuseGapFlatten(Pass):
    """Merge the pooled-head idiom ``gap -> flatten`` into one node.

    The training backend implements the pair as a single
    ``(N, C, H, W) -> (N, C)`` node with a matched backward.
    """

    name = "fuse_gap_flatten"

    def run(self, graph: Graph) -> None:
        def rewrite(nodes):
            kept: list[OpNode] = []
            for node in nodes:
                if node.kind == "flatten" and kept and kept[-1].kind == "gap":
                    gap = kept.pop()
                    kept.append(OpNode("gap_flatten", gap.name, gap.module))
                    continue
                kept.append(node)
            return kept

        _rewrite(graph, rewrite)


class AttachLoss(Pass):
    """Append the training ``loss`` node (fused softmax cross-entropy)."""

    name = "attach_loss"

    def __init__(self, label_smoothing: float = 0.0):
        self.label_smoothing = float(label_smoothing)

    def run(self, graph: Graph) -> None:
        graph.nodes.append(
            OpNode("loss", "loss", None, {"label_smoothing": self.label_smoothing})
        )


class AssignLayout(Pass):
    """Record the backend buffer layout (``NCHW`` float/train, ``CNHW`` int8)."""

    name = "assign_layout"

    def __init__(self, layout: str):
        if layout not in ("NCHW", "CNHW"):
            raise ValueError(f"unknown layout {layout!r}")
        self.layout = layout

    def run(self, graph: Graph) -> None:
        graph.meta["layout"] = self.layout

    def describe(self) -> str:
        return f"assign_layout({self.layout})"


class PlanParallel(Pass):
    """Plan the parallel schedule: worker count and deterministic tiling.

    Resolves the requested ``threads`` (``CompileOptions(threads=...)`` /
    ``$REPRO_THREADS``; see :func:`repro.runtime.parallel.resolve_threads`)
    at compile time, marks every node's batch-tileability, and records the
    tiling constants in ``graph.meta["parallel"]``.  The *partition* itself
    stays a pure function of the batch size — threads only size the worker
    pool — which is what makes outputs bit-identical across thread counts
    (see :mod:`repro.runtime.parallel`).

    Training sets ``serial_reason``: BatchNorm batch statistics couple every
    sample of the batch, so the fused step cannot tile it and keeps the
    serial fallback the executor reports in ``describe()``.
    """

    name = "plan_parallel"
    after = ("fold_batchnorm", "fuse_activations", "lower_int8", "assign_layout")

    def __init__(
        self,
        threads: int | str | None = None,
        serial_reason: str | None = None,
    ):
        from .parallel import MAX_TILES, MIN_TILE, resolve_threads

        self.threads = 1 if serial_reason else resolve_threads(threads)
        self.max_tiles = MAX_TILES
        self.min_tile = MIN_TILE
        self.serial_reason = serial_reason

    def run(self, graph: Graph) -> None:
        from .parallel import node_tileable

        for node, _ in graph.walk():
            node.meta["tileable"] = node_tileable(node) and self.serial_reason is None
        graph.meta["parallel"] = {
            "threads": self.threads,
            "max_tiles": self.max_tiles,
            "min_tile": self.min_tile,
            "serial_reason": self.serial_reason,
        }

    def describe(self) -> str:
        if self.serial_reason:
            return f"plan_parallel(serial: {self.serial_reason})"
        return f"plan_parallel(threads={self.threads})"


class InferShapes(Pass):
    """Annotate every node with its output shape for a concrete input shape.

    Shapes are logical ``NCHW`` regardless of the assigned buffer layout.
    Opaque ``eager`` nodes are probed with a zero batch (eval mode, no grad),
    exactly like the int8 emitter does.
    """

    name = "infer_shapes"

    def __init__(self, input_shape: tuple[int, ...]):
        self.input_shape = tuple(int(s) for s in input_shape)

    def run(self, graph: Graph) -> None:
        graph.meta["input_shape"] = self.input_shape
        self._walk(graph, self.input_shape)

    def _walk(self, graph: Graph, shape: tuple[int, ...]) -> tuple[int, ...]:
        for node in graph.nodes:
            shape = self._node_shape(node, shape)
            node.meta["out_shape"] = shape
        return shape

    def _node_shape(self, node: OpNode, shape: tuple[int, ...]) -> tuple[int, ...]:
        kind = node.kind
        if kind in ("conv", "qconv"):
            n, _, h, w = shape
            kh, kw = node.attrs["kernel"]
            stride, padding = node.attrs["stride"], node.attrs["padding"]
            return (
                n,
                node.attrs["out_channels"],
                conv_output_size(h, kh, stride, padding),
                conv_output_size(w, kw, stride, padding),
            )
        if kind in ("linear", "qlinear"):
            return (shape[0], node.attrs["out_channels"])
        if kind == "pool":
            n, c, h, w = shape
            k, stride, padding = node.attrs["kernel"], node.attrs["stride"], node.attrs["padding"]
            return (n, c, conv_output_size(h, k, stride, padding), conv_output_size(w, k, stride, padding))
        if kind == "gap":
            return (shape[0], shape[1], 1, 1)
        if kind == "flatten":
            return (shape[0], int(np.prod(shape[1:])))
        if kind == "gap_flatten":
            return (shape[0], shape[1])
        if kind == "residual":
            return self._walk(node.body, shape)
        if kind == "loss":
            return ()
        if kind == "eager":
            probe = nn.Tensor(np.zeros(shape, dtype=np.float32))
            module = node.module
            was_training = module.training
            module.eval()
            try:
                with nn.no_grad():
                    out = module(probe)
            finally:
                module.train(was_training)
            data = out.data if isinstance(out, nn.Tensor) else np.asarray(out)
            return tuple(int(s) for s in data.shape)
        # bn / act / dropout and other elementwise nodes preserve the shape.
        return shape


class PlanMemory(Pass):
    """Liveness-based arena planning over the graph's value buffers.

    Promotes the int8 engine's :class:`~repro.runtime.planner.ArenaPlanner`
    to a generic pass: one step per executed op, the input and output of each
    step live simultaneously, residual identities pinned until their add.
    The resulting :class:`~repro.runtime.planner.MemoryPlan` (stored in
    ``graph.meta["memory_plan"]``) is the deployment-style accounting an
    arena-backed execution of the program would need — the float engine
    reports it via :meth:`~repro.runtime.CompiledNet.memory_plan`, directly
    comparable to the int8 planner's peak working set and to
    :func:`repro.eval.deployment.peak_activation_memory`.
    """

    name = "plan_memory"
    requires = ("infer_shapes",)
    after = ("assign_layout",)

    def run(self, graph: Graph) -> None:
        if "layout" not in graph.meta:
            raise PassOrderError("assign_layout must run before plan_memory")
        planner = ArenaPlanner()
        in_shape = graph.meta.get("input_shape")
        buf = planner.alloc(in_shape, "value", "input")
        buf.touch(planner.advance())
        self._plan(graph, planner, buf)
        _, plan = planner.solve(materialize=False)
        graph.meta["memory_plan"] = plan

    def _plan(self, graph: Graph, planner: ArenaPlanner, buf):
        for node in graph.nodes:
            if node.kind == "loss":
                continue
            if node.kind == "flatten":
                continue  # a reshape view: no new buffer, no step
            if node.kind == "residual":
                identity = buf
                buf = self._plan(node.body, planner, buf)
                step = planner.advance()  # the residual add
                identity.touch(step)
                buf.touch(step)
                continue
            out = planner.alloc(node.meta["out_shape"], "value", node.name or node.kind)
            step = planner.advance()
            buf.touch(step)
            out.touch(step)
            buf = out
        return buf


# --------------------------------------------------------------------------- #
# mode pipelines
# --------------------------------------------------------------------------- #
def inference_pipeline(threads: int | str | None = None) -> list[Pass]:
    """Passes for ``mode="infer"`` (the fused float engine).

    ``threads`` schedules :class:`PlanParallel`; ``None`` defers to
    ``$REPRO_THREADS`` (unset → serial untiled execution, no pass added).
    """
    passes = [
        EliminateDropout(),
        FoldBatchNorm(),
        FuseActivations(),
        AssignLayout("NCHW"),
    ]
    plan = _maybe_plan_parallel(threads)
    if plan is not None:
        passes.append(plan)
    return passes


def int8_pipeline(threads: int | str | None = None) -> list[Pass]:
    """Passes for ``mode="int8"`` (the true-integer engine)."""
    passes = [
        EliminateDropout(),
        FoldBatchNorm(targets=("qconv", "qlinear"), repeat=False),
        FuseActivations(int8=True),
        LowerInt8(),
        AssignLayout("CNHW"),
    ]
    plan = _maybe_plan_parallel(threads)
    if plan is not None:
        passes.append(plan)
    return passes


def training_pipeline(
    label_smoothing: float = 0.0, threads: int | str | None = None
) -> list[Pass]:
    """Passes for ``mode="train"`` (the fused forward+backward step).

    Training keeps BatchNorm in batch-statistics mode and activations as
    matched forward/backward pairs, so neither folding nor fusion runs here.
    A ``threads`` request is honoured with the documented serial fallback:
    BN batch statistics couple the whole batch, so the step cannot tile it.
    """
    passes = [
        EliminateDropout(keep_active=True),
        FuseGapFlatten(),
        AttachLoss(label_smoothing),
        AssignLayout("NCHW"),
    ]
    plan = _maybe_plan_parallel(threads, serial_reason="batchnorm batch statistics")
    if plan is not None:
        passes.append(plan)
    return passes


def _maybe_plan_parallel(threads, serial_reason: str | None = None) -> PlanParallel | None:
    """Schedule :class:`PlanParallel` unless the resolution is serial-untiled.

    ``threads=None`` with no ``$REPRO_THREADS`` means the caller never asked
    for a parallel plan: the pipeline stays exactly the legacy one (untiled
    kernels, unchanged float reduction order).  An *explicit* ``threads=1``
    does schedule the pass — it executes the tiled plan inline, which is the
    serial reference the cross-thread-count bit-identity tests compare to.
    """
    from .parallel import resolve_threads

    if threads is None:
        if resolve_threads(None) <= 1:
            return None
        threads = resolve_threads(None)
    return PlanParallel(threads, serial_reason=serial_reason)


def plan_graph_memory(graph: Graph, input_shape: tuple[int, ...]) -> MemoryPlan:
    """Run shape inference + arena planning for a concrete input shape.

    The compile pipelines defer these two passes because a compiled program
    is input-shape agnostic; executors call this from ``memory_plan()``.
    Repeated calls re-annotate ``out_shape`` for the *latest* shape (what
    ``describe()`` then renders) without growing the recorded pass trail.
    """
    PassManager([InferShapes(input_shape), PlanMemory()]).run(graph, record=False)
    return graph.meta["memory_plan"]
