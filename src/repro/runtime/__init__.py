"""Compiled runtimes: one graph IR, declared passes, three lowering backends.

Every engine starts from the same traced :class:`~repro.runtime.ir.Graph`
(one shared tracer in :mod:`repro.runtime.ir`) transformed by declared
compiler passes (:mod:`repro.runtime.passes`); the single frontend —
exported at the top level as :func:`repro.compile` — picks the backend::

    import repro

    net = repro.compile(model)             # fused float inference (CompiledNet)
    logits = net(images)                   # Tensor in, detached Tensor out
    raw = net.numpy_forward(arr)           # ndarray in, ndarray out
    print(net.describe())                  # trace -> passes -> backend report
    print(net.memory_plan((1, 3, 32, 32)).summary())

A model quantized and calibrated with :mod:`repro.compress` lowers to the
**true-integer engine** — int8 weights, activations on their calibrated
integer grids end to end, and a statically planned buffer arena::

    quantize_model(model)
    calibrate(model, batches)
    qnet = repro.compile(model, mode="int8")
    logits = qnet.numpy_forward(images)    # matches fake-quant within dequant tol

For training, ``mode="train"`` lowers model + loss into a fused
forward+backward :class:`TrainStep` that skips per-step tape construction and
writes gradients straight into the optimiser's flat buffer::

    step = repro.compile(model, mode="train", loss=loss_computer, optimizer=optimizer)
    loss, logits = step(images, labels)    # grads are now in param.grad
    optimizer.step()

:class:`~repro.train.trainer.Trainer` routes ``train_step`` through this path
automatically and falls back to the eager tape when a model or loss cannot be
lowered; ``repro.serve`` resolves its ``--engine {float,int8}`` backends
through the :func:`resolve_engine` registry here.

``compile`` snapshots weights for the inference modes — recompile after
further training.  The legacy entry points ``compile_net`` /
``compile_quantized`` / ``compile_training_step`` remain importable as thin
deprecated wrappers over the frontend (each warns once); the old
builtin-shadowing ``repro.runtime.compile`` alias is gone — use
``repro.compile`` or :func:`compile_model`.
"""

from .artifact import (
    ArtifactError,
    ArtifactInfo,
    load_artifact,
    model_fingerprint,
    read_artifact_info,
    save_artifact,
)
from .compiler import (
    CompiledNet,
    QuantConvOp,
    QuantLinearOp,
    activation_spec,
    compile_net,
    fold_conv_bn,
)
from .frontend import (
    CompileOptions,
    EngineSpec,
    available_engines,
    compile_model,
    register_artifact_engine,
    register_engine,
    resolve_engine,
)
from .ir import CompileError, Graph, OpNode, trace
from .parallel import ParallelExecutor, levelize, partition, resolve_threads, wave_table
from .passes import PassManager, PassOrderError
from .planner import ArenaPlanner, IOPlan, MemoryPlan, plan_io
from .quantized import QuantCompileError, QuantizedNet, compile_quantized
from .training import TrainStep, compile_training_step
from . import kernels

__all__ = [
    # the unified frontend (exported at the top level as repro.compile)
    "compile_model",
    "CompileOptions",
    "CompileError",
    # compiled artifacts (exported at the top level as repro.load)
    "save_artifact",
    "load_artifact",
    "read_artifact_info",
    "model_fingerprint",
    "ArtifactError",
    "ArtifactInfo",
    # shared IR + passes
    "Graph",
    "OpNode",
    "trace",
    "PassManager",
    "PassOrderError",
    # parallel scheduling (plan_parallel pass, wave executor, tile partition)
    "ParallelExecutor",
    "levelize",
    "wave_table",
    "partition",
    "resolve_threads",
    # engine registry (repro.serve --engine resolves through it)
    "EngineSpec",
    "register_engine",
    "register_artifact_engine",
    "resolve_engine",
    "available_engines",
    # executors
    "CompiledNet",
    "QuantizedNet",
    "TrainStep",
    # deprecated legacy entry points (thin wrappers over repro.compile)
    "compile_net",
    "compile_quantized",
    "compile_training_step",
    # backend building blocks
    "QuantCompileError",
    "QuantConvOp",
    "QuantLinearOp",
    "ArenaPlanner",
    "MemoryPlan",
    "IOPlan",
    "plan_io",
    "fold_conv_bn",
    "activation_spec",
    "kernels",
]
