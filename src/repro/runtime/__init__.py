"""Fused inference and training runtime.

Turn a trained eager :class:`~repro.nn.module.Module` into a
:class:`CompiledNet` executing fused NumPy kernels::

    from repro.runtime import compile

    net = compile(model)          # folds BN, fuses conv+bias+act
    logits = net(images)          # Tensor in, detached Tensor out
    raw = net.numpy_forward(arr)  # ndarray in, ndarray out

``compile`` snapshots the weights — recompile after further training.  The
:func:`~repro.train.trainer.evaluate` helper and the latency tooling in
:mod:`repro.eval` use this path by default.

A model quantized and calibrated with :mod:`repro.compress` can instead be
lowered to the **true-integer engine** — int8 weights, activations on their
calibrated integer grids end to end, and a statically planned buffer arena::

    from repro.runtime import compile_quantized

    quantize_model(model)
    calibrate(model, batches)
    net = compile_quantized(model)        # int8 kernels + memory planner
    logits = net.numpy_forward(images)    # matches fake-quant within dequant tol

See :mod:`repro.runtime.quantized` for the integer dataflow and
:mod:`repro.runtime.planner` for the arena planner; ``repro.serve`` builds a
dynamic-batching model server on top of either engine.

For training, :func:`compile_training_step` lowers model + loss into a fused
forward+backward :class:`TrainStep` that skips per-step tape construction and
writes gradients straight into the optimiser's flat buffer::

    from repro.runtime import compile_training_step

    step = compile_training_step(model, loss_computer, optimizer)
    loss, logits = step(images, labels)   # grads are now in param.grad
    optimizer.step()

:class:`~repro.train.trainer.Trainer` routes ``train_step`` through this path
automatically and falls back to the eager tape when a model or loss cannot be
lowered.
"""

from .compiler import CompiledNet, QuantConvOp, QuantLinearOp, activation_spec, compile_net, fold_conv_bn
from .planner import ArenaPlanner, MemoryPlan
from .quantized import QuantCompileError, QuantizedNet, compile_quantized
from .training import TrainStep, compile_training_step
from . import kernels

# torch.compile-style alias; shadows the builtin only inside this namespace.
compile = compile_net

__all__ = [
    "compile",
    "compile_net",
    "CompiledNet",
    "compile_quantized",
    "QuantizedNet",
    "QuantCompileError",
    "QuantConvOp",
    "QuantLinearOp",
    "ArenaPlanner",
    "MemoryPlan",
    "compile_training_step",
    "TrainStep",
    "fold_conv_bn",
    "activation_spec",
    "kernels",
]
