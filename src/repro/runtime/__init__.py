"""Fused inference and training runtime.

Turn a trained eager :class:`~repro.nn.module.Module` into a
:class:`CompiledNet` executing fused NumPy kernels::

    from repro.runtime import compile

    net = compile(model)          # folds BN, fuses conv+bias+act
    logits = net(images)          # Tensor in, detached Tensor out
    raw = net.numpy_forward(arr)  # ndarray in, ndarray out

``compile`` snapshots the weights — recompile after further training.  The
:func:`~repro.train.trainer.evaluate` helper and the latency tooling in
:mod:`repro.eval` use this path by default.

For training, :func:`compile_training_step` lowers model + loss into a fused
forward+backward :class:`TrainStep` that skips per-step tape construction and
writes gradients straight into the optimiser's flat buffer::

    from repro.runtime import compile_training_step

    step = compile_training_step(model, loss_computer, optimizer)
    loss, logits = step(images, labels)   # grads are now in param.grad
    optimizer.step()

:class:`~repro.train.trainer.Trainer` routes ``train_step`` through this path
automatically and falls back to the eager tape when a model or loss cannot be
lowered.
"""

from .compiler import CompiledNet, activation_spec, compile_net, fold_conv_bn
from .training import TrainStep, compile_training_step
from . import kernels

# torch.compile-style alias; shadows the builtin only inside this namespace.
compile = compile_net

__all__ = [
    "compile",
    "compile_net",
    "CompiledNet",
    "compile_training_step",
    "TrainStep",
    "fold_conv_bn",
    "activation_spec",
    "kernels",
]
