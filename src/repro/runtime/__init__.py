"""Fused inference runtime.

Turn a trained eager :class:`~repro.nn.module.Module` into a
:class:`CompiledNet` executing fused NumPy kernels::

    from repro.runtime import compile

    net = compile(model)          # folds BN, fuses conv+bias+act
    logits = net(images)          # Tensor in, detached Tensor out
    raw = net.numpy_forward(arr)  # ndarray in, ndarray out

``compile`` snapshots the weights — recompile after further training.  The
:func:`~repro.train.trainer.evaluate` helper and the latency tooling in
:mod:`repro.eval` use this path by default.
"""

from .compiler import CompiledNet, activation_spec, compile_net, fold_conv_bn
from . import kernels

# torch.compile-style alias; shadows the builtin only inside this namespace.
compile = compile_net

__all__ = ["compile", "compile_net", "CompiledNet", "fold_conv_bn", "activation_spec", "kernels"]
