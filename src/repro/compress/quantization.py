"""Simulated integer quantization (post-training, fake-quant style).

TNNs destined for microcontrollers are deployed in int8; the paper's
efficiency claims (Table I FLOPs / params) implicitly assume the contracted
network quantizes as well as a vanilla-trained one.  This module provides:

* :func:`quantize_array` / :func:`dequantize_array` — affine or symmetric
  uniform quantization of a NumPy array, per-tensor or per-output-channel;
* :class:`QuantizedConv2d` / :class:`QuantizedLinear` — drop-in wrappers that
  fake-quantize weights (at construction) and activations (with ranges
  gathered by :func:`calibrate`);
* :func:`quantize_model` — rewrite a trained model so every conv / linear goes
  through the wrappers, returning a :class:`QuantizationReport`.

Quantization is *simulated*: values are rounded to the integer grid and
immediately mapped back to float32, which reproduces int8 accuracy behaviour
while keeping the NumPy execution path unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn

__all__ = [
    "QuantizationSpec",
    "QuantizationReport",
    "quantize_array",
    "dequantize_array",
    "QuantizedConv2d",
    "QuantizedLinear",
    "quantize_model",
    "calibrate",
]


@dataclass(frozen=True)
class QuantizationSpec:
    """Configuration of the uniform quantizer.

    Parameters
    ----------
    bits:
        Word length; 8 gives the usual int8 deployment format.
    symmetric:
        Symmetric quantization centres the grid on zero (no zero-point),
        matching common weight quantizers; affine quantization uses a
        zero-point and suits post-ReLU activations.
    per_channel:
        Quantize weights with one scale per output channel instead of a single
        per-tensor scale.
    """

    bits: int = 8
    symmetric: bool = True
    per_channel: bool = True

    def __post_init__(self):
        if not 2 <= self.bits <= 16:
            raise ValueError("bits must lie in [2, 16]")

    @property
    def levels(self) -> int:
        return 2 ** self.bits

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1)) if self.symmetric else 0

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1 if self.symmetric else 2 ** self.bits - 1


def _scales_and_zero_points(
    array: np.ndarray, spec: QuantizationSpec, channel_axis: int | None
) -> tuple[np.ndarray, np.ndarray]:
    if channel_axis is None:
        flat = array.reshape(1, -1)
    else:
        flat = np.moveaxis(array, channel_axis, 0).reshape(array.shape[channel_axis], -1)
    if spec.symmetric:
        max_abs = np.maximum(np.abs(flat).max(axis=1), 1e-12)
        scale = max_abs / spec.qmax
        zero_point = np.zeros_like(scale)
    else:
        low = np.minimum(flat.min(axis=1), 0.0)
        high = np.maximum(flat.max(axis=1), 0.0)
        scale = np.maximum((high - low) / (spec.qmax - spec.qmin), 1e-12)
        zero_point = np.round(spec.qmin - low / scale)
    return scale.astype(np.float32), zero_point.astype(np.float32)


def quantize_array(
    array: np.ndarray,
    spec: QuantizationSpec | None = None,
    channel_axis: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``array`` to the integer grid defined by ``spec``.

    Returns ``(q, scale, zero_point)`` where ``q`` holds integers stored as
    float32.  Use :func:`dequantize_array` to map back.
    """
    spec = spec or QuantizationSpec()
    scale, zero_point = _scales_and_zero_points(array, spec, channel_axis)
    if channel_axis is None:
        broadcast_scale = scale.reshape(())
        broadcast_zp = zero_point.reshape(())
    else:
        shape = [1] * array.ndim
        shape[channel_axis] = -1
        broadcast_scale = scale.reshape(shape)
        broadcast_zp = zero_point.reshape(shape)
    q = np.clip(np.round(array / broadcast_scale + broadcast_zp), spec.qmin, spec.qmax)
    return q.astype(np.float32), scale, zero_point


def dequantize_array(
    q: np.ndarray,
    scale: np.ndarray,
    zero_point: np.ndarray,
    channel_axis: int | None = None,
) -> np.ndarray:
    """Map integer values produced by :func:`quantize_array` back to float."""
    if channel_axis is None:
        return ((q - zero_point) * scale).astype(np.float32)
    shape = [1] * q.ndim
    shape[channel_axis] = -1
    return ((q - zero_point.reshape(shape)) * scale.reshape(shape)).astype(np.float32)


def fake_quantize(
    array: np.ndarray, spec: QuantizationSpec, channel_axis: int | None = None
) -> np.ndarray:
    """Round-trip an array through the quantizer (quantize then dequantize)."""
    q, scale, zero_point = quantize_array(array, spec, channel_axis)
    return dequantize_array(q, scale, zero_point, channel_axis)


def quantization_error(array: np.ndarray, spec: QuantizationSpec, channel_axis: int | None = None) -> float:
    """Root-mean-square error introduced by quantizing ``array``."""
    return float(np.sqrt(np.mean((array - fake_quantize(array, spec, channel_axis)) ** 2)))


# --------------------------------------------------------------------------- #
# quantized layer wrappers
# --------------------------------------------------------------------------- #
class _QuantizedWrapper(nn.Module):
    """Shared machinery for the conv / linear fake-quant wrappers."""

    def __init__(self, wrapped: nn.Module, spec: QuantizationSpec):
        super().__init__()
        self.wrapped = wrapped
        self.spec = spec
        self.observing = True
        self.register_buffer("act_low", np.array([np.inf], dtype=np.float32))
        self.register_buffer("act_high", np.array([-np.inf], dtype=np.float32))
        self.weight_error = self._quantize_weights()

    def _quantize_weights(self) -> float:
        weight = self.wrapped.weight
        channel_axis = 0 if self.spec.per_channel else None
        error = quantization_error(weight.data, self.spec, channel_axis)
        weight.data[...] = fake_quantize(weight.data, self.spec, channel_axis)
        return error

    def _observe(self, x: np.ndarray) -> None:
        self.act_low[0] = min(self.act_low[0], float(x.min()))
        self.act_high[0] = max(self.act_high[0], float(x.max()))

    def _quantize_activation(self, x: nn.Tensor) -> nn.Tensor:
        if self.observing:
            self._observe(x.data)
            return x
        if not np.isfinite(self.act_low[0]) or not np.isfinite(self.act_high[0]):
            return x
        low, high = float(self.act_low[0]), float(self.act_high[0])
        if high <= low:
            return x
        act_spec = QuantizationSpec(bits=self.spec.bits, symmetric=False, per_channel=False)
        scale = max((high - low) / (act_spec.qmax - act_spec.qmin), 1e-12)
        zero_point = round(act_spec.qmin - low / scale)
        q = np.clip(np.round(x.data / scale + zero_point), act_spec.qmin, act_spec.qmax)
        return nn.Tensor(((q - zero_point) * scale).astype(np.float32))

    def freeze(self) -> None:
        """Stop observing activation ranges and start quantizing activations."""
        self.observing = False

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.wrapped(self._quantize_activation(x))


class QuantizedConv2d(_QuantizedWrapper):
    """Conv2d with fake-quantized weights and (after calibration) activations."""

    def __repr__(self) -> str:
        return f"QuantizedConv2d(bits={self.spec.bits}, wrapped={self.wrapped!r})"


class QuantizedLinear(_QuantizedWrapper):
    """Linear layer with fake-quantized weights and activations."""

    def __repr__(self) -> str:
        return f"QuantizedLinear(bits={self.spec.bits}, wrapped={self.wrapped!r})"


@dataclass
class QuantizationReport:
    """Summary of a whole-model post-training quantization pass."""

    bits: int
    quantized_layers: int
    weight_rmse: dict[str, float] = field(default_factory=dict)

    @property
    def mean_weight_rmse(self) -> float:
        if not self.weight_rmse:
            return 0.0
        return float(np.mean(list(self.weight_rmse.values())))

    def summary(self) -> str:
        lines = [f"int{self.bits} quantization of {self.quantized_layers} layers"]
        for name, rmse in self.weight_rmse.items():
            lines.append(f"  {name:<40s} weight RMSE {rmse:.5f}")
        return "\n".join(lines)


def quantize_model(
    model: nn.Module,
    spec: QuantizationSpec | None = None,
    skip: tuple[str, ...] = (),
) -> QuantizationReport:
    """Replace every Conv2d / Linear in ``model`` with a fake-quant wrapper.

    The replacement happens in place via ``set_submodule``.  Layers whose
    dotted path starts with an entry of ``skip`` are left untouched (commonly
    the first conv and the classifier, which are kept in higher precision in
    many deployment flows).
    """
    spec = spec or QuantizationSpec()
    report = QuantizationReport(bits=spec.bits, quantized_layers=0)
    targets = []
    for name, module in model.named_modules():
        if name == "":
            continue
        if isinstance(module, (nn.Conv2d, nn.Linear)) and not any(name.startswith(s) for s in skip):
            targets.append((name, module))
    for name, module in targets:
        wrapper_cls = QuantizedConv2d if isinstance(module, nn.Conv2d) else QuantizedLinear
        wrapper = wrapper_cls(module, spec)
        model.set_submodule(name, wrapper)
        report.weight_rmse[name] = wrapper.weight_error
        report.quantized_layers += 1
    return report


def calibrate(model: nn.Module, batches, freeze: bool = True) -> int:
    """Run calibration batches through a quantized model to set activation ranges.

    Parameters
    ----------
    model:
        A model previously processed by :func:`quantize_model`.
    batches:
        Iterable of image arrays (``(N, C, H, W)``) used to observe activation
        ranges.
    freeze:
        Freeze the observers afterwards so subsequent forward passes quantize
        activations.

    Returns the number of calibration batches processed.
    """
    wrappers = [m for _, m in model.named_modules() if isinstance(m, _QuantizedWrapper)]
    if not wrappers:
        raise ValueError("model has no quantized layers; call quantize_model first")
    for wrapper in wrappers:
        wrapper.observing = True
    was_training = model.training
    model.eval()
    count = 0
    with nn.no_grad():
        for batch in batches:
            model(nn.Tensor(np.asarray(batch, dtype=np.float32)))
            count += 1
    model.train(was_training)
    if freeze:
        for wrapper in wrappers:
            wrapper.freeze()
    return count
