"""Simulated integer quantization (post-training, fake-quant style).

TNNs destined for microcontrollers are deployed in int8; the paper's
efficiency claims (Table I FLOPs / params) implicitly assume the contracted
network quantizes as well as a vanilla-trained one.  This module provides:

* :func:`quantize_array` / :func:`dequantize_array` — affine or symmetric
  uniform quantization of a NumPy array, per-tensor or per-output-channel;
* :class:`QuantizedConv2d` / :class:`QuantizedLinear` — drop-in wrappers that
  fake-quantize weights (at construction) and activations (with ranges
  gathered by :func:`calibrate`);
* :func:`quantize_model` — rewrite a trained model so every conv / linear goes
  through the wrappers, returning a :class:`QuantizationReport`.

The *eager* forward of a quantized model is simulated: values are rounded to
the integer grid and immediately mapped back to float32, which reproduces
int8 accuracy behaviour while keeping the NumPy execution path unchanged.
The wrappers additionally store the **real** integer parameters — ``weight_q``
(an ``int8`` array) with per-channel ``weight_scale`` — and, once calibrated,
expose activation grids via :meth:`_QuantizedWrapper.input_qparams`.  The
true-integer inference engine (:func:`repro.runtime.compile_quantized`)
executes straight from these, with the fake-quant eager path serving as its
accuracy oracle.

:func:`calibrate` supports two range estimators: plain min/max observation and
percentile calibration (``method="percentile"``), which discards extreme
outliers and tightens the grid over the bulk of the distribution — the usual
win for post-ReLU activations with heavy tails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn

__all__ = [
    "QuantizationSpec",
    "QuantizationReport",
    "quantize_array",
    "dequantize_array",
    "activation_qparams",
    "QuantizedConv2d",
    "QuantizedLinear",
    "quantize_model",
    "calibrate",
]


@dataclass(frozen=True)
class QuantizationSpec:
    """Configuration of the uniform quantizer.

    Parameters
    ----------
    bits:
        Word length; 8 gives the usual int8 deployment format.
    symmetric:
        Symmetric quantization centres the grid on zero (no zero-point),
        matching common weight quantizers; affine quantization uses a
        zero-point and suits post-ReLU activations.
    per_channel:
        Quantize weights with one scale per output channel instead of a single
        per-tensor scale.
    """

    bits: int = 8
    symmetric: bool = True
    per_channel: bool = True

    def __post_init__(self):
        if not 2 <= self.bits <= 16:
            raise ValueError("bits must lie in [2, 16]")

    @property
    def levels(self) -> int:
        return 2 ** self.bits

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1)) if self.symmetric else 0

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1 if self.symmetric else 2 ** self.bits - 1


def _scales_and_zero_points(
    array: np.ndarray, spec: QuantizationSpec, channel_axis: int | None
) -> tuple[np.ndarray, np.ndarray]:
    if channel_axis is None:
        flat = array.reshape(1, -1)
    else:
        flat = np.moveaxis(array, channel_axis, 0).reshape(array.shape[channel_axis], -1)
    if spec.symmetric:
        max_abs = np.maximum(np.abs(flat).max(axis=1), 1e-12)
        scale = max_abs / spec.qmax
        zero_point = np.zeros_like(scale)
    else:
        low = np.minimum(flat.min(axis=1), 0.0)
        high = np.maximum(flat.max(axis=1), 0.0)
        scale = np.maximum((high - low) / (spec.qmax - spec.qmin), 1e-12)
        zero_point = np.round(spec.qmin - low / scale)
    return scale.astype(np.float32), zero_point.astype(np.float32)


def quantize_array(
    array: np.ndarray,
    spec: QuantizationSpec | None = None,
    channel_axis: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``array`` to the integer grid defined by ``spec``.

    Returns ``(q, scale, zero_point)`` where ``q`` holds integers stored as
    float32.  Use :func:`dequantize_array` to map back.
    """
    spec = spec or QuantizationSpec()
    scale, zero_point = _scales_and_zero_points(array, spec, channel_axis)
    if channel_axis is None:
        broadcast_scale = scale.reshape(())
        broadcast_zp = zero_point.reshape(())
    else:
        shape = [1] * array.ndim
        shape[channel_axis] = -1
        broadcast_scale = scale.reshape(shape)
        broadcast_zp = zero_point.reshape(shape)
    q = np.clip(np.round(array / broadcast_scale + broadcast_zp), spec.qmin, spec.qmax)
    return q.astype(np.float32), scale, zero_point


def dequantize_array(
    q: np.ndarray,
    scale: np.ndarray,
    zero_point: np.ndarray,
    channel_axis: int | None = None,
) -> np.ndarray:
    """Map integer values produced by :func:`quantize_array` back to float."""
    if channel_axis is None:
        return ((q - zero_point) * scale).astype(np.float32)
    shape = [1] * q.ndim
    shape[channel_axis] = -1
    return ((q - zero_point.reshape(shape)) * scale.reshape(shape)).astype(np.float32)


def fake_quantize(
    array: np.ndarray, spec: QuantizationSpec, channel_axis: int | None = None
) -> np.ndarray:
    """Round-trip an array through the quantizer (quantize then dequantize)."""
    q, scale, zero_point = quantize_array(array, spec, channel_axis)
    return dequantize_array(q, scale, zero_point, channel_axis)


def quantization_error(array: np.ndarray, spec: QuantizationSpec, channel_axis: int | None = None) -> float:
    """Root-mean-square error introduced by quantizing ``array``."""
    return float(np.sqrt(np.mean((array - fake_quantize(array, spec, channel_axis)) ** 2)))


def activation_qparams(low: float, high: float, bits: int = 8) -> tuple[float, float]:
    """Affine (asymmetric) activation quantization parameters for a range.

    Returns ``(scale, zero_point)`` for the unsigned grid ``[0, 2**bits - 1]``.
    The range is *nudged to include zero* so that the real value ``0.0`` maps
    exactly onto an integer grid point — a requirement for zero-padded integer
    convolutions (the pad value is the zero-point) — and the zero-point is an
    exact integer, so requantization between grids commutes with rounding.
    Both the fake-quant eager path and the integer engine derive their grids
    from this helper, keeping the two bit-compatible.
    """
    low = min(float(low), 0.0)
    high = max(float(high), 0.0)
    qmax = 2**bits - 1
    scale = max((high - low) / qmax, 1e-12)
    zero_point = float(round(-low / scale))
    return scale, zero_point


# --------------------------------------------------------------------------- #
# quantized layer wrappers
# --------------------------------------------------------------------------- #
class _QuantizedWrapper(nn.Module):
    """Shared machinery for the conv / linear fake-quant wrappers.

    Besides writing fake-quantized values back into the wrapped layer's float
    weight (the simulation path), the wrapper stores the true integer
    parameters as buffers:

    ``weight_q``
        The quantized weight on the integer grid, *zero-point centred*
        (``q - zero_point``), stored as ``int8`` whenever the values fit
        (always the case for the default symmetric 8-bit spec) and ``int16``
        otherwise.
    ``weight_scale``
        Per-output-channel scales (``(C_out,)``), or a single-element array
        for per-tensor quantization, such that
        ``wrapped.weight ≈ weight_q * weight_scale``.
    """

    # Fraction of each calibration batch sampled for percentile estimation.
    _SAMPLES_PER_BATCH = 4096

    def __init__(self, wrapped: nn.Module, spec: QuantizationSpec):
        super().__init__()
        self.wrapped = wrapped
        self.spec = spec
        self.observing = True
        self.register_buffer("act_low", np.array([np.inf], dtype=np.float32))
        self.register_buffer("act_high", np.array([-np.inf], dtype=np.float32))
        self._samples: list[np.ndarray] = []
        self._collect_samples = False
        self.weight_error = self._quantize_weights()

    def _quantize_weights(self) -> float:
        weight = self.wrapped.weight
        channel_axis = 0 if self.spec.per_channel else None
        q, scale, zero_point = quantize_array(weight.data, self.spec, channel_axis)
        if channel_axis is None:
            centered = q - zero_point.reshape(())
        else:
            shape = [1] * q.ndim
            shape[channel_axis] = -1
            centered = q - zero_point.reshape(shape)
        int_dtype = np.int8 if np.abs(centered).max(initial=0.0) <= 127 else np.int16
        self.register_buffer("weight_q", centered.astype(int_dtype))
        self.register_buffer("weight_scale", scale.astype(np.float32))
        fq = dequantize_array(q, scale, zero_point, channel_axis)
        error = float(np.sqrt(np.mean((weight.data - fq) ** 2)))
        weight.data[...] = fq
        return error

    def _observe(self, x: np.ndarray) -> None:
        self.act_low[0] = min(self.act_low[0], float(x.min()))
        self.act_high[0] = max(self.act_high[0], float(x.max()))
        if self._collect_samples:
            flat = x.reshape(-1)
            step = max(1, flat.size // self._SAMPLES_PER_BATCH)
            self._samples.append(flat[::step].astype(np.float32, copy=True))

    def _quantize_activation(self, x: nn.Tensor) -> nn.Tensor:
        if self.observing:
            self._observe(x.data)
            return x
        qparams = self.input_qparams()
        if qparams is None:
            return x
        scale, zero_point = qparams
        qmax = 2**self.spec.bits - 1
        q = np.clip(np.round(x.data / scale + zero_point), 0, qmax)
        return nn.Tensor(((q - zero_point) * scale).astype(np.float32))

    def input_qparams(self) -> tuple[float, float] | None:
        """Calibrated ``(scale, zero_point)`` of the input grid, else ``None``."""
        low, high = float(self.act_low[0]), float(self.act_high[0])
        if not np.isfinite(low) or not np.isfinite(high) or high <= low:
            return None
        return activation_qparams(low, high, self.spec.bits)

    @property
    def frozen(self) -> bool:
        """True once calibration has produced a usable activation grid."""
        return not self.observing and self.input_qparams() is not None

    def freeze(self, method: str = "minmax", percentile: float = 99.9) -> None:
        """Stop observing activation ranges and start quantizing activations.

        ``method="percentile"`` replaces the observed min/max range with the
        ``[100 - percentile, percentile]`` percentiles of the values sampled
        during calibration (never *widening* beyond the observed range), which
        keeps one-off outliers from stretching the grid.
        """
        if method not in ("minmax", "percentile"):
            raise ValueError(f"unknown calibration method {method!r}")
        if method == "percentile" and self._samples:
            pooled = np.concatenate(self._samples)
            low, high = np.percentile(pooled, [100.0 - percentile, percentile])
            self.act_low[0] = max(float(low), float(self.act_low[0]))
            self.act_high[0] = min(float(high), float(self.act_high[0]))
        self._samples = []
        self._collect_samples = False
        self.observing = False

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.wrapped(self._quantize_activation(x))


class QuantizedConv2d(_QuantizedWrapper):
    """Conv2d with fake-quantized weights and (after calibration) activations."""

    def __repr__(self) -> str:
        return f"QuantizedConv2d(bits={self.spec.bits}, wrapped={self.wrapped!r})"


class QuantizedLinear(_QuantizedWrapper):
    """Linear layer with fake-quantized weights and activations."""

    def __repr__(self) -> str:
        return f"QuantizedLinear(bits={self.spec.bits}, wrapped={self.wrapped!r})"


@dataclass
class QuantizationReport:
    """Summary of a whole-model post-training quantization pass."""

    bits: int
    quantized_layers: int
    weight_rmse: dict[str, float] = field(default_factory=dict)

    @property
    def mean_weight_rmse(self) -> float:
        if not self.weight_rmse:
            return 0.0
        return float(np.mean(list(self.weight_rmse.values())))

    def summary(self) -> str:
        lines = [f"int{self.bits} quantization of {self.quantized_layers} layers"]
        for name, rmse in self.weight_rmse.items():
            lines.append(f"  {name:<40s} weight RMSE {rmse:.5f}")
        return "\n".join(lines)


def quantize_model(
    model: nn.Module,
    spec: QuantizationSpec | None = None,
    skip: tuple[str, ...] = (),
) -> QuantizationReport:
    """Replace every Conv2d / Linear in ``model`` with a fake-quant wrapper.

    The replacement happens in place via ``set_submodule``.  Layers whose
    dotted path starts with an entry of ``skip`` are left untouched (commonly
    the first conv and the classifier, which are kept in higher precision in
    many deployment flows).
    """
    spec = spec or QuantizationSpec()
    report = QuantizationReport(bits=spec.bits, quantized_layers=0)
    targets = []
    for name, module in model.named_modules():
        if name == "":
            continue
        if isinstance(module, (nn.Conv2d, nn.Linear)) and not any(name.startswith(s) for s in skip):
            targets.append((name, module))
    for name, module in targets:
        wrapper_cls = QuantizedConv2d if isinstance(module, nn.Conv2d) else QuantizedLinear
        wrapper = wrapper_cls(module, spec)
        model.set_submodule(name, wrapper)
        report.weight_rmse[name] = wrapper.weight_error
        report.quantized_layers += 1
    return report


def calibrate(
    model: nn.Module,
    batches,
    freeze: bool = True,
    method: str = "minmax",
    percentile: float = 99.9,
) -> int:
    """Run calibration batches through a quantized model to set activation ranges.

    Parameters
    ----------
    model:
        A model previously processed by :func:`quantize_model`.
    batches:
        Iterable of image arrays (``(N, C, H, W)``) used to observe activation
        ranges.
    freeze:
        Freeze the observers afterwards so subsequent forward passes quantize
        activations.
    method:
        ``"minmax"`` uses the observed extrema; ``"percentile"`` clips the
        range to the ``[100 - percentile, percentile]`` percentiles of sampled
        activation values, which tightens the grid when calibration data
        contains outliers (typical for post-ReLU distributions).
    percentile:
        Upper percentile used by the percentile estimator.

    Returns the number of calibration batches processed.
    """
    if method not in ("minmax", "percentile"):
        raise ValueError(f"unknown calibration method {method!r}")
    wrappers = [m for _, m in model.named_modules() if isinstance(m, _QuantizedWrapper)]
    if not wrappers:
        raise ValueError("model has no quantized layers; call quantize_model first")
    for wrapper in wrappers:
        wrapper.observing = True
        wrapper._collect_samples = method == "percentile"
        wrapper._samples = []
    was_training = model.training
    model.eval()
    count = 0
    with nn.no_grad():
        for batch in batches:
            model(nn.Tensor(np.asarray(batch, dtype=np.float32)))
            count += 1
    model.train(was_training)
    if freeze:
        for wrapper in wrappers:
            wrapper.freeze(method=method, percentile=percentile)
    return count
