"""Model-compression substrate: pruning and quantization.

The paper positions NetBooster as *orthogonal* to the usual TNN compression
toolbox (pruning, quantization, dynamic inference — Sec. II-A).  This
subpackage implements the two standard techniques so that the orthogonality
claim can be exercised end to end: a NetBooster-trained TNN can be pruned or
quantized afterwards exactly like a vanilla-trained one, and the accuracy gap
between the two training schemes survives compression.
"""

from .pruning import (
    MagnitudePruner,
    PruningReport,
    channel_importance,
    prune_channels_by_slimming,
    sparsity,
)
from .quantization import (
    QuantizationReport,
    QuantizationSpec,
    QuantizedConv2d,
    QuantizedLinear,
    activation_qparams,
    calibrate,
    dequantize_array,
    quantize_array,
    quantize_model,
)

__all__ = [
    "MagnitudePruner",
    "PruningReport",
    "sparsity",
    "channel_importance",
    "prune_channels_by_slimming",
    "QuantizationSpec",
    "QuantizationReport",
    "quantize_array",
    "dequantize_array",
    "activation_qparams",
    "QuantizedConv2d",
    "QuantizedLinear",
    "quantize_model",
    "calibrate",
]
