"""Weight pruning: unstructured magnitude pruning and BN-scale channel pruning.

Two classic techniques are provided:

* :class:`MagnitudePruner` — unstructured pruning that zeroes the
  smallest-magnitude weights (globally or per layer) and keeps binary masks so
  the sparsity pattern survives further finetuning steps.
* :func:`prune_channels_by_slimming` — structured channel pruning in the style
  of network slimming (Liu et al., 2017, the paper's reference [19]): channels
  are ranked by the absolute value of their BatchNorm scale and the weakest
  ones are zeroed out together with all weights that produce them.

Both operate in place on the NumPy parameters and report what they removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn

__all__ = [
    "PruningReport",
    "MagnitudePruner",
    "sparsity",
    "channel_importance",
    "prune_channels_by_slimming",
]


def sparsity(model: nn.Module, prunable_only: bool = True) -> float:
    """Fraction of zero-valued weights in the model's conv / linear layers.

    With ``prunable_only`` false, every parameter (including BN affine terms)
    is counted.
    """
    zero = 0
    total = 0
    for module in _iter_modules(model):
        if prunable_only and not isinstance(module, (nn.Conv2d, nn.Linear)):
            continue
        weight = getattr(module, "weight", None)
        if weight is None or not isinstance(weight, nn.Parameter):
            continue
        zero += int(np.count_nonzero(weight.data == 0.0))
        total += weight.data.size
    return zero / total if total else 0.0


def _iter_modules(model: nn.Module):
    for _, module in model.named_modules():
        yield module


@dataclass
class PruningReport:
    """Summary of a pruning pass."""

    target_sparsity: float
    achieved_sparsity: float
    pruned_weights: int
    total_weights: int
    per_layer: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"target sparsity   : {self.target_sparsity:.2%}",
            f"achieved sparsity : {self.achieved_sparsity:.2%}",
            f"pruned weights    : {self.pruned_weights} / {self.total_weights}",
        ]
        for name, layer_sparsity in self.per_layer.items():
            lines.append(f"  {name:<40s} {layer_sparsity:.2%}")
        return "\n".join(lines)


class MagnitudePruner:
    """Unstructured magnitude pruning with persistent masks.

    Parameters
    ----------
    model:
        The network to prune.  Only ``Conv2d`` and ``Linear`` weights are
        considered prunable; biases and normalisation parameters are left
        untouched.
    scope:
        ``"global"`` ranks all prunable weights together (layers with small
        weights lose more); ``"layer"`` applies the same sparsity to every
        layer independently.
    """

    def __init__(self, model: nn.Module, scope: str = "global"):
        if scope not in ("global", "layer"):
            raise ValueError(f"unknown pruning scope {scope!r}")
        self.model = model
        self.scope = scope
        self.masks: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def _prunable(self) -> list[tuple[str, nn.Parameter]]:
        layers = []
        for name, module in self.model.named_modules():
            if isinstance(module, (nn.Conv2d, nn.Linear)):
                layers.append((f"{name}.weight" if name else "weight", module.weight))
        return layers

    def prune(self, target_sparsity: float) -> PruningReport:
        """Zero the smallest-magnitude weights so the target sparsity is reached."""
        if not 0.0 <= target_sparsity < 1.0:
            raise ValueError("target_sparsity must lie in [0, 1)")
        layers = self._prunable()
        if not layers:
            raise ValueError("model contains no prunable Conv2d/Linear layers")

        if self.scope == "global":
            magnitudes = np.concatenate([np.abs(param.data).ravel() for _, param in layers])
            if target_sparsity > 0.0:
                threshold = np.quantile(magnitudes, target_sparsity)
            else:
                threshold = -1.0
            for name, param in layers:
                self.masks[name] = (np.abs(param.data) > threshold).astype(param.data.dtype)
        else:
            for name, param in layers:
                if target_sparsity > 0.0:
                    threshold = np.quantile(np.abs(param.data), target_sparsity)
                else:
                    threshold = -1.0
                self.masks[name] = (np.abs(param.data) > threshold).astype(param.data.dtype)

        self.apply_masks()

        pruned = 0
        total = 0
        per_layer = {}
        for name, param in layers:
            layer_zero = int(np.count_nonzero(param.data == 0.0))
            pruned += layer_zero
            total += param.data.size
            per_layer[name] = layer_zero / param.data.size
        return PruningReport(
            target_sparsity=target_sparsity,
            achieved_sparsity=pruned / total,
            pruned_weights=pruned,
            total_weights=total,
            per_layer=per_layer,
        )

    def apply_masks(self) -> None:
        """Re-impose the stored masks (call after each finetuning step)."""
        for name, param in self._prunable():
            mask = self.masks.get(name)
            if mask is not None:
                param.data *= mask

    def mask_gradients(self) -> None:
        """Zero the gradients of pruned weights so they stay pruned."""
        for name, param in self._prunable():
            mask = self.masks.get(name)
            if mask is not None and param.grad is not None:
                param.grad *= mask


# --------------------------------------------------------------------------- #
# structured channel pruning (network slimming)
# --------------------------------------------------------------------------- #
def channel_importance(bn: nn.BatchNorm2d) -> np.ndarray:
    """Per-channel importance score: the absolute BatchNorm scale."""
    return np.abs(bn.weight.data)


def prune_channels_by_slimming(
    model: nn.Module,
    prune_ratio: float,
) -> PruningReport:
    """Network-slimming-style channel pruning.

    Every ``Conv2d -> BatchNorm2d`` pair found inside the model is inspected;
    the channels whose BN scale magnitude falls in the lowest ``prune_ratio``
    quantile *of that layer* are zeroed out (conv output filter, BN scale and
    shift).  The channels are zeroed rather than physically removed so the
    network structure — and therefore the contraction machinery — is
    unaffected; the report records how much of each layer could be removed by
    a structural rewrite.
    """
    if not 0.0 <= prune_ratio < 1.0:
        raise ValueError("prune_ratio must lie in [0, 1)")

    pruned = 0
    total = 0
    per_layer: dict[str, float] = {}
    for name, module in model.named_modules():
        pairs = _conv_bn_pairs(module)
        for conv_name, conv, bn in pairs:
            scores = channel_importance(bn)
            if prune_ratio > 0.0:
                threshold = np.quantile(scores, prune_ratio)
                drop = scores <= threshold
                # Never remove every channel of a layer.
                if drop.all():
                    drop[np.argmax(scores)] = False
            else:
                drop = np.zeros_like(scores, dtype=bool)
            conv.weight.data[drop, ...] = 0.0
            if conv.bias is not None:
                conv.bias.data[drop] = 0.0
            bn.weight.data[drop] = 0.0
            bn.bias.data[drop] = 0.0
            full_name = f"{name}.{conv_name}" if name else conv_name
            per_layer[full_name] = float(drop.mean())
            pruned += int(drop.sum()) * int(np.prod(conv.weight.data.shape[1:]))
            total += conv.weight.data.size
    if not per_layer:
        raise ValueError("model contains no Conv2d -> BatchNorm2d pairs to prune")
    return PruningReport(
        target_sparsity=prune_ratio,
        achieved_sparsity=pruned / total if total else 0.0,
        pruned_weights=pruned,
        total_weights=total,
        per_layer=per_layer,
    )


def _conv_bn_pairs(module: nn.Module) -> list[tuple[str, nn.Conv2d, nn.BatchNorm2d]]:
    """Direct ``conv`` / ``bn`` children that form a pair inside one module."""
    children = module.named_children()
    pairs = []
    for index, (child_name, child) in enumerate(children):
        if isinstance(child, nn.Conv2d) and index + 1 < len(children):
            next_name, next_child = children[index + 1]
            if isinstance(next_child, nn.BatchNorm2d):
                if next_child.num_features == child.out_channels:
                    pairs.append((child_name, child, next_child))
    return pairs
