"""NetBooster core: Network Expansion, Progressive Linearization Tuning, contraction."""

from .alpha_schedules import (
    PLT_SCHEDULES,
    CosinePLTSchedule,
    StepPLTSchedule,
    make_plt_schedule,
)
from .analysis import (
    EquivalenceReport,
    ExpansionSummary,
    alpha_profile,
    expansion_summary,
    extract_features,
    feature_inheritance_score,
    functional_equivalence,
    linear_cka,
)
from .contraction import (
    add_identity_to_kernel,
    contract_block,
    contract_network,
    densify_grouped_kernel,
    fuse_conv_bn,
    merge_sequential_kernels,
)
from .expansion import (
    EXPANDED_BLOCK_TYPES,
    ExpandedBasicBlock,
    ExpandedBlock,
    ExpandedBottleneck,
    ExpandedInvertedResidual,
    ExpansionConfig,
    ExpansionRecord,
    expand_network,
    find_expandable_convs,
    select_expansion_sites,
)
from .netbooster import NetBooster, NetBoosterConfig, NetBoosterResult
from .plt import PLTSchedule, collect_decayable_activations

__all__ = [
    "ExpansionConfig",
    "ExpansionRecord",
    "ExpandedBlock",
    "ExpandedInvertedResidual",
    "ExpandedBasicBlock",
    "ExpandedBottleneck",
    "EXPANDED_BLOCK_TYPES",
    "expand_network",
    "find_expandable_convs",
    "select_expansion_sites",
    "PLTSchedule",
    "collect_decayable_activations",
    "fuse_conv_bn",
    "densify_grouped_kernel",
    "merge_sequential_kernels",
    "add_identity_to_kernel",
    "contract_block",
    "contract_network",
    "NetBooster",
    "NetBoosterConfig",
    "NetBoosterResult",
    "CosinePLTSchedule",
    "StepPLTSchedule",
    "PLT_SCHEDULES",
    "make_plt_schedule",
    "EquivalenceReport",
    "ExpansionSummary",
    "functional_equivalence",
    "expansion_summary",
    "alpha_profile",
    "extract_features",
    "linear_cka",
    "feature_inheritance_score",
]
