"""Step 2 of NetBooster: Progressive Linearization Tuning (paper Sec. III-D).

PLT reverts the deep giant to the original TNN while preserving the learned
features.  The non-linear activations inside each expanded block are replaced
at construction time by decayable activations ``y = max(alpha*x, x)``
(paper Eq. 2); this module provides the schedule that raises ``alpha`` from 0
to 1 *uniformly per iteration* over ``Ed`` epochs of finetuning on the target
dataset, after which the blocks are exactly linear and can be contracted.
"""

from __future__ import annotations

from .. import nn
from .expansion import ExpandedBlock

__all__ = ["collect_decayable_activations", "PLTSchedule"]


def collect_decayable_activations(model: nn.Module, expanded_only: bool = True) -> list[nn.DecayableReLU]:
    """Gather the decayable activations to be linearised.

    Parameters
    ----------
    expanded_only:
        When true (default), only activations inside :class:`ExpandedBlock`
        instances are collected — the original TNN's activations are never
        touched, exactly as in the paper (only the *expanded* non-linearities
        are removed).
    """
    activations: list[nn.DecayableReLU] = []
    if expanded_only:
        for _, module in model.named_modules():
            if isinstance(module, ExpandedBlock):
                activations.extend(module.decayable_activations())
    else:
        for _, module in model.named_modules():
            if isinstance(module, nn.DecayableReLU):
                activations.append(module)
    # De-duplicate while preserving order (nested traversal can repeat).
    unique: list[nn.DecayableReLU] = []
    seen: set[int] = set()
    for act in activations:
        if id(act) not in seen:
            seen.add(id(act))
            unique.append(act)
    return unique


class PLTSchedule:
    """Linear annealing of the activation slopes over a fixed number of steps.

    One *step* is one training iteration; the paper increases ``alpha``
    uniformly in each iteration so that it reaches 1 after ``Ed`` epochs.

    Parameters
    ----------
    model:
        The deep giant whose expanded blocks should be linearised.
    total_steps:
        Number of iterations over which ``alpha`` goes from
        ``initial_alpha`` to 1.
    initial_alpha:
        Starting slope (0 keeps the first step an exact ReLU).

    Examples
    --------
    >>> schedule = PLTSchedule(giant, total_steps=len(loader) * decay_epochs)
    >>> for epoch in range(epochs):
    ...     for images, labels in loader:
    ...         train_step(...)
    ...         schedule.step()
    >>> schedule.finished
    True
    """

    def __init__(self, model: nn.Module, total_steps: int, initial_alpha: float = 0.0):
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if not 0.0 <= initial_alpha < 1.0:
            raise ValueError("initial_alpha must be in [0, 1)")
        self.activations = collect_decayable_activations(model)
        self.total_steps = int(total_steps)
        self.initial_alpha = float(initial_alpha)
        self.current_step = 0
        self.set_alpha(initial_alpha)

    @property
    def alpha(self) -> float:
        """Current linearisation factor shared by all tracked activations."""
        progress = min(self.current_step / self.total_steps, 1.0)
        return self.initial_alpha + (1.0 - self.initial_alpha) * progress

    @property
    def finished(self) -> bool:
        """True once every tracked activation is an identity mapping."""
        return self.current_step >= self.total_steps

    def set_alpha(self, alpha: float) -> None:
        """Force a specific alpha on all tracked activations."""
        for activation in self.activations:
            activation.set_alpha(alpha)

    def step(self) -> float:
        """Advance one iteration and update all activation slopes.

        Returns the new alpha value.
        """
        self.current_step = min(self.current_step + 1, self.total_steps)
        alpha = self.alpha
        self.set_alpha(alpha)
        return alpha

    def finalize(self) -> None:
        """Jump straight to full linearisation (used before contraction)."""
        self.current_step = self.total_steps
        self.set_alpha(1.0)
