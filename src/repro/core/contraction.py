"""Step 2b of NetBooster: contracting expanded blocks back to single layers.

Once PLT has removed the non-linearities, an expanded block is a chain of
convolutions, BatchNorms and (optionally) an identity shortcut — all linear
operators — so it can be collapsed into one convolution:

* BatchNorm layers are folded into the preceding convolution (standard
  inference-time fusion);
* sequential convolutions are merged with the closed-form kernel combination
  of paper Eq. 3–4 (implemented for arbitrary kernel sizes and grouped/
  depthwise middle layers);
* a residual shortcut adds an identity kernel to the merged weight.

The result is a single ``Conv2d`` with exactly the shape of the layer that was
expanded, so the contracted network has the original TNN's structure and
inference cost.  When the layer is followed by a BatchNorm (the usual
Conv→BN→Act unit), the merged bias is folded into that BatchNorm's running
mean so the convolution can stay bias-free like the original.
"""

from __future__ import annotations

import copy

import numpy as np

from .. import nn
from .expansion import ExpandedBlock, ExpansionRecord

__all__ = [
    "fuse_conv_bn",
    "densify_grouped_kernel",
    "merge_sequential_kernels",
    "add_identity_to_kernel",
    "contract_block",
    "contract_network",
]


def fuse_conv_bn(
    weight: np.ndarray,
    bias: np.ndarray | None,
    bn: nn.BatchNorm2d,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a BatchNorm (eval-mode statistics) into the preceding convolution.

    Returns the fused ``(weight, bias)`` such that
    ``conv(x, fused) == bn(conv(x, original))`` when the BatchNorm uses its
    running statistics.
    """
    gamma = bn.weight.data
    beta = bn.bias.data
    mean = np.asarray(bn.running_mean)
    var = np.asarray(bn.running_var)
    scale = gamma / np.sqrt(var + bn.eps)

    fused_weight = weight * scale.reshape(-1, 1, 1, 1)
    base_bias = bias if bias is not None else np.zeros(weight.shape[0], dtype=weight.dtype)
    fused_bias = (base_bias - mean) * scale + beta
    return fused_weight.astype(np.float32), fused_bias.astype(np.float32)


def densify_grouped_kernel(weight: np.ndarray, groups: int) -> np.ndarray:
    """Expand a grouped convolution kernel to an equivalent dense kernel.

    A grouped kernel of shape ``(C_out, C_in/groups, kh, kw)`` becomes a dense
    ``(C_out, C_in, kh, kw)`` kernel with zeros outside each group's block,
    which lets the generic merge formula treat depthwise layers uniformly.
    """
    if groups == 1:
        return weight
    c_out, c_in_g, kh, kw = weight.shape
    c_in = c_in_g * groups
    out_per_group = c_out // groups
    dense = np.zeros((c_out, c_in, kh, kw), dtype=weight.dtype)
    for g in range(groups):
        out_slice = slice(g * out_per_group, (g + 1) * out_per_group)
        in_slice = slice(g * c_in_g, (g + 1) * c_in_g)
        dense[out_slice, in_slice] = weight[out_slice]
    return dense


def merge_sequential_kernels(
    weight1: np.ndarray,
    bias1: np.ndarray | None,
    weight2: np.ndarray,
    bias2: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sequential convolutions into one (paper Eq. 3–4).

    ``y = conv(conv(x, W1) + b1, W2) + b2`` is replaced by a single
    convolution with kernel size ``k1 + k2 - 1``.  Both kernels are dense
    (use :func:`densify_grouped_kernel` first for grouped layers); the second
    convolution must have stride 1.  The merge (of both the kernel and the
    bias) is exact as long as the second convolution reads no zero-padded
    positions of the intermediate feature map, i.e. it uses padding 0 — always
    true for the 1×1 chains produced by Network Expansion.

    Returns
    -------
    (weight, bias):
        ``weight`` has shape ``(C3, C1, k1 + k2 - 1, k1 + k2 - 1)`` and
        ``bias`` shape ``(C3,)``.
    """
    c2a, c1, k1, _ = weight1.shape
    c3, c2b, k2, _ = weight2.shape
    if c2a != c2b:
        raise ValueError(f"channel mismatch when merging kernels: {c2a} vs {c2b}")

    k = k1 + k2 - 1
    # Merged[o, m, w] = sum_n (W1[n, m] * W2[o, n])(w)   (full 2-D convolution)
    merged = np.zeros((c3, c1, k, k), dtype=np.float64)
    for di in range(k2):
        for dj in range(k2):
            # W2 tap at (di, dj) shifts W1 by (di, dj) in the merged kernel.
            contribution = np.einsum(
                "on,nmij->omij", weight2[:, :, di, dj].astype(np.float64), weight1.astype(np.float64)
            )
            merged[:, :, di : di + k1, dj : dj + k1] += contribution

    bias1 = bias1 if bias1 is not None else np.zeros(c2a, dtype=np.float64)
    bias2 = bias2 if bias2 is not None else np.zeros(c3, dtype=np.float64)
    merged_bias = weight2.astype(np.float64).sum(axis=(2, 3)) @ bias1.astype(np.float64) + bias2.astype(np.float64)
    return merged.astype(np.float32), merged_bias.astype(np.float32)


def add_identity_to_kernel(weight: np.ndarray) -> np.ndarray:
    """Add an identity (residual shortcut) to a square dense kernel in place.

    Requires equal input/output channels and an odd kernel size so that the
    identity can be placed at the spatial centre.
    """
    c_out, c_in, kh, kw = weight.shape
    if c_out != c_in:
        raise ValueError("identity shortcut requires matching channel counts")
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("identity shortcut requires odd kernel sizes")
    out = weight.copy()
    centre_h, centre_w = kh // 2, kw // 2
    out[np.arange(c_out), np.arange(c_in), centre_h, centre_w] += 1.0
    return out


def contract_block(block: ExpandedBlock, require_linear: bool = True) -> nn.Conv2d:
    """Collapse a fully linearised expanded block into a single convolution.

    Parameters
    ----------
    block:
        The expanded block produced by :func:`repro.core.expansion.expand_network`.
    require_linear:
        Raise if any internal activation has not fully decayed (``alpha < 1``).
        Contracting a non-linear block would change the function it computes.

    Returns
    -------
    A ``Conv2d`` (with bias) computing the same function as the block in
    evaluation mode.
    """
    if require_linear and not block.is_linear:
        alphas = [act.alpha for act in block.decayable_activations()]
        raise RuntimeError(
            f"cannot contract: activations are not fully linearised (alphas={alphas}); "
            "run PLT to completion or call PLTSchedule.finalize() first"
        )

    merged_weight: np.ndarray | None = None
    merged_bias: np.ndarray | None = None
    stride = 1
    for index, (conv, bn) in enumerate(block.linear_chain()):
        weight = conv.weight.data.copy()
        bias = conv.bias.data.copy() if conv.bias is not None else None
        weight = densify_grouped_kernel(weight, conv.groups)
        if bn is not None:
            weight, bias = fuse_conv_bn(weight, bias, bn)
        if index == 0:
            merged_weight, merged_bias = weight, (
                bias if bias is not None else np.zeros(weight.shape[0], dtype=np.float32)
            )
            stride = conv.stride
        else:
            if conv.stride != 1:
                raise ValueError("only the first convolution of an expanded block may have stride > 1")
            merged_weight, merged_bias = merge_sequential_kernels(merged_weight, merged_bias, weight, bias)

    assert merged_weight is not None and merged_bias is not None
    if block.use_residual:
        merged_weight = add_identity_to_kernel(merged_weight)

    kernel_size = merged_weight.shape[-1]
    contracted = nn.Conv2d(
        block.in_channels,
        block.out_channels,
        kernel_size,
        stride=stride,
        padding=(kernel_size - 1) // 2 if kernel_size > 1 else 0,
        bias=True,
    )
    contracted.weight.data[...] = merged_weight
    contracted.bias.data[...] = merged_bias
    return contracted


def _fold_bias_into_following_bn(parent: nn.Module, conv_name: str, conv: nn.Conv2d) -> bool:
    """Fold the contracted convolution's bias into the BatchNorm that follows it.

    In the Conv→BN→Act units the original convolution had no bias (the BN
    supplies the shift), so to restore the exact original structure the merged
    bias is absorbed by shifting the BN's running mean:
    ``BN(x + b) == BN'(x)`` with ``running_mean' = running_mean - b``.
    During any subsequent training the batch statistics re-absorb a constant
    channel bias anyway, so this is lossless.
    """
    bn = getattr(parent, "bn", None)
    if not isinstance(bn, nn.BatchNorm2d) or conv.bias is None:
        return False
    if bn.num_features != conv.out_channels:
        return False
    bn.running_mean[...] = np.asarray(bn.running_mean) - conv.bias.data
    replacement = nn.Conv2d(
        conv.in_channels,
        conv.out_channels,
        conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        groups=conv.groups,
        bias=False,
    )
    replacement.weight.data[...] = conv.weight.data
    setattr(parent, conv_name, replacement)
    return True


def contract_network(
    model: nn.Module,
    records: list[ExpansionRecord],
    inplace: bool = False,
    fold_bias: bool = True,
    require_linear: bool = True,
) -> nn.Module:
    """Contract every expanded block of a deep giant back to its original layer.

    Parameters
    ----------
    model:
        The trained deep giant (after PLT has linearised the expanded blocks).
    records:
        The expansion records returned by
        :func:`repro.core.expansion.expand_network`.
    fold_bias:
        Fold the merged bias into the following BatchNorm where possible so
        the contracted convolution is bias-free like the original layer.

    Returns
    -------
    A network with exactly the original TNN structure whose weights inherit
    the giant's learned features.
    """
    contracted_model = model if inplace else copy.deepcopy(model)
    for record in records:
        block = contracted_model.get_submodule(record.path)
        if not isinstance(block, ExpandedBlock):
            raise TypeError(f"module at {record.path!r} is not an ExpandedBlock (already contracted?)")
        conv = contract_block(block, require_linear=require_linear)
        contracted_model.set_submodule(record.path, conv)
        if fold_bias:
            *parent_parts, leaf = record.path.split(".")
            parent = contracted_model.get_submodule(".".join(parent_parts))
            _fold_bias_into_following_bn(parent, leaf, conv)
    return contracted_model
