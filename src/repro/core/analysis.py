"""Analysis and verification utilities for the expansion-then-contraction flow.

These helpers answer the three questions a reviewer would ask about a
NetBooster run:

* **Did contraction preserve the function?** — :func:`functional_equivalence`
  compares the linearised deep giant against the contracted TNN on random
  probes and reports the largest output discrepancy.
* **What did expansion actually add?** — :func:`expansion_summary` tabulates
  the expanded sites and the extra capacity (parameters / FLOPs) the deep
  giant carries during training.
* **Were the giant's features inherited?** — :func:`extract_features` captures
  penultimate representations and :func:`linear_cka` measures their similarity
  (Kornblith et al., 2019), quantifying the "knowledge inheritance" the paper
  argues for qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..eval.complexity import count_complexity
from .expansion import ExpandedBlock, ExpansionRecord
from .plt import collect_decayable_activations

__all__ = [
    "functional_equivalence",
    "EquivalenceReport",
    "expansion_summary",
    "ExpansionSummary",
    "alpha_profile",
    "extract_features",
    "linear_cka",
    "feature_inheritance_score",
]


@dataclass
class EquivalenceReport:
    """Output discrepancy between two models on random probe inputs."""

    max_abs_error: float
    mean_abs_error: float
    output_scale: float
    num_probes: int

    @property
    def max_relative_error(self) -> float:
        return self.max_abs_error / max(self.output_scale, 1e-12)

    def matches(self, tolerance: float = 1e-3) -> bool:
        """True when the relative discrepancy is below ``tolerance``."""
        return self.max_relative_error <= tolerance


def functional_equivalence(
    model_a: nn.Module,
    model_b: nn.Module,
    input_shape: tuple[int, int, int],
    num_probes: int = 4,
    batch_size: int = 2,
    seed: int = 0,
) -> EquivalenceReport:
    """Compare two models' outputs on random probe batches.

    Intended for the pair (linearised deep giant, contracted TNN): after PLT
    has driven every expanded activation to the identity, the closed-form
    contraction (paper Eq. 3-4) must leave the network function unchanged up
    to floating-point error.
    """
    rng = np.random.default_rng(seed)
    max_abs = 0.0
    sum_abs = 0.0
    count = 0
    scale = 0.0
    was_training_a, was_training_b = model_a.training, model_b.training
    model_a.eval()
    model_b.eval()
    with nn.no_grad():
        for _ in range(num_probes):
            probe = nn.Tensor(rng.normal(size=(batch_size,) + tuple(input_shape)).astype(np.float32))
            out_a = model_a(probe).numpy()
            out_b = model_b(probe).numpy()
            diff = np.abs(out_a - out_b)
            max_abs = max(max_abs, float(diff.max()))
            sum_abs += float(diff.sum())
            count += diff.size
            scale = max(scale, float(np.abs(out_a).max()))
    model_a.train(was_training_a)
    model_b.train(was_training_b)
    return EquivalenceReport(
        max_abs_error=max_abs,
        mean_abs_error=sum_abs / max(count, 1),
        output_scale=scale,
        num_probes=num_probes,
    )


@dataclass
class ExpansionSummary:
    """Capacity added by Network Expansion, layer by layer."""

    expanded_sites: list[str]
    original_params: int
    giant_params: int
    original_flops: int
    giant_flops: int

    @property
    def param_ratio(self) -> float:
        return self.giant_params / max(self.original_params, 1)

    @property
    def flops_ratio(self) -> float:
        return self.giant_flops / max(self.original_flops, 1)

    def summary(self) -> str:
        lines = [
            f"expanded sites : {len(self.expanded_sites)}",
            f"parameters     : {self.original_params:,} -> {self.giant_params:,} (x{self.param_ratio:.2f})",
            f"train FLOPs    : {self.original_flops:,} -> {self.giant_flops:,} (x{self.flops_ratio:.2f})",
        ]
        lines.extend(f"  {site}" for site in self.expanded_sites)
        return "\n".join(lines)


def expansion_summary(
    original: nn.Module,
    giant: nn.Module,
    records: list[ExpansionRecord],
    input_shape: tuple[int, int, int],
) -> ExpansionSummary:
    """Quantify the training-time capacity added by the expansion step."""
    original_report = count_complexity(original, input_shape)
    giant_report = count_complexity(giant, input_shape)
    return ExpansionSummary(
        expanded_sites=[record.path for record in records],
        original_params=original_report.params,
        giant_params=giant_report.params,
        original_flops=original_report.flops,
        giant_flops=giant_report.flops,
    )


def alpha_profile(model: nn.Module) -> dict[str, float]:
    """Current linearisation factor of every expanded block (averaged per block)."""
    profile: dict[str, float] = {}
    for name, module in model.named_modules():
        if isinstance(module, ExpandedBlock):
            activations = module.decayable_activations()
            if activations:
                profile[name] = float(np.mean([act.alpha for act in activations]))
    if not profile:
        # No expanded blocks: fall back to any decayable activations present.
        activations = collect_decayable_activations(model, expanded_only=False)
        if activations:
            profile["<model>"] = float(np.mean([act.alpha for act in activations]))
    return profile


def extract_features(
    model: nn.Module,
    images: np.ndarray,
    layer_path: str | None = None,
    batch_size: int = 64,
) -> np.ndarray:
    """Capture intermediate representations for a batch of images.

    Parameters
    ----------
    layer_path:
        Dotted path of the module whose *output* should be captured.  When
        omitted, the *input* to the model's final :class:`~repro.nn.Linear`
        layer is captured instead — i.e. the penultimate (pre-classifier)
        features, which is what transferability analyses care about.
    """
    images = np.asarray(images, dtype=np.float32)
    captured: list[np.ndarray] = []

    if layer_path is not None:
        target = model.get_submodule(layer_path)
        capture_input = False
    else:
        linear_layers = [m for _, m in model.named_modules() if isinstance(m, nn.Linear)]
        if not linear_layers:
            raise ValueError("model has no Linear layer; pass layer_path explicitly")
        target = linear_layers[-1]
        capture_input = True

    original_forward = target.forward

    def wrapped(x, *args, **kwargs):
        out = original_forward(x, *args, **kwargs)
        grabbed = x if capture_input else out
        captured.append(np.asarray(grabbed.data if isinstance(grabbed, nn.Tensor) else grabbed))
        return out

    target.forward = wrapped
    was_training = model.training
    model.eval()
    try:
        with nn.no_grad():
            for start in range(0, len(images), batch_size):
                model(nn.Tensor(images[start : start + batch_size]))
    finally:
        target.forward = original_forward
        model.train(was_training)
    features = np.concatenate(captured, axis=0)
    return features.reshape(len(images), -1)


def linear_cka(features_a: np.ndarray, features_b: np.ndarray) -> float:
    """Linear centred kernel alignment between two feature matrices.

    Both inputs are ``(N, D)`` matrices over the *same* N examples (the
    feature dimensions may differ).  Returns a similarity in ``[0, 1]``;
    identical representations (up to isotropic scaling and orthogonal
    transforms) give 1.
    """
    a = np.asarray(features_a, dtype=np.float64)
    b = np.asarray(features_b, dtype=np.float64)
    if a.shape[0] != b.shape[0]:
        raise ValueError("feature matrices must cover the same examples")
    a = a - a.mean(axis=0, keepdims=True)
    b = b - b.mean(axis=0, keepdims=True)
    cross = np.linalg.norm(a.T @ b, ord="fro") ** 2
    norm_a = np.linalg.norm(a.T @ a, ord="fro")
    norm_b = np.linalg.norm(b.T @ b, ord="fro")
    denominator = norm_a * norm_b
    if denominator <= 1e-24:
        return 0.0
    return float(cross / denominator)


def feature_inheritance_score(
    giant: nn.Module,
    contracted: nn.Module,
    images: np.ndarray,
    layer_path: str | None = None,
) -> float:
    """CKA similarity between the giant's and the contracted TNN's features.

    A high score indicates that the contraction step preserved the deep
    giant's learned representation — the quantitative version of the paper's
    "standing on the shoulders of deep giants" claim.
    """
    giant_features = extract_features(giant, images, layer_path)
    contracted_features = extract_features(contracted, images, layer_path)
    return linear_cka(giant_features, contracted_features)
