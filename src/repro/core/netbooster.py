"""The NetBooster pipeline: expand → pretrain → PLT finetune → contract.

This module ties the three mechanisms of the framework together behind one
facade so that examples and benchmarks read like the paper:

1. :meth:`NetBooster.build_giant` — Network Expansion of the original TNN;
2. :meth:`NetBooster.pretrain_giant` — train the deep giant on the large
   dataset (it has enough capacity to learn complex features, easing
   Constraint 1);
3. :meth:`NetBooster.plt_finetune` — finetune on the target dataset while the
   PLT schedule decays the expanded non-linearities over the first
   ``Ed`` epochs;
4. :meth:`NetBooster.contract` — collapse the (now linear) expanded blocks
   back into the original layers, restoring the TNN structure while keeping
   the learned features.

When the target dataset *is* the large dataset (the Table I setting), call
:meth:`NetBooster.run` without downstream data: PLT then runs on the
pretraining corpus.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from .. import nn
from ..data.datasets import ClassificationDataset
from ..data.transforms import Transform
from ..train.trainer import LossComputer, Trainer, TrainingHistory, evaluate
from ..train.transfer import reset_classifier
from ..utils.config import ExperimentConfig
from .contraction import contract_network
from .expansion import ExpansionConfig, ExpansionRecord, expand_network
from .plt import PLTSchedule

__all__ = ["NetBoosterConfig", "NetBoosterResult", "NetBooster"]


@dataclass
class NetBoosterConfig:
    """Full configuration of a NetBooster run.

    Attributes
    ----------
    expansion:
        Network Expansion settings (block type, placement, ratio).
    pretrain:
        Hyper-parameters for training the deep giant on the large corpus.
    finetune:
        Hyper-parameters for the PLT phase on the target dataset.
    plt_decay_fraction:
        Fraction of the finetuning epochs over which the activation slopes
        decay from 0 to 1 (``Ed`` in the paper; 40/150 for ImageNet, 20 % for
        downstream tasks).
    """

    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    pretrain: ExperimentConfig = field(default_factory=ExperimentConfig)
    finetune: ExperimentConfig = field(default_factory=lambda: ExperimentConfig(epochs=8, lr=0.02))
    plt_decay_fraction: float = 0.25


@dataclass
class NetBoosterResult:
    """Everything produced by a full NetBooster run."""

    model: nn.Module
    giant: nn.Module
    records: list[ExpansionRecord]
    pretrain_history: TrainingHistory
    finetune_history: TrainingHistory
    final_accuracy: float
    giant_accuracy: float


class NetBooster:
    """Facade orchestrating the expansion-then-contraction training strategy."""

    def __init__(self, config: NetBoosterConfig | None = None):
        self.config = config or NetBoosterConfig()

    # ------------------------------------------------------------------ #
    # individual steps
    # ------------------------------------------------------------------ #
    def build_giant(self, model: nn.Module) -> tuple[nn.Module, list[ExpansionRecord]]:
        """Step 1 — Network Expansion (the original model is left untouched)."""
        return expand_network(model, self.config.expansion)

    def pretrain_giant(
        self,
        giant: nn.Module,
        train_set: ClassificationDataset,
        val_set: ClassificationDataset | None = None,
        train_transform: Transform | None = None,
        loss_computer: LossComputer | None = None,
    ) -> TrainingHistory:
        """Train the deep giant on the large-scale dataset."""
        trainer = Trainer(
            giant,
            self.config.pretrain,
            loss_computer=loss_computer,
            train_transform=train_transform,
        )
        return trainer.fit(train_set, val_set)

    def plt_finetune(
        self,
        giant: nn.Module,
        train_set: ClassificationDataset,
        val_set: ClassificationDataset | None = None,
        new_num_classes: int | None = None,
        loss_computer: LossComputer | None = None,
        decay_fraction: float | None = None,
    ) -> tuple[TrainingHistory, PLTSchedule]:
        """Step 2 — Progressive Linearization Tuning on the target dataset.

        The activation slopes decay uniformly per iteration during the first
        ``decay_fraction`` of the finetuning epochs and the remaining epochs
        tune the (now linear) giant, exactly as in the paper.
        """
        config = self.config.finetune
        decay_fraction = decay_fraction if decay_fraction is not None else self.config.plt_decay_fraction
        if new_num_classes is not None:
            reset_classifier(giant, new_num_classes)

        iterations_per_epoch = max(
            (len(train_set) + config.batch_size - 1) // config.batch_size, 1
        )
        decay_epochs = max(int(round(config.epochs * decay_fraction)), 1)
        schedule = PLTSchedule(giant, total_steps=iterations_per_epoch * decay_epochs)

        trainer = Trainer(
            giant,
            config,
            loss_computer=loss_computer,
            iteration_callbacks=[lambda _step: schedule.step()],
        )
        history = trainer.fit(train_set, val_set)
        # Guard against rounding: contraction requires exact linearity.
        schedule.finalize()
        return history, schedule

    def contract(self, giant: nn.Module, records: list[ExpansionRecord]) -> nn.Module:
        """Step 3 — collapse the linearised expanded blocks back to the TNN."""
        return contract_network(giant, records)

    # ------------------------------------------------------------------ #
    # full pipeline
    # ------------------------------------------------------------------ #
    def run(
        self,
        model: nn.Module,
        pretrain_train: ClassificationDataset,
        pretrain_val: ClassificationDataset | None = None,
        target_train: ClassificationDataset | None = None,
        target_val: ClassificationDataset | None = None,
        target_num_classes: int | None = None,
        pretrain_transform: Transform | None = None,
    ) -> NetBoosterResult:
        """Run the complete expansion-then-contraction pipeline.

        When no target dataset is given the PLT phase runs on the pretraining
        corpus (the large-scale-dataset experiment); otherwise the giant is
        transferred to the target dataset during PLT (the downstream-task
        experiment).
        """
        giant, records = self.build_giant(model)
        pretrain_history = self.pretrain_giant(
            giant, pretrain_train, pretrain_val, train_transform=pretrain_transform
        )

        plt_train = target_train if target_train is not None else pretrain_train
        plt_val = target_val if target_val is not None else pretrain_val
        finetune_history, _ = self.plt_finetune(
            giant, plt_train, plt_val, new_num_classes=target_num_classes
        )
        giant_accuracy = evaluate(giant, plt_val) if plt_val is not None else float("nan")

        contracted = self.contract(giant, records)
        final_accuracy = evaluate(contracted, plt_val) if plt_val is not None else float("nan")
        return NetBoosterResult(
            model=contracted,
            giant=giant,
            records=records,
            pretrain_history=pretrain_history,
            finetune_history=finetune_history,
            final_accuracy=final_accuracy,
            giant_accuracy=giant_accuracy,
        )
