"""Alternative annealing curves for Progressive Linearization Tuning.

The paper increases the activation slope ``alpha`` *uniformly per iteration*
(a linear ramp) over ``Ed`` epochs.  The ablation benchmarks also exercise two
natural alternatives so the sensitivity of PLT to the annealing curve can be
measured:

* :class:`CosinePLTSchedule` — slow start / slow finish, spending more
  iterations near the two endpoints where the network adapts to a change of
  regime;
* :class:`StepPLTSchedule` — piecewise-constant jumps, the harshest option,
  which approximates removing the non-linearities a chunk at a time.

All schedules share the :class:`~repro.core.plt.PLTSchedule` interface, so the
trainer's per-iteration callback does not care which one it drives.
"""

from __future__ import annotations

import math

from .. import nn
from .plt import PLTSchedule

__all__ = ["CosinePLTSchedule", "StepPLTSchedule", "make_plt_schedule", "PLT_SCHEDULES"]


class CosinePLTSchedule(PLTSchedule):
    """Cosine-shaped ramp of ``alpha`` from ``initial_alpha`` to 1."""

    @property
    def alpha(self) -> float:
        progress = min(self.current_step / self.total_steps, 1.0)
        shaped = 0.5 * (1.0 - math.cos(math.pi * progress))
        return self.initial_alpha + (1.0 - self.initial_alpha) * shaped


class StepPLTSchedule(PLTSchedule):
    """Piecewise-constant ramp: ``alpha`` jumps at ``num_stages`` milestones."""

    def __init__(
        self,
        model: nn.Module,
        total_steps: int,
        initial_alpha: float = 0.0,
        num_stages: int = 4,
    ):
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        self.num_stages = int(num_stages)
        super().__init__(model, total_steps, initial_alpha)

    @property
    def alpha(self) -> float:
        progress = min(self.current_step / self.total_steps, 1.0)
        stage = math.floor(progress * self.num_stages)
        shaped = min(stage / self.num_stages, 1.0) if progress < 1.0 else 1.0
        return self.initial_alpha + (1.0 - self.initial_alpha) * shaped


PLT_SCHEDULES = {
    "linear": PLTSchedule,
    "cosine": CosinePLTSchedule,
    "step": StepPLTSchedule,
}


def make_plt_schedule(
    name: str,
    model: nn.Module,
    total_steps: int,
    initial_alpha: float = 0.0,
    **kwargs,
) -> PLTSchedule:
    """Build a PLT schedule by name (``linear`` | ``cosine`` | ``step``)."""
    if name not in PLT_SCHEDULES:
        raise KeyError(f"unknown PLT schedule {name!r}; choose from {sorted(PLT_SCHEDULES)}")
    return PLT_SCHEDULES[name](model, total_steps, initial_alpha, **kwargs)
