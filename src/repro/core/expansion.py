"""Step 1 of NetBooster: Network Expansion (paper Sec. III-C).

Given a tiny neural network, this module constructs its "deep giant" by
replacing selected pointwise convolutions with multi-layer *expanded blocks*.
The three design questions from the paper are exposed as configuration:

* **Q1 — what block to insert**: inverted residual (default), basic or
  bottleneck blocks, all built with 1×1 kernels so the receptive field of the
  replaced layer is preserved (criterion *a*, structural consistency);
* **Q2 — where to expand**: ``uniform`` (default), ``first``, ``middle`` or
  ``last`` placement over the TNN's candidate layers;
* **Q3 — expansion ratio**: width multiplier of the inserted block's hidden
  layer (default 6, as in MobileNetV2).

The expanded blocks use :class:`~repro.nn.activations.DecayableReLU`
activations so that Step 2 (PLT, :mod:`repro.core.plt`) can anneal the
non-linearities away and Step 3 (:mod:`repro.core.contraction`) can merge the
block back into a single convolution.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..models.blocks import InvertedResidual

__all__ = [
    "ExpansionConfig",
    "ExpansionRecord",
    "ExpandedBlock",
    "ExpandedInvertedResidual",
    "ExpandedBasicBlock",
    "ExpandedBottleneck",
    "find_expandable_convs",
    "select_expansion_sites",
    "expand_network",
    "EXPANDED_BLOCK_TYPES",
]


@dataclass
class ExpansionConfig:
    """Configuration of the Network Expansion step.

    Attributes
    ----------
    block_type:
        Inserted block family: ``"inverted_residual"`` (paper default),
        ``"basic"`` or ``"bottleneck"`` (Table IV ablation).
    expansion_ratio:
        Hidden-width multiplier of the inserted block (Table VI ablation).
    fraction:
        Fraction of candidate layers to expand (paper: 50 %).
    num_expanded:
        Explicit number of layers to expand; overrides ``fraction`` when set
        (Table V uses 8 blocks).
    placement:
        ``"uniform"`` | ``"first"`` | ``"middle"`` | ``"last"`` (Table V).
    activation:
        Decayable activation inside the expanded blocks: ``"relu"`` or
        ``"relu6"``.
    """

    block_type: str = "inverted_residual"
    expansion_ratio: int = 6
    fraction: float = 0.5
    num_expanded: int | None = None
    placement: str = "uniform"
    activation: str = "relu"

    def __post_init__(self) -> None:
        if self.block_type not in EXPANDED_BLOCK_TYPES:
            raise ValueError(
                f"unknown block_type {self.block_type!r}; choose from {sorted(EXPANDED_BLOCK_TYPES)}"
            )
        if self.expansion_ratio < 1:
            raise ValueError("expansion_ratio must be >= 1")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.placement not in ("uniform", "first", "middle", "last"):
            raise ValueError("placement must be uniform/first/middle/last")
        if self.activation not in ("relu", "relu6"):
            raise ValueError("activation must be 'relu' or 'relu6'")


@dataclass
class ExpansionRecord:
    """Bookkeeping for one expanded layer, needed later for contraction."""

    path: str
    in_channels: int
    out_channels: int
    stride: int
    block_type: str
    expansion_ratio: int


def _make_decayable(activation: str) -> nn.Module:
    if activation == "relu6":
        return nn.DecayableReLU6()
    return nn.DecayableReLU()


class ExpandedBlock(nn.Module):
    """Base class for blocks inserted in place of a pointwise convolution.

    Subclasses populate :attr:`stages` — an ordered list of
    ``(Conv2d, BatchNorm2d | None, DecayableReLU | None)`` triples — which is
    all the contraction step needs, plus :attr:`use_residual` for the skip
    connection.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.use_residual = stride == 1 and in_channels == out_channels

    # Subclasses must keep this in sync with their forward pass.
    def linear_chain(self) -> list[tuple[nn.Conv2d, nn.BatchNorm2d | None]]:
        """Conv/BN pairs in execution order (activations omitted)."""
        raise NotImplementedError

    def decayable_activations(self) -> list[nn.Module]:
        """All decayable activations inside the block."""
        return [
            module
            for _, module in self.named_modules()
            if isinstance(module, nn.DecayableReLU)
        ]

    @property
    def is_linear(self) -> bool:
        """True when every internal activation has decayed to the identity."""
        return all(act.is_linear for act in self.decayable_activations())


class ExpandedInvertedResidual(ExpandedBlock):
    """Inverted-residual expansion block (paper default, Q1 answer).

    Structure: pointwise expand (ratio ``r``) → 1×1 depthwise → pointwise
    project, with BatchNorm after each convolution and decayable activations
    after the first two.  The 1×1 depthwise kernel keeps the receptive field
    equal to the replaced pointwise convolution.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        expansion_ratio: int = 6,
        activation: str = "relu",
    ):
        super().__init__(in_channels, out_channels, stride)
        hidden = int(in_channels * expansion_ratio)
        self.expansion_ratio = expansion_ratio
        self.expand_conv = nn.Conv2d(in_channels, hidden, 1, stride=stride, bias=False)
        self.expand_bn = nn.BatchNorm2d(hidden)
        self.expand_act = _make_decayable(activation)
        self.depthwise_conv = nn.Conv2d(hidden, hidden, 1, groups=hidden, bias=False)
        self.depthwise_bn = nn.BatchNorm2d(hidden)
        self.depthwise_act = _make_decayable(activation)
        self.project_conv = nn.Conv2d(hidden, out_channels, 1, bias=False)
        self.project_bn = nn.BatchNorm2d(out_channels)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.expand_act(self.expand_bn(self.expand_conv(x)))
        out = self.depthwise_act(self.depthwise_bn(self.depthwise_conv(out)))
        out = self.project_bn(self.project_conv(out))
        if self.use_residual:
            out = out + x
        return out

    def linear_chain(self) -> list[tuple[nn.Conv2d, nn.BatchNorm2d | None]]:
        return [
            (self.expand_conv, self.expand_bn),
            (self.depthwise_conv, self.depthwise_bn),
            (self.project_conv, self.project_bn),
        ]


class ExpandedBasicBlock(ExpandedBlock):
    """ResNet-style basic block with 1×1 kernels (Table IV ablation)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        expansion_ratio: int = 6,
        activation: str = "relu",
    ):
        super().__init__(in_channels, out_channels, stride)
        hidden = int(in_channels * expansion_ratio)
        self.expansion_ratio = expansion_ratio
        self.conv1 = nn.Conv2d(in_channels, hidden, 1, stride=stride, bias=False)
        self.bn1 = nn.BatchNorm2d(hidden)
        self.act1 = _make_decayable(activation)
        self.conv2 = nn.Conv2d(hidden, out_channels, 1, bias=False)
        self.bn2 = nn.BatchNorm2d(out_channels)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.use_residual:
            out = out + x
        return out

    def linear_chain(self) -> list[tuple[nn.Conv2d, nn.BatchNorm2d | None]]:
        return [(self.conv1, self.bn1), (self.conv2, self.bn2)]


class ExpandedBottleneck(ExpandedBlock):
    """ResNet-style bottleneck block with 1×1 kernels (Table IV ablation).

    Reduce → hidden → expand: the middle width is ``in_channels *
    expansion_ratio // 2`` so the block has a larger capacity gap than the
    inverted residual, matching the paper's observation that it learns a
    slightly higher expanded accuracy but inherits less effectively.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        expansion_ratio: int = 6,
        activation: str = "relu",
    ):
        super().__init__(in_channels, out_channels, stride)
        hidden = max(int(in_channels * expansion_ratio) // 2, 4)
        wide = int(in_channels * expansion_ratio)
        self.expansion_ratio = expansion_ratio
        self.reduce_conv = nn.Conv2d(in_channels, hidden, 1, stride=stride, bias=False)
        self.reduce_bn = nn.BatchNorm2d(hidden)
        self.reduce_act = _make_decayable(activation)
        self.mid_conv = nn.Conv2d(hidden, wide, 1, bias=False)
        self.mid_bn = nn.BatchNorm2d(wide)
        self.mid_act = _make_decayable(activation)
        self.expand_conv = nn.Conv2d(wide, out_channels, 1, bias=False)
        self.expand_bn = nn.BatchNorm2d(out_channels)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.reduce_act(self.reduce_bn(self.reduce_conv(x)))
        out = self.mid_act(self.mid_bn(self.mid_conv(out)))
        out = self.expand_bn(self.expand_conv(out))
        if self.use_residual:
            out = out + x
        return out

    def linear_chain(self) -> list[tuple[nn.Conv2d, nn.BatchNorm2d | None]]:
        return [
            (self.reduce_conv, self.reduce_bn),
            (self.mid_conv, self.mid_bn),
            (self.expand_conv, self.expand_bn),
        ]


EXPANDED_BLOCK_TYPES: dict[str, type[ExpandedBlock]] = {
    "inverted_residual": ExpandedInvertedResidual,
    "basic": ExpandedBasicBlock,
    "bottleneck": ExpandedBottleneck,
}


def find_expandable_convs(model: nn.Module) -> list[str]:
    """Return dotted paths of the candidate pointwise convolutions.

    Following the paper's expansion strategy, the candidate in each inverted
    residual block is its *first* pointwise convolution (the expansion conv,
    or the projection conv when the block has no expansion).  For models
    without inverted residual blocks, every stride-1, group-1, 1×1 convolution
    is a candidate.
    """
    candidates: list[str] = []
    inverted_blocks = [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, InvertedResidual)
    ]
    if inverted_blocks:
        for name, block in inverted_blocks:
            if isinstance(block.expand, nn.Identity):
                candidates.append(f"{name}.project.conv")
            else:
                candidates.append(f"{name}.expand.conv")
        return candidates

    for name, module in model.named_modules():
        if (
            isinstance(module, nn.Conv2d)
            and module.kernel_size == 1
            and module.groups == 1
            and module.stride == 1
        ):
            candidates.append(name)
    return candidates


def select_expansion_sites(num_candidates: int, config: ExpansionConfig) -> list[int]:
    """Choose which candidate indices to expand according to Q2/placement."""
    if num_candidates == 0:
        return []
    if config.num_expanded is not None:
        count = min(config.num_expanded, num_candidates)
    else:
        count = max(int(round(num_candidates * config.fraction)), 1)

    if config.placement == "first":
        return list(range(count))
    if config.placement == "last":
        return list(range(num_candidates - count, num_candidates))
    if config.placement == "middle":
        start = max((num_candidates - count) // 2, 0)
        return list(range(start, start + count))
    # Uniform: evenly spaced sites covering the whole depth (paper default).
    positions = np.linspace(0, num_candidates - 1, count)
    return sorted(set(int(round(p)) for p in positions))


def expand_network(
    model: nn.Module,
    config: ExpansionConfig | None = None,
    inplace: bool = False,
) -> tuple[nn.Module, list[ExpansionRecord]]:
    """Build the deep giant by expanding selected layers of ``model``.

    Parameters
    ----------
    model:
        The original tiny network.  It is deep-copied unless ``inplace``.
    config:
        Expansion configuration; defaults to the paper's recipe (inverted
        residual blocks, ratio 6, 50 % of layers, uniform placement).

    Returns
    -------
    (giant, records):
        The expanded network and one :class:`ExpansionRecord` per replaced
        layer (needed by :func:`repro.core.contraction.contract_network`).
    """
    config = config or ExpansionConfig()
    giant = model if inplace else copy.deepcopy(model)

    candidates = find_expandable_convs(giant)
    sites = select_expansion_sites(len(candidates), config)
    block_cls = EXPANDED_BLOCK_TYPES[config.block_type]

    records: list[ExpansionRecord] = []
    for index in sites:
        path = candidates[index]
        conv = giant.get_submodule(path)
        if not isinstance(conv, nn.Conv2d):
            raise TypeError(f"candidate {path!r} is not a Conv2d")
        if conv.kernel_size != 1:
            raise ValueError(f"only pointwise convolutions can be expanded, got k={conv.kernel_size}")
        expanded = block_cls(
            conv.in_channels,
            conv.out_channels,
            stride=conv.stride,
            expansion_ratio=config.expansion_ratio,
            activation=config.activation,
        )
        giant.set_submodule(path, expanded)
        records.append(
            ExpansionRecord(
                path=path,
                in_channels=conv.in_channels,
                out_channels=conv.out_channels,
                stride=conv.stride,
                block_type=config.block_type,
                expansion_ratio=config.expansion_ratio,
            )
        )
    return giant, records
