"""Deterministic seeding for reproducible experiments."""

from __future__ import annotations

import random

import numpy as np

from ..nn import init as nn_init

__all__ = ["seed_everything"]


def seed_everything(seed: int = 0) -> np.random.Generator:
    """Seed Python's ``random``, NumPy's legacy RNG and the layer initialisers.

    Returns a fresh :class:`numpy.random.Generator` seeded with ``seed`` for
    callers that want an explicit generator.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))
    nn_init.set_init_rng(seed)
    return np.random.default_rng(seed)
