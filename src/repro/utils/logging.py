"""Lightweight logging setup shared by trainers and benchmarks."""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s | %(name)s | %(levelname)s | %(message)s"


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger; handlers are attached only once."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stdout)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger
