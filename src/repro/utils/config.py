"""Experiment configuration containers.

A single dataclass captures the knobs shared across the training harness so
benchmarks and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """Hyper-parameters for one training run.

    Attributes largely mirror the paper's recipe (Sec. IV-A), scaled down for
    the CPU substrate: SGD with momentum and cosine annealing, a main training
    phase on the large dataset and a PLT finetuning phase on the target
    dataset.
    """

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 4e-5
    label_smoothing: float = 0.0
    lr_schedule: str = "cosine"
    min_lr: float = 0.0
    warmup_epochs: int = 0
    seed: int = 0
    # PLT-specific knobs (paper: Ed = 40 of 150 ImageNet epochs; 20% downstream).
    plt_decay_fraction: float = 0.2
    log_every: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    def replace(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields overridden."""
        data = self.to_dict()
        data.update(kwargs)
        return ExperimentConfig(**data)
