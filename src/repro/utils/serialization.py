"""Checkpoint save/load helpers using ``numpy.savez``."""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from ..nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(model: Module, path: str, metadata: dict[str, Any] | None = None) -> None:
    """Serialise a model's state dict (and optional scalar metadata) to ``path``."""
    state = model.state_dict()
    payload = {f"param::{k}": v for k, v in state.items()}
    for key, value in (metadata or {}).items():
        payload[f"meta::{key}"] = np.asarray(value)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **payload)


def load_checkpoint(model: Module, path: str) -> dict[str, Any]:
    """Load a checkpoint produced by :func:`save_checkpoint`.

    Returns the metadata dictionary stored alongside the weights.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    archive = np.load(path, allow_pickle=False)
    state = {}
    metadata: dict[str, Any] = {}
    for key in archive.files:
        if key.startswith("param::"):
            state[key[len("param::"):]] = archive[key]
        elif key.startswith("meta::"):
            metadata[key[len("meta::"):]] = archive[key]
    model.load_state_dict(state, strict=False)
    return metadata
