"""Small shared utilities: seeding, logging, configuration, checkpoints."""

from .config import ExperimentConfig
from .logging import get_logger
from .seed import seed_everything
from .serialization import load_checkpoint, save_checkpoint

__all__ = [
    "seed_everything",
    "get_logger",
    "ExperimentConfig",
    "save_checkpoint",
    "load_checkpoint",
]
