"""Standard trainable layers: convolutions, linear, batch norm, pooling.

All layers operate on ``NCHW`` tensors (``NC`` for :class:`Linear`).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Flatten",
]


class Conv2d(Module):
    """2-D convolution with optional grouping (``groups == in_channels`` for depthwise).

    Parameters mirror the usual convention: kernel weight has shape
    ``(out_channels, in_channels // groups, kernel_size, kernel_size)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
    ):
        super().__init__()
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError("in/out channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels // groups, kernel_size, kernel_size))
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, g={self.groups}, "
            f"bias={self.bias is not None})"
        )


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class BatchNorm2d(Module):
    """Batch normalisation over channels of an NCHW tensor."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class AvgPool2d(Module):
    """Average pooling."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    """Collapse the spatial dimensions to ``1x1`` by averaging."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout (identity at evaluation time)."""

    def __init__(self, rate: float = 0.5, seed: int | None = None):
        super().__init__()
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self._rng)


class Flatten(Module):
    """Flatten everything after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)
