"""Loss modules wrapping :mod:`repro.nn.functional`.

The training code mostly calls the functional forms directly, but module-style
losses are convenient for configuration-driven experiments (they carry their
hyper-parameters) and mirror the familiar ``torch.nn`` API.  The distillation
losses used by the paper's KD baselines live in :mod:`repro.baselines.kd`;
here we provide the task losses plus a couple of generally useful extras
(focal loss for the detection head, soft-target cross entropy for
MixUp/CutMix training).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = [
    "CrossEntropyLoss",
    "SoftTargetCrossEntropy",
    "KLDivergenceLoss",
    "MSELoss",
    "SmoothL1Loss",
    "BCEWithLogitsLoss",
    "FocalLoss",
]


class CrossEntropyLoss(Module):
    """Cross entropy between logits and integer labels.

    Parameters
    ----------
    label_smoothing:
        Fraction of probability mass moved from the target class to the
        uniform distribution (paper baselines use 0.1 on the large dataset).
    """

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, label_smoothing=self.label_smoothing)

    def __repr__(self) -> str:
        return f"CrossEntropyLoss(label_smoothing={self.label_smoothing})"


class SoftTargetCrossEntropy(Module):
    """Cross entropy against a full target distribution.

    Required by MixUp / CutMix augmentation, where each sample's target is a
    convex combination of two one-hot vectors.
    """

    def forward(self, logits: Tensor, target_probs: np.ndarray | Tensor) -> Tensor:
        return F.cross_entropy(logits, target_probs, soft_targets=True)


class KLDivergenceLoss(Module):
    """Temperature-scaled KL divergence, the classic distillation objective."""

    def __init__(self, temperature: float = 4.0):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, teacher_logits: Tensor, student_logits: Tensor) -> Tensor:
        return F.kl_divergence(teacher_logits, student_logits, temperature=self.temperature)

    def __repr__(self) -> str:
        return f"KLDivergenceLoss(temperature={self.temperature})"


class MSELoss(Module):
    """Mean squared error (used for feature-map matching in RCO-KD)."""

    def forward(self, pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
        return F.mse_loss(pred, target)


class SmoothL1Loss(Module):
    """Huber loss for bounding-box regression."""

    def __init__(self, beta: float = 1.0):
        super().__init__()
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta = beta

    def forward(self, pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
        return F.smooth_l1_loss(pred, target, beta=self.beta)

    def __repr__(self) -> str:
        return f"SmoothL1Loss(beta={self.beta})"


class BCEWithLogitsLoss(Module):
    """Sigmoid cross entropy on raw logits."""

    def forward(self, logits: Tensor, targets: np.ndarray | Tensor) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets)


class FocalLoss(Module):
    """Focal loss for class-imbalanced classification (Lin et al., 2017).

    ``FL(p_t) = -alpha * (1 - p_t)^gamma * log(p_t)`` where ``p_t`` is the
    predicted probability of the true class.  With ``gamma == 0`` and
    ``alpha == 1`` this reduces to plain cross entropy; the detection head can
    use it to down-weight the abundant background cells.
    """

    def __init__(self, gamma: float = 2.0, alpha: float = 1.0):
        super().__init__()
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma
        self.alpha = alpha

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        num_classes = logits.shape[-1]
        target_probs = F.one_hot(np.asarray(targets), num_classes)
        log_probs = F.log_softmax(logits, axis=-1)
        probs = log_probs.exp()
        focal_weight = ((Tensor(1.0) - probs) ** self.gamma).detach()
        weighted = Tensor(target_probs) * focal_weight * log_probs
        return weighted.sum(axis=-1).mean() * (-self.alpha)

    def __repr__(self) -> str:
        return f"FocalLoss(gamma={self.gamma}, alpha={self.alpha})"
