"""Neural-network primitives built on top of :class:`repro.nn.tensor.Tensor`.

These functions implement the heavy-weight operations (convolution, pooling,
batch normalisation, losses) as single autograd nodes with hand-written
backward passes, which keeps the tape small and the NumPy implementation
reasonably fast.

All spatial operations use the ``NCHW`` layout.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "im2col",
    "im2col_reference",
    "col2im",
    "clear_workspaces",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "linear",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "kl_divergence",
    "mse_loss",
    "smooth_l1_loss",
    "binary_cross_entropy_with_logits",
    "dropout",
    "one_hot",
    "conv_output_size",
]


# --------------------------------------------------------------------------- #
# workspace cache
# --------------------------------------------------------------------------- #
# Per-shape scratch buffers so the hot ops (pooling window materialisation,
# padded inputs in no-grad mode) stop reallocating large arrays every step.
# Workspaces are only handed out for buffers that are fully consumed within a
# single op call — anything retained for the backward pass allocates fresh.
_WORKSPACE_LIMIT = 64
_WORKSPACES: dict[tuple, np.ndarray] = {}


def _workspace(shape: tuple[int, ...], dtype) -> np.ndarray:
    key = (tuple(shape), np.dtype(dtype).str)
    buf = _WORKSPACES.get(key)
    if buf is None:
        if len(_WORKSPACES) >= _WORKSPACE_LIMIT:
            _WORKSPACES.clear()
        buf = np.empty(shape, dtype=dtype)
        _WORKSPACES[key] = buf
    return buf


def clear_workspaces() -> None:
    """Drop all cached scratch buffers (frees memory after large workloads)."""
    _WORKSPACES.clear()


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def _pad2d(x: np.ndarray, padding: int, reuse: bool = False) -> np.ndarray:
    """Zero-pad the spatial dims; ``reuse`` draws from the workspace cache.

    ``reuse=True`` is only valid when the padded array is consumed before the
    next op call (e.g. inference forward passes) — a workspace buffer handed
    to an autograd closure would be clobbered by the next step.
    """
    if padding <= 0:
        return x
    n, c, h, w = x.shape
    shape = (n, c, h + 2 * padding, w + 2 * padding)
    if reuse:
        out = _workspace(shape, x.dtype)
        out.fill(0.0)
        out[:, :, padding:-padding, padding:-padding] = x
        return out
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _conv_windows(
    x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int, reuse_pad: bool = False
) -> np.ndarray:
    """Zero-copy sliding windows of shape ``(N, C, out_h, out_w, kH, kW)``.

    The result is a strided view into (a padded copy of) ``x`` — no patch data
    is materialised.
    """
    xp = _pad2d(x, padding, reuse=reuse_pad)
    windows = sliding_window_view(xp, kernel, axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    return windows


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns (zero-copy).

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kH, kW)`` patch size.

    Returns
    -------
    Array of shape ``(N, C, kH, kW, out_h, out_w)``.  This is a read-only
    strided *view* of the (padded) input — consumers that need a contiguous
    buffer must copy it explicitly.
    """
    return _conv_windows(x, kernel, stride, padding).transpose(0, 1, 4, 5, 2, 3)


def im2col_reference(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Copy-based im2col kept as the numerical reference for :func:`im2col`.

    This is the seed implementation (explicit patch copies into a freshly
    allocated 6-D buffer); tests and the operator benchmarks compare the
    stride-trick fast path against it.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols


def _scatter_windows(
    grad_windows: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`_conv_windows`: scatter-add window grads into an image.

    ``grad_windows`` has the ``(N, C, out_h, out_w, kH, kW)`` window layout.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h, out_w = grad_windows.shape[2:4]
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=grad_windows.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += grad_windows[:, :, :, :, i, j]
    if padding > 0:
        return np.ascontiguousarray(padded[:, :, padding:-padding, padding:-padding])
    return padded


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    return _scatter_windows(cols.transpose(0, 1, 4, 5, 2, 3), input_shape, kernel, stride, padding)


# --------------------------------------------------------------------------- #
# convolution
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution (cross-correlation) with optional grouping.

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Kernel tensor of shape ``(C_out, C_in // groups, kH, kW)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    groups:
        Number of channel groups; ``groups == C_in`` yields a depthwise
        convolution.
    """
    xd, wd = x.data, weight.data
    n, c_in, h, w = xd.shape
    c_out, c_in_g, kh, kw = wd.shape
    if c_in != c_in_g * groups:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, "
            f"weight expects {c_in_g * groups} (groups={groups})"
        )
    if c_out % groups != 0:
        raise ValueError("output channels must be divisible by groups")

    # The autograd closure retains the zero-copy window view, so the padded
    # copy may only come from the workspace cache when no grad is needed.
    grad_needed = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    depthwise = c_in_g == 1 and groups == c_in
    pointwise = kh == 1 and kw == 1 and groups == 1
    multiplier = c_out // groups

    if pointwise:
        # 1x1 fast path: a pure channel contraction, lowered to batched matmul
        # (several times faster than the generic windowed einsum).
        xp = _pad2d(xd, padding, reuse=not grad_needed)
        xs = xp[:, :, ::stride, ::stride] if stride > 1 else xp
        out_h, out_w = xs.shape[2:4]
        x_flat = np.ascontiguousarray(xs).reshape(n, c_in, out_h * out_w)
        w_mat = wd.reshape(c_out, c_in)
        out = np.matmul(w_mat, x_flat).reshape(n, c_out, out_h, out_w)
    else:
        # (N, C, oh, ow, kH, kW) strided view — no patch data materialised.
        windows = _conv_windows(xd, (kh, kw), stride, padding, reuse_pad=not grad_needed)
        out_h, out_w = windows.shape[2:4]
        if depthwise:
            # Depthwise fast path: contract only over the window axes,
            # skipping the grouped reshape dance entirely.
            if multiplier == 1:
                out = np.einsum("nchwij,cij->nchw", windows, wd[:, 0], optimize=True)
            else:
                w_dw = wd.reshape(c_in, multiplier, kh, kw)
                out = np.einsum("nchwij,cmij->ncmhw", windows, w_dw, optimize=True)
                out = out.reshape(n, c_out, out_h, out_w)
        elif groups == 1:
            out = np.einsum("nchwij,ocij->nohw", windows, wd, optimize=True)
        else:
            windows_g = windows.reshape(n, groups, c_in_g, out_h, out_w, kh, kw)
            w_g = wd.reshape(groups, multiplier, c_in_g, kh, kw)
            out = np.einsum("ngqhwij,goqij->ngohw", windows_g, w_g, optimize=True)
            out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out += bias.data.reshape(1, c_out, 1, 1)

    if not grad_needed:
        return Tensor._make(out, (), None)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)), owned=True)
        if pointwise:
            grad_flat = grad.reshape(n, c_out, out_h * out_w)
            if weight.requires_grad:
                grad_w = np.matmul(grad_flat, x_flat.transpose(0, 2, 1)).sum(axis=0)
                weight._accumulate(grad_w.reshape(wd.shape), owned=True)
            if x.requires_grad:
                w_mat = wd.reshape(c_out, c_in)
                grad_xs = np.matmul(w_mat.T, grad_flat).reshape(n, c_in, out_h, out_w)
                if stride > 1 or padding > 0:
                    grad_padded = np.zeros(
                        (n, c_in, h + 2 * padding, w + 2 * padding), dtype=xd.dtype
                    )
                    grad_padded[:, :, : stride * out_h : stride, : stride * out_w : stride] = grad_xs
                    if padding > 0:
                        grad_xs = np.ascontiguousarray(
                            grad_padded[:, :, padding:-padding, padding:-padding]
                        )
                    else:
                        grad_xs = grad_padded
                x._accumulate(grad_xs, owned=True)
        elif depthwise:
            grad_g = grad.reshape(n, c_in, multiplier, out_h, out_w)
            if weight.requires_grad:
                grad_w = np.einsum("ncmhw,nchwij->cmij", grad_g, windows, optimize=True)
                weight._accumulate(grad_w.reshape(wd.shape), owned=True)
            if x.requires_grad:
                w_dw = wd.reshape(c_in, multiplier, kh, kw)
                grad_windows = np.einsum("ncmhw,cmij->nchwij", grad_g, w_dw, optimize=True)
                x._accumulate(
                    _scatter_windows(grad_windows, xd.shape, (kh, kw), stride, padding),
                    owned=True,
                )
        elif groups == 1:
            if weight.requires_grad:
                grad_w = np.einsum("nohw,nchwij->ocij", grad, windows, optimize=True)
                weight._accumulate(grad_w, owned=True)
            if x.requires_grad:
                grad_windows = np.einsum("nohw,ocij->nchwij", grad, wd, optimize=True)
                x._accumulate(
                    _scatter_windows(grad_windows, xd.shape, (kh, kw), stride, padding),
                    owned=True,
                )
        else:
            grad_g = grad.reshape(n, groups, multiplier, out_h, out_w)
            windows_g = windows.reshape(n, groups, c_in_g, out_h, out_w, kh, kw)
            w_g = wd.reshape(groups, multiplier, c_in_g, kh, kw)
            if weight.requires_grad:
                grad_w = np.einsum("ngohw,ngqhwij->goqij", grad_g, windows_g, optimize=True)
                weight._accumulate(grad_w.reshape(wd.shape), owned=True)
            if x.requires_grad:
                grad_windows = np.einsum("ngohw,goqij->ngqhwij", grad_g, w_g, optimize=True)
                grad_windows = grad_windows.reshape(n, c_in, out_h, out_w, kh, kw)
                x._accumulate(
                    _scatter_windows(grad_windows, xd.shape, (kh, kw), stride, padding),
                    owned=True,
                )

    return Tensor._make(out, parents, backward)


# --------------------------------------------------------------------------- #
# pooling
# --------------------------------------------------------------------------- #
def _pool_slices(xp: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int):
    """Yield the ``kernel**2`` shifted strided slices covering every window.

    Iterating window positions (not windows) turns pooling into a handful of
    large elementwise passes over near-contiguous slices — much faster than
    gathering a transposed window tensor.
    """
    for i in range(kernel):
        i_max = i + stride * out_h
        for j in range(kernel):
            j_max = j + stride * out_w
            yield i, j, xp[:, :, i:i_max:stride, j:j_max:stride]


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Average pooling over ``kernel x kernel`` windows (zeros in the padding)."""
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    # Nothing from the forward is retained for backward, so the padded copy
    # may always come from the workspace cache.
    xp = _pad2d(xd, padding, reuse=True)
    out = None
    for _, _, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
        if out is None:
            out = piece.astype(xd.dtype, copy=True)
        else:
            out += piece
    out *= 1.0 / (kernel * kernel)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype) * (1.0 / (kernel * kernel))
        grad_windows = np.broadcast_to(grad[:, :, :, :, None, None], grad.shape + (kernel, kernel))
        x._accumulate(
            _scatter_windows(grad_windows, xd.shape, (kernel, kernel), stride, padding),
            owned=True,
        )

    return Tensor._make(out, (x,), backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling over ``kernel x kernel`` windows (zeros in the padding)."""
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    grad_needed = is_grad_enabled() and x.requires_grad
    # Backward re-derives the argmax from the retained padded input, so the
    # workspace may only be reused when no gradient will flow.
    xp = _pad2d(xd, padding, reuse=not grad_needed)
    out = None
    for _, _, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
        if out is None:
            out = piece.copy()
        else:
            np.maximum(out, piece, out=out)

    if not grad_needed:
        return Tensor._make(out, (), None)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        # First-match scatter reproduces argmax tie-breaking (row-major window
        # order) without materialising the window tensor in the forward pass.
        grad_padded = np.zeros(xp.shape, dtype=xd.dtype)
        taken = np.zeros((n, c, out_h, out_w), dtype=bool)
        for i, j, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
            mask = piece == out
            mask &= ~taken
            i_max = i + stride * out_h
            j_max = j + stride * out_w
            grad_padded[:, :, i:i_max:stride, j:j_max:stride] += grad * mask
            taken |= mask
        if padding > 0:
            grad_x = np.ascontiguousarray(grad_padded[:, :, padding:-padding, padding:-padding])
        else:
            grad_x = grad_padded
        x._accumulate(grad_x, owned=True)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C, 1, 1)``."""
    return x.mean(axis=(2, 3), keepdims=True)


# --------------------------------------------------------------------------- #
# normalisation
# --------------------------------------------------------------------------- #
def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel dimension of an NCHW tensor.

    ``running_mean`` / ``running_var`` are plain NumPy buffers updated in
    place when ``training`` is true.
    """
    xd = x.data
    c = xd.shape[1]

    if training:
        mean = xd.mean(axis=(0, 2, 3))
        var = xd.var(axis=(0, 2, 3))
        count = xd.shape[0] * xd.shape[2] * xd.shape[3]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
    out = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = gamma.data.reshape(1, c, 1, 1)
            if training:
                m = xd.shape[0] * xd.shape[2] * xd.shape[3]
                grad_xhat = grad * g
                sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
                sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                grad_x = (
                    inv_std.reshape(1, c, 1, 1)
                    * (grad_xhat - sum_grad / m - x_hat * sum_grad_xhat / m)
                )
            else:
                grad_x = grad * g * inv_std.reshape(1, c, 1, 1)
            x._accumulate(grad_x)

    return Tensor._make(out, (x, gamma, beta), backward)


# --------------------------------------------------------------------------- #
# linear layers and activations on logits
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, num_classes)`` float array."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray | Tensor,
    label_smoothing: float = 0.0,
    soft_targets: bool = False,
) -> Tensor:
    """Cross-entropy between logits and integer labels or soft targets.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalised scores.
    targets:
        Integer labels ``(N,)`` unless ``soft_targets`` is true, in which case
        a ``(N, C)`` probability matrix (Tensor or ndarray).
    label_smoothing:
        Mixes the hard target distribution with a uniform distribution.
    """
    num_classes = logits.shape[-1]
    if soft_targets:
        target_probs = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    else:
        target_probs = one_hot(np.asarray(targets), num_classes)
    if label_smoothing > 0.0:
        target_probs = (
            (1.0 - label_smoothing) * target_probs + label_smoothing / num_classes
        )
    log_probs = log_softmax(logits, axis=-1)
    loss = -(Tensor(target_probs) * log_probs).sum(axis=-1).mean()
    return loss


def kl_divergence(teacher_logits: Tensor, student_logits: Tensor, temperature: float = 1.0) -> Tensor:
    """KL(teacher || student) on temperature-scaled distributions.

    The teacher distribution is detached; the usual ``T**2`` factor is applied
    so gradients are comparable across temperatures (Hinton et al., 2015).
    """
    t_probs = softmax(teacher_logits * (1.0 / temperature), axis=-1).detach()
    s_log_probs = log_softmax(student_logits * (1.0 / temperature), axis=-1)
    t = Tensor(t_probs.data)
    loss = (t * (Tensor(np.log(np.clip(t_probs.data, 1e-12, None))) - s_log_probs)).sum(axis=-1).mean()
    return loss * (temperature ** 2)


def mse_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def smooth_l1_loss(pred: Tensor, target: Tensor | np.ndarray, beta: float = 1.0) -> Tensor:
    """Huber/smooth-L1 loss used for bounding-box regression."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_part = abs_diff - 0.5 * beta
    mask = Tensor((abs_diff.data < beta).astype(pred.data.dtype))
    return (mask * quadratic + (Tensor(1.0) - mask) * linear_part).mean()


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray | Tensor, weight: np.ndarray | None = None
) -> Tensor:
    """Numerically-stable sigmoid cross entropy."""
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets, dtype=np.float32)
    t = Tensor(targets)
    max_part = logits.maximum(0.0)
    loss = max_part - logits * t + ((-logits.abs()).exp() + 1.0).log()
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=np.float32))
    return loss.mean()


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: identity at evaluation time."""
    if not training or rate <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate).astype(x.data.dtype) / (1.0 - rate)
    return x * Tensor(mask)
