"""Neural-network primitives built on top of :class:`repro.nn.tensor.Tensor`.

These functions implement the heavy-weight operations (convolution, pooling,
batch normalisation, losses) as single autograd nodes with hand-written
backward passes, which keeps the tape small and the NumPy implementation
reasonably fast.

All spatial operations use the ``NCHW`` layout.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "linear",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "kl_divergence",
    "mse_loss",
    "smooth_l1_loss",
    "binary_cross_entropy_with_logits",
    "dropout",
    "one_hot",
    "conv_output_size",
]


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kH, kW)`` patch size.

    Returns
    -------
    Array of shape ``(N, C, kH, kW, out_h, out_w)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# --------------------------------------------------------------------------- #
# convolution
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution (cross-correlation) with optional grouping.

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Kernel tensor of shape ``(C_out, C_in // groups, kH, kW)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    groups:
        Number of channel groups; ``groups == C_in`` yields a depthwise
        convolution.
    """
    xd, wd = x.data, weight.data
    n, c_in, h, w = xd.shape
    c_out, c_in_g, kh, kw = wd.shape
    if c_in != c_in_g * groups:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, "
            f"weight expects {c_in_g * groups} (groups={groups})"
        )
    if c_out % groups != 0:
        raise ValueError("output channels must be divisible by groups")

    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(xd, (kh, kw), stride, padding)  # (N, C, kh, kw, oh, ow)
    cols_mat = cols.reshape(n, groups, c_in_g * kh * kw, out_h * out_w)
    w_mat = wd.reshape(groups, c_out // groups, c_in_g * kh * kw)

    # (N, G, c_out/G, oh*ow)
    out = np.einsum("goc,ngcp->ngop", w_mat, cols_mat, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        grad_mat = grad.reshape(n, groups, c_out // groups, out_h * out_w)

        if weight.requires_grad:
            grad_w = np.einsum("ngop,ngcp->goc", grad_mat, cols_mat, optimize=True)
            weight._accumulate(grad_w.reshape(wd.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.einsum("goc,ngop->ngcp", w_mat, grad_mat, optimize=True)
            grad_cols = grad_cols.reshape(n, c_in, kh, kw, out_h, out_w)
            grad_x = col2im(grad_cols, xd.shape, (kh, kw), stride, padding)
            x._accumulate(grad_x)

    return Tensor._make(out, parents, backward)


# --------------------------------------------------------------------------- #
# pooling
# --------------------------------------------------------------------------- #
def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Average pooling over ``kernel x kernel`` windows."""
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    cols = im2col(xd, (kernel, kernel), stride, padding)
    out = cols.mean(axis=(2, 3))

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype) / (kernel * kernel)
        grad_cols = np.broadcast_to(
            grad[:, :, None, None, :, :], (n, c, kernel, kernel) + grad.shape[2:]
        )
        x._accumulate(col2im(np.ascontiguousarray(grad_cols), xd.shape, (kernel, kernel), stride, padding))

    return Tensor._make(out, (x,), backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling over ``kernel x kernel`` windows."""
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    cols = im2col(xd, (kernel, kernel), stride, padding)
    flat = cols.reshape(n, c, kernel * kernel, cols.shape[4], cols.shape[5])
    arg = flat.argmax(axis=2)
    out = flat.max(axis=2)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        grad_flat = np.zeros_like(flat)
        idx_n, idx_c, idx_h, idx_w = np.indices(arg.shape)
        grad_flat[idx_n, idx_c, arg, idx_h, idx_w] = grad
        grad_cols = grad_flat.reshape(cols.shape)
        x._accumulate(col2im(grad_cols, xd.shape, (kernel, kernel), stride, padding))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C, 1, 1)``."""
    return x.mean(axis=(2, 3), keepdims=True)


# --------------------------------------------------------------------------- #
# normalisation
# --------------------------------------------------------------------------- #
def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel dimension of an NCHW tensor.

    ``running_mean`` / ``running_var`` are plain NumPy buffers updated in
    place when ``training`` is true.
    """
    xd = x.data
    c = xd.shape[1]

    if training:
        mean = xd.mean(axis=(0, 2, 3))
        var = xd.var(axis=(0, 2, 3))
        count = xd.shape[0] * xd.shape[2] * xd.shape[3]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
    out = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = gamma.data.reshape(1, c, 1, 1)
            if training:
                m = xd.shape[0] * xd.shape[2] * xd.shape[3]
                grad_xhat = grad * g
                sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
                sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                grad_x = (
                    inv_std.reshape(1, c, 1, 1)
                    * (grad_xhat - sum_grad / m - x_hat * sum_grad_xhat / m)
                )
            else:
                grad_x = grad * g * inv_std.reshape(1, c, 1, 1)
            x._accumulate(grad_x)

    return Tensor._make(out, (x, gamma, beta), backward)


# --------------------------------------------------------------------------- #
# linear layers and activations on logits
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, num_classes)`` float array."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray | Tensor,
    label_smoothing: float = 0.0,
    soft_targets: bool = False,
) -> Tensor:
    """Cross-entropy between logits and integer labels or soft targets.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalised scores.
    targets:
        Integer labels ``(N,)`` unless ``soft_targets`` is true, in which case
        a ``(N, C)`` probability matrix (Tensor or ndarray).
    label_smoothing:
        Mixes the hard target distribution with a uniform distribution.
    """
    num_classes = logits.shape[-1]
    if soft_targets:
        target_probs = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    else:
        target_probs = one_hot(np.asarray(targets), num_classes)
    if label_smoothing > 0.0:
        target_probs = (
            (1.0 - label_smoothing) * target_probs + label_smoothing / num_classes
        )
    log_probs = log_softmax(logits, axis=-1)
    loss = -(Tensor(target_probs) * log_probs).sum(axis=-1).mean()
    return loss


def kl_divergence(teacher_logits: Tensor, student_logits: Tensor, temperature: float = 1.0) -> Tensor:
    """KL(teacher || student) on temperature-scaled distributions.

    The teacher distribution is detached; the usual ``T**2`` factor is applied
    so gradients are comparable across temperatures (Hinton et al., 2015).
    """
    t_probs = softmax(teacher_logits * (1.0 / temperature), axis=-1).detach()
    s_log_probs = log_softmax(student_logits * (1.0 / temperature), axis=-1)
    t = Tensor(t_probs.data)
    loss = (t * (Tensor(np.log(np.clip(t_probs.data, 1e-12, None))) - s_log_probs)).sum(axis=-1).mean()
    return loss * (temperature ** 2)


def mse_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def smooth_l1_loss(pred: Tensor, target: Tensor | np.ndarray, beta: float = 1.0) -> Tensor:
    """Huber/smooth-L1 loss used for bounding-box regression."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_part = abs_diff - 0.5 * beta
    mask = Tensor((abs_diff.data < beta).astype(pred.data.dtype))
    return (mask * quadratic + (Tensor(1.0) - mask) * linear_part).mean()


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray | Tensor, weight: np.ndarray | None = None
) -> Tensor:
    """Numerically-stable sigmoid cross entropy."""
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets, dtype=np.float32)
    t = Tensor(targets)
    max_part = logits.maximum(0.0)
    loss = max_part - logits * t + ((-logits.abs()).exp() + 1.0).log()
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=np.float32))
    return loss.mean()


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: identity at evaluation time."""
    if not training or rate <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate).astype(x.data.dtype) / (1.0 - rate)
    return x * Tensor(mask)
