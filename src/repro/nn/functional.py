"""Neural-network primitives built on top of :class:`repro.nn.tensor.Tensor`.

These functions implement the heavy-weight operations (convolution, pooling,
batch normalisation, losses) as single autograd nodes with hand-written
backward passes, which keeps the tape small and the NumPy implementation
reasonably fast.

All spatial operations use the ``NCHW`` layout.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "im2col",
    "im2col_reference",
    "col2im",
    "clear_workspaces",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "linear",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "softmax_cross_entropy_raw",
    "softmax_cross_entropy_grad",
    "kl_divergence",
    "mse_loss",
    "smooth_l1_loss",
    "binary_cross_entropy_with_logits",
    "dropout",
    "one_hot",
    "conv_output_size",
]


# --------------------------------------------------------------------------- #
# workspace cache
# --------------------------------------------------------------------------- #
# Per-shape scratch buffers so the hot ops (pooling window materialisation,
# padded inputs in no-grad mode, conv backward col/grad staging) stop
# reallocating large arrays every step.  Workspaces are only handed out for
# buffers that are fully consumed within a single op call — anything retained
# for the backward pass allocates fresh.  The ``tag`` namespaces buffers so
# two different roles with the same shape never alias within one op call.
# The cache is **per-thread**: the serving layer runs concurrent inference
# workers, and two threads hitting the same shape must never share scratch.
# The per-shape workspace cache is EXPLICITLY THREAD-LOCAL — this is a
# contract, not an implementation detail.  The parallel runtime
# (:mod:`repro.runtime.parallel`) runs tile tasks of one compiled engine on
# persistent pool workers, and the serving engine hammers one engine from
# many request threads; both rely on every thread drawing scratch from its
# own store so concurrent kernel calls can never alias (or clobber) each
# other's padded-input buffers.  A workspace array must therefore never be
# returned to a caller on a different thread, stored on an op, or handed to
# a closure that outlives the kernel call.  ``tests/test_parallel_runtime.py``
# pins both properties (distinct buffers per thread, no cross-talk under a
# race-stress load).
_WORKSPACE_LIMIT = 96
_WORKSPACE_STORE = threading.local()


def _workspaces() -> dict:
    """This thread's private ``(tag, shape, dtype) -> ndarray`` scratch store."""
    cache = getattr(_WORKSPACE_STORE, "cache", None)
    if cache is None:
        cache = _WORKSPACE_STORE.cache = {}
    return cache


def _workspace(shape: tuple[int, ...], dtype, tag: str = "") -> np.ndarray:
    """A reusable scratch array, owned exclusively by the calling thread."""
    workspaces = _workspaces()
    key = (tag, tuple(shape), np.dtype(dtype).str)
    buf = workspaces.get(key)
    if buf is None:
        if len(workspaces) >= _WORKSPACE_LIMIT:
            workspaces.clear()
        buf = np.empty(shape, dtype=dtype)
        workspaces[key] = buf
    return buf


def clear_workspaces() -> None:
    """Drop this thread's cached scratch buffers (frees memory after large workloads).

    Only the calling thread's store is dropped — other threads' workspaces
    (e.g. the parallel runtime's pool workers) are untouched by design.
    """
    _workspaces().clear()


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def _pad2d(x: np.ndarray, padding: int, reuse: bool = False) -> np.ndarray:
    """Zero-pad the spatial dims; ``reuse`` draws from the workspace cache.

    ``reuse=True`` is only valid when the padded array is consumed before the
    next op call (e.g. inference forward passes) — a workspace buffer handed
    to an autograd closure would be clobbered by the next step.
    """
    if padding <= 0:
        return x
    n, c, h, w = x.shape
    shape = (n, c, h + 2 * padding, w + 2 * padding)
    if reuse:
        out = _workspace(shape, x.dtype)
        out.fill(0.0)
        out[:, :, padding:-padding, padding:-padding] = x
        return out
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _conv_windows(
    x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int, reuse_pad: bool = False
) -> np.ndarray:
    """Zero-copy sliding windows of shape ``(N, C, out_h, out_w, kH, kW)``.

    The result is a strided view into (a padded copy of) ``x`` — no patch data
    is materialised.
    """
    xp = _pad2d(x, padding, reuse=reuse_pad)
    windows = sliding_window_view(xp, kernel, axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    return windows


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns (zero-copy).

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kH, kW)`` patch size.

    Returns
    -------
    Array of shape ``(N, C, kH, kW, out_h, out_w)``.  This is a read-only
    strided *view* of the (padded) input — consumers that need a contiguous
    buffer must copy it explicitly.
    """
    return _conv_windows(x, kernel, stride, padding).transpose(0, 1, 4, 5, 2, 3)


def im2col_reference(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Copy-based im2col kept as the numerical reference for :func:`im2col`.

    This is the seed implementation (explicit patch copies into a freshly
    allocated 6-D buffer); tests and the operator benchmarks compare the
    stride-trick fast path against it.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols


def _scatter_windows(
    grad_windows: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`_conv_windows`: scatter-add window grads into an image.

    ``grad_windows`` has the ``(N, C, out_h, out_w, kH, kW)`` window layout.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h, out_w = grad_windows.shape[2:4]
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=grad_windows.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += grad_windows[:, :, :, :, i, j]
    if padding > 0:
        return np.ascontiguousarray(padded[:, :, padding:-padding, padding:-padding])
    return padded


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    return _scatter_windows(cols.transpose(0, 1, 4, 5, 2, 3), input_shape, kernel, stride, padding)


# --------------------------------------------------------------------------- #
# raw convolution kernels (shared by autograd and the training runtime)
# --------------------------------------------------------------------------- #
# The dense (groups == 1, k > 1) convolution is lowered to a single sgemm over
# channel-major patch columns of shape ``(C_in, kH, kW, N, oH, oW)``; the same
# column buffer doubles as the ``dL/dW`` contraction operand in the backward
# pass, and ``dL/dx`` is a second sgemm followed by a clipped channel-major
# scatter.  Compared to the einsum formulation this drops the internal
# transpose-copies einsum performs on the strided window view (the column
# copy is done once, in the cache-friendly channel-major order).


def _dense_conv_cols(windows: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Materialise the ``(N, C, oH, oW, kH, kW)`` window view channel-major.

    Returns a contiguous array of shape ``(C, kH, kW, N, oH, oW)`` — the
    layout both the forward and the weight-gradient sgemm consume directly.
    """
    n, c, oh, ow, kh, kw = windows.shape
    if out is None:
        out = np.empty((c, kh, kw, n, oh, ow), dtype=windows.dtype)
    np.copyto(out, windows.transpose(1, 4, 5, 0, 2, 3))
    return out


def _dense_conv_forward_from_cols(cols: np.ndarray, wd: np.ndarray) -> np.ndarray:
    """Dense convolution forward as one sgemm over channel-major columns."""
    c_in, kh, kw, n, oh, ow = cols.shape
    c_out = wd.shape[0]
    out_t = _workspace((c_out, n, oh, ow), cols.dtype, tag="conv.out_t")
    np.matmul(
        wd.reshape(c_out, c_in * kh * kw),
        cols.reshape(c_in * kh * kw, n * oh * ow),
        out=out_t.reshape(c_out, n * oh * ow),
    )
    return np.ascontiguousarray(out_t.transpose(1, 0, 2, 3))


def _depthwise_conv_forward(
    xp: np.ndarray,
    windows: np.ndarray,
    wd: np.ndarray,
    stride: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Depthwise (multiplier 1) forward shared by autograd and the runtime.

    ``xp`` is the padded input, ``windows`` its strided window view.  Large
    kernels at stride 1 use one fused row-contraction per kernel row (much
    faster than the full 6-D window einsum); other configurations contract
    the window view directly.
    """
    c_in, _, kh, kw = wd.shape
    oh, ow = windows.shape[2:4]
    # The output buffer is always explicit and C-contiguous: einsum otherwise
    # picks a layout-dependent result order, and downstream contractions are
    # bit-sensitive to operand strides (the compiled runtime and the eager
    # tape must see identical layouts to stay bit-identical).
    if out is None:
        out = np.empty(windows.shape[:4], dtype=xp.dtype)
    if stride == 1 and kh == kw and kh > 3:
        win_rows = sliding_window_view(xp, kw, axis=3)
        np.einsum("nchwj,cj->nchw", win_rows[:, :, 0:oh], wd[:, 0, 0], out=out, optimize=True)
        for i in range(1, kh):
            out += np.einsum(
                "nchwj,cj->nchw", win_rows[:, :, i : i + oh], wd[:, 0, i], optimize=True
            )
        return out
    np.einsum("nchwij,cij->nchw", windows, wd[:, 0], out=out, optimize=True)
    return out


def _scatter_cols(
    gcols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    stride: int,
    padding: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Scatter-add channel-major column grads back into an NCHW image.

    ``gcols`` has shape ``(C, kH, kW, N, oH, oW)``.  The accumulator stays in
    the same channel-major layout (contiguous adds), clipping each kernel
    offset against the image bounds so no padded ring is materialised; a
    single transpose-copy produces the NCHW result.
    """
    n, c, h, w = input_shape
    _, kh, kw, _, oh, ow = gcols.shape
    acc = _workspace((c, n, h, w), gcols.dtype, tag="convbw.acc")
    acc.fill(0)
    for i in range(kh):
        for j in range(kw):
            # Output rows r contribute at image row (i - padding + stride*r).
            r0 = max(-((i - padding) // stride) if i < padding else 0, 0)
            r1 = min((h - 1 - i + padding) // stride, oh - 1)
            c0 = max(-((j - padding) // stride) if j < padding else 0, 0)
            c1 = min((w - 1 - j + padding) // stride, ow - 1)
            if r1 < r0 or c1 < c0:
                continue
            ys = slice(i - padding + stride * r0, i - padding + stride * r1 + 1, stride)
            xs = slice(j - padding + stride * c0, j - padding + stride * c1 + 1, stride)
            acc[:, :, ys, xs] += gcols[:, i, j, :, r0 : r1 + 1, c0 : c1 + 1]
    if out is None:
        return np.ascontiguousarray(acc.transpose(1, 0, 2, 3))
    np.copyto(out, acc.transpose(1, 0, 2, 3))
    return out


def _grad_channel_major(grad: np.ndarray) -> np.ndarray:
    """Stage ``(N, C_out, oH, oW)`` grads as a ``(C_out, N*oH*oW)`` matrix."""
    c_out = grad.shape[1]
    grad_t = _workspace(
        (c_out, grad.shape[0], grad.shape[2], grad.shape[3]), grad.dtype, tag="convbw.gradT"
    )
    np.copyto(grad_t, grad.transpose(1, 0, 2, 3))
    return grad_t.reshape(c_out, -1)


def _dense_conv_backward(
    grad: np.ndarray,
    cols: np.ndarray,
    wd: np.ndarray,
    input_shape: tuple[int, int, int, int],
    stride: int,
    padding: int,
    need_x: bool,
    need_w: bool,
    dx_out: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Backward of the dense conv: two sgemms sharing the staged operands."""
    c_in, kh, kw = cols.shape[:3]
    c_out = wd.shape[0]
    nhw = cols.shape[3] * cols.shape[4] * cols.shape[5]
    grad_mat = _grad_channel_major(grad)
    dx = dw = None
    if need_w:
        dw_t = cols.reshape(c_in * kh * kw, nhw) @ grad_mat.T
        dw = np.ascontiguousarray(dw_t.T).reshape(wd.shape)
    if need_x:
        gcols = _workspace(cols.shape, grad.dtype, tag="convbw.gcols")
        np.matmul(
            wd.reshape(c_out, c_in * kh * kw).T,
            grad_mat,
            out=gcols.reshape(c_in * kh * kw, nhw),
        )
        dx = _scatter_cols(gcols, input_shape, stride, padding, out=dx_out)
    return dx, dw


def _depthwise_conv_backward(
    grad: np.ndarray,
    windows: np.ndarray,
    wd: np.ndarray,
    input_shape: tuple[int, int, int, int],
    stride: int,
    padding: int,
    need_x: bool,
    need_w: bool,
    dx_out: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Backward of the depthwise (multiplier 1) conv without window tensors.

    Iterates the ``kH x kW`` kernel offsets and performs one fused contraction
    (for ``dL/dW``) or one broadcast multiply-accumulate (for ``dL/dx``) per
    offset, so the ``(N, C, oH, oW, kH, kW)`` gradient tensor the einsum
    formulation materialises never exists.
    """
    n, c_in, h, w = input_shape
    kh, kw = wd.shape[2:]
    oh, ow = grad.shape[2:]
    dx = dw = None
    if need_w:
        dw = np.empty(wd.shape, dtype=wd.dtype)
        for i in range(kh):
            for j in range(kw):
                # optimize=False: the contraction is a single fused pass and
                # skipping the per-call einsum_path search halves the cost.
                dw[:, 0, i, j] = np.einsum(
                    "nchw,nchw->c", grad, windows[..., i, j], optimize=False
                )
    if need_x:
        if stride == 1 and kh == kw and padding <= kh - 1:
            # dL/dx is a correlation of the (zero-padded) output gradient with
            # the flipped kernel; one fused row-contraction per kernel row.
            pg = kh - 1 - padding
            gp = np.pad(grad, ((0, 0), (0, 0), (pg, pg), (pg, pg))) if pg > 0 else grad
            win_rows = sliding_window_view(gp, kw, axis=3)
            w_flip = wd[:, 0, ::-1, ::-1]
            dx = dx_out if dx_out is not None else np.empty((n, c_in, h, w), dtype=grad.dtype)
            np.einsum("nchwj,cj->nchw", win_rows[:, :, 0:h], w_flip[:, 0], out=dx, optimize=True)
            for i in range(1, kh):
                dx += np.einsum(
                    "nchwj,cj->nchw", win_rows[:, :, i : i + h], w_flip[:, i], optimize=True
                )
        else:
            acc = _workspace(
                (n, c_in, h + 2 * padding, w + 2 * padding), grad.dtype, tag="convbw.dwacc"
            )
            acc.fill(0)
            tmp = _workspace((n, c_in, oh, ow), grad.dtype, tag="convbw.dwtmp")
            for i in range(kh):
                i_max = i + stride * oh
                for j in range(kw):
                    j_max = j + stride * ow
                    np.multiply(grad, wd[:, 0, i, j].reshape(1, c_in, 1, 1), out=tmp)
                    acc[:, :, i:i_max:stride, j:j_max:stride] += tmp
            inner = acc[:, :, padding : padding + h, padding : padding + w]
            if dx_out is None:
                dx = np.ascontiguousarray(inner)
            else:
                np.copyto(dx_out, inner)
                dx = dx_out
    return dx, dw


def _pointwise_conv_backward(
    grad: np.ndarray,
    x_flat: np.ndarray,
    wd: np.ndarray,
    input_shape: tuple[int, int, int, int],
    stride: int,
    padding: int,
    need_x: bool,
    need_w: bool,
    dx_out: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Backward of the 1x1 conv; ``x_flat`` is the ``(N, C_in, oH*oW)`` input."""
    n, c_in, h, w = input_shape
    c_out = grad.shape[1]
    out_h, out_w = grad.shape[2:]
    grad_flat = grad.reshape(n, c_out, out_h * out_w)
    dx = dw = None
    if need_w:
        # Single sgemm over channel-major stagings instead of an N-batched
        # matmul plus a reduction over the batch axis.
        grad_mat = _grad_channel_major(grad)
        x_t = _workspace((c_in, n, out_h * out_w), x_flat.dtype, tag="convbw.pwx")
        np.copyto(x_t, x_flat.transpose(1, 0, 2))
        dw = (grad_mat @ x_t.reshape(c_in, -1).T).reshape(wd.shape)
    if need_x:
        w_mat = wd.reshape(c_out, c_in)
        if dx_out is not None and stride == 1 and padding == 0:
            np.matmul(w_mat.T, grad_flat, out=dx_out.reshape(n, c_in, out_h * out_w))
            return dx_out, dw
        grad_xs = np.matmul(w_mat.T, grad_flat).reshape(n, c_in, out_h, out_w)
        if stride > 1 or padding > 0:
            grad_padded = np.zeros((n, c_in, h + 2 * padding, w + 2 * padding), dtype=grad.dtype)
            grad_padded[:, :, : stride * out_h : stride, : stride * out_w : stride] = grad_xs
            if padding > 0:
                inner = grad_padded[:, :, padding:-padding, padding:-padding]
                grad_xs = np.ascontiguousarray(inner) if dx_out is None else inner
            else:
                grad_xs = grad_padded
        if dx_out is None:
            dx = grad_xs
        else:
            np.copyto(dx_out, grad_xs)
            dx = dx_out
    return dx, dw


# --------------------------------------------------------------------------- #
# convolution
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution (cross-correlation) with optional grouping.

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Kernel tensor of shape ``(C_out, C_in // groups, kH, kW)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    groups:
        Number of channel groups; ``groups == C_in`` yields a depthwise
        convolution.
    """
    xd, wd = x.data, weight.data
    n, c_in, h, w = xd.shape
    c_out, c_in_g, kh, kw = wd.shape
    if c_in != c_in_g * groups:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, "
            f"weight expects {c_in_g * groups} (groups={groups})"
        )
    if c_out % groups != 0:
        raise ValueError("output channels must be divisible by groups")

    # The autograd closure retains the zero-copy window view, so the padded
    # copy may only come from the workspace cache when no grad is needed.
    grad_needed = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    depthwise = c_in_g == 1 and groups == c_in
    pointwise = kh == 1 and kw == 1 and groups == 1
    multiplier = c_out // groups

    cols = None  # channel-major patch columns, retained for the dense backward
    if pointwise:
        # 1x1 fast path: a pure channel contraction, lowered to batched matmul
        # (several times faster than the generic windowed einsum).
        xp = _pad2d(xd, padding, reuse=not grad_needed)
        xs = xp[:, :, ::stride, ::stride] if stride > 1 else xp
        out_h, out_w = xs.shape[2:4]
        x_flat = np.ascontiguousarray(xs).reshape(n, c_in, out_h * out_w)
        w_mat = wd.reshape(c_out, c_in)
        out = np.matmul(w_mat, x_flat).reshape(n, c_out, out_h, out_w)
    else:
        # (N, C, oh, ow, kH, kW) strided view — no patch data materialised.
        # The dense path never retains the view (it materialises channel-major
        # columns instead), so its padded copy can always reuse the workspace.
        dense = groups == 1 and not depthwise
        xp = _pad2d(xd, padding, reuse=dense or not grad_needed)
        windows = sliding_window_view(xp, (kh, kw), axis=(2, 3))
        if stride > 1:
            windows = windows[:, :, ::stride, ::stride]
        out_h, out_w = windows.shape[2:4]
        if depthwise:
            # Depthwise fast path: contract only over the window axes,
            # skipping the grouped reshape dance entirely.
            if multiplier == 1:
                out = _depthwise_conv_forward(xp, windows, wd, stride)
            else:
                w_dw = wd.reshape(c_in, multiplier, kh, kw)
                out = np.einsum("nchwij,cmij->ncmhw", windows, w_dw, optimize=True)
                out = out.reshape(n, c_out, out_h, out_w)
        elif groups == 1:
            if grad_needed:
                # Materialise the columns once; the buffer feeds the forward
                # sgemm here and the dL/dW sgemm in the backward pass.
                cols = _dense_conv_cols(windows)
                out = _dense_conv_forward_from_cols(cols, wd)
            else:
                out = _dense_conv_forward_from_cols(
                    _dense_conv_cols(windows, out=_workspace(
                        (c_in, kh, kw, n) + windows.shape[2:4], xd.dtype, tag="conv.cols"
                    )),
                    wd,
                )
        else:
            windows_g = windows.reshape(n, groups, c_in_g, out_h, out_w, kh, kw)
            w_g = wd.reshape(groups, multiplier, c_in_g, kh, kw)
            out = np.einsum("ngqhwij,goqij->ngohw", windows_g, w_g, optimize=True)
            out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out += bias.data.reshape(1, c_out, 1, 1)

    if not grad_needed:
        return Tensor._make(out, (), None)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)), owned=True)
        if pointwise:
            dx, dw = _pointwise_conv_backward(
                grad, x_flat, wd, xd.shape, stride, padding,
                need_x=x.requires_grad, need_w=weight.requires_grad,
            )
            if dw is not None:
                weight._accumulate(dw, owned=True)
            if dx is not None:
                x._accumulate(dx, owned=True)
        elif depthwise and multiplier == 1:
            dx, dw = _depthwise_conv_backward(
                grad, windows, wd, xd.shape, stride, padding,
                need_x=x.requires_grad, need_w=weight.requires_grad,
            )
            if dw is not None:
                weight._accumulate(dw, owned=True)
            if dx is not None:
                x._accumulate(dx, owned=True)
        elif depthwise:
            grad_g = grad.reshape(n, c_in, multiplier, out_h, out_w)
            if weight.requires_grad:
                grad_w = np.einsum("ncmhw,nchwij->cmij", grad_g, windows, optimize=True)
                weight._accumulate(grad_w.reshape(wd.shape), owned=True)
            if x.requires_grad:
                w_dw = wd.reshape(c_in, multiplier, kh, kw)
                grad_windows = np.einsum("ncmhw,cmij->nchwij", grad_g, w_dw, optimize=True)
                x._accumulate(
                    _scatter_windows(grad_windows, xd.shape, (kh, kw), stride, padding),
                    owned=True,
                )
        elif groups == 1:
            dx, dw = _dense_conv_backward(
                grad, cols, wd, xd.shape, stride, padding,
                need_x=x.requires_grad, need_w=weight.requires_grad,
            )
            if dw is not None:
                weight._accumulate(dw, owned=True)
            if dx is not None:
                x._accumulate(dx, owned=True)
        else:
            grad_g = grad.reshape(n, groups, multiplier, out_h, out_w)
            windows_g = windows.reshape(n, groups, c_in_g, out_h, out_w, kh, kw)
            w_g = wd.reshape(groups, multiplier, c_in_g, kh, kw)
            if weight.requires_grad:
                grad_w = np.einsum("ngohw,ngqhwij->goqij", grad_g, windows_g, optimize=True)
                weight._accumulate(grad_w.reshape(wd.shape), owned=True)
            if x.requires_grad:
                grad_windows = np.einsum("ngohw,goqij->ngqhwij", grad_g, w_g, optimize=True)
                grad_windows = grad_windows.reshape(n, c_in, out_h, out_w, kh, kw)
                x._accumulate(
                    _scatter_windows(grad_windows, xd.shape, (kh, kw), stride, padding),
                    owned=True,
                )

    return Tensor._make(out, parents, backward)


# --------------------------------------------------------------------------- #
# pooling
# --------------------------------------------------------------------------- #
def _pool_slices(xp: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int):
    """Yield the ``kernel**2`` shifted strided slices covering every window.

    Iterating window positions (not windows) turns pooling into a handful of
    large elementwise passes over near-contiguous slices — much faster than
    gathering a transposed window tensor.
    """
    for i in range(kernel):
        i_max = i + stride * out_h
        for j in range(kernel):
            j_max = j + stride * out_w
            yield i, j, xp[:, :, i:i_max:stride, j:j_max:stride]


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Average pooling over ``kernel x kernel`` windows (zeros in the padding)."""
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    # Nothing from the forward is retained for backward, so the padded copy
    # may always come from the workspace cache.
    xp = _pad2d(xd, padding, reuse=True)
    out = None
    for _, _, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
        if out is None:
            out = piece.astype(xd.dtype, copy=True)
        else:
            out += piece
    out *= 1.0 / (kernel * kernel)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype) * (1.0 / (kernel * kernel))
        grad_windows = np.broadcast_to(grad[:, :, :, :, None, None], grad.shape + (kernel, kernel))
        x._accumulate(
            _scatter_windows(grad_windows, xd.shape, (kernel, kernel), stride, padding),
            owned=True,
        )

    return Tensor._make(out, (x,), backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling over ``kernel x kernel`` windows (zeros in the padding)."""
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    grad_needed = is_grad_enabled() and x.requires_grad
    # Backward re-derives the argmax from the retained padded input, so the
    # workspace may only be reused when no gradient will flow.
    xp = _pad2d(xd, padding, reuse=not grad_needed)
    out = None
    for _, _, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
        if out is None:
            out = piece.copy()
        else:
            np.maximum(out, piece, out=out)

    if not grad_needed:
        return Tensor._make(out, (), None)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        # First-match scatter reproduces argmax tie-breaking (row-major window
        # order) without materialising the window tensor in the forward pass.
        grad_padded = np.zeros(xp.shape, dtype=xd.dtype)
        taken = np.zeros((n, c, out_h, out_w), dtype=bool)
        for i, j, piece in _pool_slices(xp, kernel, stride, out_h, out_w):
            mask = piece == out
            mask &= ~taken
            i_max = i + stride * out_h
            j_max = j + stride * out_w
            grad_padded[:, :, i:i_max:stride, j:j_max:stride] += grad * mask
            taken |= mask
        if padding > 0:
            grad_x = np.ascontiguousarray(grad_padded[:, :, padding:-padding, padding:-padding])
        else:
            grad_x = grad_padded
        x._accumulate(grad_x, owned=True)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C, 1, 1)``."""
    return x.mean(axis=(2, 3), keepdims=True)


# --------------------------------------------------------------------------- #
# normalisation
# --------------------------------------------------------------------------- #
def batch_norm2d_train_raw(
    xd: np.ndarray,
    gamma_d: np.ndarray,
    beta_d: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float,
    eps: float,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Training-mode batch-norm forward with a fused affine output.

    Batch moments use the numerically-stable two-pass mean/var (a naive
    ``E[x^2] - mean^2`` in float32 loses catastrophically for channels whose
    mean is large relative to their std); the normalisation itself is folded
    into one per-channel affine ``x * scale + shift``, so ``x_hat`` is never
    materialised.  Updates ``running_mean`` / ``running_var`` in place and
    returns the output plus the ``(xd, mean, inv_std)`` cache
    :func:`batch_norm2d_train_grad` consumes.  Shared by the autograd op and
    the compiled training runtime so both paths stay bit-identical.
    """
    c = xd.shape[1]
    count = xd.shape[0] * xd.shape[2] * xd.shape[3]
    mean_k = xd.mean(axis=(0, 2, 3), keepdims=True)
    var = np.var(xd, axis=(0, 2, 3), mean=mean_k)  # reuses the computed mean
    mean = mean_k.reshape(c)
    unbiased = var * count / max(count - 1, 1)
    running_mean *= 1.0 - momentum
    running_mean += momentum * mean
    running_var *= 1.0 - momentum
    running_var += momentum * unbiased
    inv_std = 1.0 / np.sqrt(var + eps)
    scale = gamma_d * inv_std
    shift = beta_d - mean * scale
    if out is None:
        out = xd * scale.reshape(1, c, 1, 1)
    else:
        np.multiply(xd, scale.reshape(1, c, 1, 1), out=out)
    out += shift.reshape(1, c, 1, 1)
    return out, (xd, mean, inv_std)


def batch_norm2d_train_grad(
    grad: np.ndarray,
    cache: tuple[np.ndarray, np.ndarray, np.ndarray],
    gamma_d: np.ndarray,
    need_x: bool = True,
    need_gamma: bool = True,
    need_beta: bool = True,
    dx_out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Backward of :func:`batch_norm2d_train_raw`; returns ``(dx, dgamma, dbeta)``.

    The classic three-term input gradient is collapsed algebraically into one
    per-element affine ``grad * A + (x - mean) * B + C`` with per-channel
    coefficients, fed by two whole-array reductions (``sum(grad)`` and a
    fused ``grad * (x - mean)`` contraction) — roughly half the memory passes
    of the textbook formulation.  The input is centred *before* the
    contraction: recovering ``sum(grad * x_hat)`` from the uncentred
    ``sum(grad * x)`` would subtract two nearly-equal quantities when the
    channel mean is large, which float32 accumulation cannot survive.
    """
    xd, mean, inv_std = cache
    c = xd.shape[1]
    m = xd.shape[0] * xd.shape[2] * xd.shape[3]
    mean4 = mean.reshape(1, c, 1, 1)
    if scratch is None:
        centered = xd - mean4
    else:
        np.subtract(xd, mean4, out=scratch)
        centered = scratch
    grad_sum = grad.sum(axis=(0, 2, 3))
    grad_xhat_sum = inv_std * np.einsum("nchw,nchw->c", grad, centered, optimize=False)
    dgamma = grad_xhat_sum if need_gamma else None
    dbeta = grad_sum if need_beta else None
    dx = None
    if need_x:
        # dx = inv_std * (grad*g - sum(grad*g)/m - x_hat*sum(grad*g*x_hat)/m)
        # expands to the per-element affine  grad*A + centered*B + C  with:
        coeff_a = gamma_d * inv_std
        coeff_b = -coeff_a * inv_std * grad_xhat_sum * (1.0 / m)
        coeff_c = -coeff_a * grad_sum * (1.0 / m)
        if dx_out is None:
            dx = grad * coeff_a.reshape(1, c, 1, 1)
        else:
            np.multiply(grad, coeff_a.reshape(1, c, 1, 1), out=dx_out)
            dx = dx_out
        centered *= coeff_b.reshape(1, c, 1, 1)
        dx += centered
        dx += coeff_c.reshape(1, c, 1, 1)
    return dx, dgamma, dbeta


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel dimension of an NCHW tensor.

    ``running_mean`` / ``running_var`` are plain NumPy buffers updated in
    place when ``training`` is true.
    """
    xd = x.data
    c = xd.shape[1]

    if training:
        out, cache = batch_norm2d_train_raw(
            xd, gamma.data, beta.data, running_mean, running_var, momentum, eps
        )
        x_hat = inv_std = None
    else:
        cache = None
        inv_std = 1.0 / np.sqrt(running_var + eps)
        x_hat = (xd - running_mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
        out = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    def backward(grad):
        grad = np.asarray(grad, dtype=xd.dtype)
        if training:
            dx, dgamma, dbeta = batch_norm2d_train_grad(
                grad,
                cache,
                gamma.data,
                need_x=x.requires_grad,
                need_gamma=gamma.requires_grad,
                need_beta=beta.requires_grad,
            )
            if dgamma is not None:
                gamma._accumulate(dgamma)
            if dbeta is not None:
                beta._accumulate(dbeta)
            if dx is not None:
                x._accumulate(dx)
            return
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = gamma.data.reshape(1, c, 1, 1)
            x._accumulate(grad * g * inv_std.reshape(1, c, 1, 1))

    return Tensor._make(out, (x, gamma, beta), backward)


# --------------------------------------------------------------------------- #
# linear layers and activations on logits
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, num_classes)`` float array."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def _cross_entropy_targets(
    targets, num_classes: int, label_smoothing: float, soft_targets: bool
) -> np.ndarray:
    """Resolve integer labels / soft targets into a target-probability matrix."""
    if soft_targets:
        target_probs = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    else:
        target_probs = one_hot(np.asarray(targets), num_classes)
    if label_smoothing > 0.0:
        target_probs = (
            (1.0 - label_smoothing) * target_probs + label_smoothing / num_classes
        )
    return target_probs


def softmax_cross_entropy_raw(
    logits: np.ndarray, target_probs: np.ndarray
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Forward of the fused softmax cross-entropy on raw arrays.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalised scores.
    target_probs:
        ``(N, C)`` target distribution.

    Returns
    -------
    (loss, cache)
        The scalar loss (0-d array in the logits dtype) and the
        ``(exp_shifted, sum_exp)`` cache consumed by
        :func:`softmax_cross_entropy_grad`.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    sum_exp = exp.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(sum_exp)
    loss = np.asarray(-(target_probs * log_probs).sum(axis=-1).mean(), dtype=logits.dtype)
    return loss, (exp, sum_exp)


def softmax_cross_entropy_grad(
    cache: tuple[np.ndarray, np.ndarray],
    target_probs: np.ndarray,
    upstream: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Gradient of the fused softmax cross-entropy w.r.t. the logits.

    Analytic form ``(softmax(z) * sum(t) - t) * upstream / N`` — one fused
    kernel instead of the log-softmax tape chain.  ``sum(t)`` keeps the
    gradient exact for unnormalised soft-target rows.
    """
    exp, sum_exp = cache
    probs = exp / sum_exp
    grad_logits = probs * target_probs.sum(axis=-1, keepdims=True) - target_probs
    grad_logits *= np.asarray(upstream) * (1.0 / exp.shape[0])
    return grad_logits


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray | Tensor,
    label_smoothing: float = 0.0,
    soft_targets: bool = False,
) -> Tensor:
    """Cross-entropy between logits and integer labels or soft targets.

    Implemented as a single fused tape node (forward and backward are one
    kernel each, see :func:`softmax_cross_entropy_raw`) rather than the
    log-softmax chain, which removes ~10 tape nodes per training step.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalised scores.
    targets:
        Integer labels ``(N,)`` unless ``soft_targets`` is true, in which case
        a ``(N, C)`` probability matrix (Tensor or ndarray).
    label_smoothing:
        Mixes the hard target distribution with a uniform distribution.
    """
    target_probs = _cross_entropy_targets(
        targets, logits.shape[-1], label_smoothing, soft_targets
    )
    loss, cache = softmax_cross_entropy_raw(logits.data, target_probs)

    def backward(grad):
        logits._accumulate(
            softmax_cross_entropy_grad(cache, target_probs, upstream=grad), owned=True
        )

    return Tensor._make(loss, (logits,), backward)


def kl_divergence(teacher_logits: Tensor, student_logits: Tensor, temperature: float = 1.0) -> Tensor:
    """KL(teacher || student) on temperature-scaled distributions.

    The teacher distribution is detached; the usual ``T**2`` factor is applied
    so gradients are comparable across temperatures (Hinton et al., 2015).
    """
    t_probs = softmax(teacher_logits * (1.0 / temperature), axis=-1).detach()
    s_log_probs = log_softmax(student_logits * (1.0 / temperature), axis=-1)
    t = Tensor(t_probs.data)
    loss = (t * (Tensor(np.log(np.clip(t_probs.data, 1e-12, None))) - s_log_probs)).sum(axis=-1).mean()
    return loss * (temperature ** 2)


def mse_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def smooth_l1_loss(pred: Tensor, target: Tensor | np.ndarray, beta: float = 1.0) -> Tensor:
    """Huber/smooth-L1 loss used for bounding-box regression."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_part = abs_diff - 0.5 * beta
    mask = Tensor((abs_diff.data < beta).astype(pred.data.dtype))
    return (mask * quadratic + (Tensor(1.0) - mask) * linear_part).mean()


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray | Tensor, weight: np.ndarray | None = None
) -> Tensor:
    """Numerically-stable sigmoid cross entropy."""
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets, dtype=np.float32)
    t = Tensor(targets)
    max_part = logits.maximum(0.0)
    loss = max_part - logits * t + ((-logits.abs()).exp() + 1.0).log()
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=np.float32))
    return loss.mean()


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: identity at evaluation time."""
    if not training or rate <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate).astype(x.data.dtype) / (1.0 - rate)
    return x * Tensor(mask)
