"""Activation modules, including the decayable activations used by PLT.

Progressive Linearization Tuning (paper Sec. III-D) replaces the ReLU
``y = max(0, x)`` with ``y = max(alpha * x, x)`` and anneals ``alpha`` from 0
to 1.  At ``alpha == 0`` the activation is exactly ReLU; at ``alpha == 1`` it
is the identity map, at which point the surrounding convolutions can be merged
by a linear combination (see :mod:`repro.core.contraction`).
"""

from __future__ import annotations

import math

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "PReLU",
    "Sigmoid",
    "Tanh",
    "Swish",
    "HardSigmoid",
    "HardSwish",
    "GELU",
    "Softmax",
    "DecayableReLU",
    "DecayableReLU6",
]


class ReLU(Module):
    """Rectified linear unit ``max(0, x)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    """ReLU clipped at 6, the default activation of MobileNetV2."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(0.0, 6.0)


class LeakyReLU(Module):
    """``max(slope * x, x)`` with a fixed negative slope."""

    def __init__(self, slope: float = 0.01):
        super().__init__()
        self.slope = float(slope)

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class PReLU(Module):
    """Parametric ReLU with one learnable negative slope per channel.

    The slope parameter broadcasts over the channel dimension of an NCHW
    tensor (or the feature dimension of an NC tensor when
    ``num_parameters == 1``).
    """

    def __init__(self, num_parameters: int = 1, initial_slope: float = 0.25):
        super().__init__()
        self.num_parameters = num_parameters
        self.weight = Parameter(init.ones((num_parameters,)) * initial_slope)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 4 and self.num_parameters > 1:
            slope = self.weight.reshape(1, self.num_parameters, 1, 1)
        else:
            slope = self.weight
        return x.relu() - slope * (-x).relu()

    def __repr__(self) -> str:
        return f"PReLU(num_parameters={self.num_parameters})"


class Sigmoid(Module):
    """Logistic sigmoid, used by the detection head."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Swish(Module):
    """Swish / SiLU activation ``x * sigmoid(x)`` (Ramachandran et al., 2017)."""

    def forward(self, x: Tensor) -> Tensor:
        return x * x.sigmoid()


class HardSigmoid(Module):
    """Piecewise-linear sigmoid approximation ``clip(x / 6 + 0.5, 0, 1)``.

    Used by MobileNetV3-style squeeze-and-excitation gates because it avoids
    the exponential on microcontrollers.
    """

    def forward(self, x: Tensor) -> Tensor:
        return (x * (1.0 / 6.0) + 0.5).clip(0.0, 1.0)


class HardSwish(Module):
    """Hardware-friendly Swish approximation ``x * hard_sigmoid(x)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x * (x * (1.0 / 6.0) + 0.5).clip(0.0, 1.0)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    _COEFF = math.sqrt(2.0 / math.pi)

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + x * x * x * 0.044715) * self._COEFF
        return x * 0.5 * (inner.tanh() + 1.0)


class Softmax(Module):
    """Softmax over a fixed axis (default: the trailing class dimension)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        shifted = x - x.max(axis=self.axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=self.axis, keepdims=True)

    def __repr__(self) -> str:
        return f"Softmax(axis={self.axis})"


class DecayableReLU(Module):
    """ReLU whose non-linearity can be annealed away (paper Eq. 2).

    Attributes
    ----------
    alpha:
        Slope applied to the negative part.  ``0`` gives an exact ReLU,
        ``1`` gives the identity function.  PLT increases ``alpha`` uniformly
        per iteration until the activation becomes linear.
    """

    def __init__(self, alpha: float = 0.0):
        super().__init__()
        self.alpha = float(alpha)

    def set_alpha(self, alpha: float) -> None:
        """Set the current linearisation factor, clamped to ``[0, 1]``."""
        self.alpha = float(min(max(alpha, 0.0), 1.0))

    @property
    def is_linear(self) -> bool:
        """True once the activation has fully decayed to the identity."""
        return self.alpha >= 1.0

    def forward(self, x: Tensor) -> Tensor:
        if self.alpha >= 1.0:
            return x
        if self.alpha <= 0.0:
            return x.relu()
        return x.leaky_relu(self.alpha)

    def __repr__(self) -> str:
        return f"DecayableReLU(alpha={self.alpha:.3f})"


class DecayableReLU6(DecayableReLU):
    """Decayable variant of ReLU6.

    The positive clip at 6 is interpolated away together with the negative
    slope so that ``alpha == 1`` is again an exact identity mapping::

        y = (1 - alpha) * clip(x, 0, 6) + alpha * x
    """

    def forward(self, x: Tensor) -> Tensor:
        if self.alpha >= 1.0:
            return x
        clipped = x.clip(0.0, 6.0)
        if self.alpha <= 0.0:
            return clipped
        return clipped * (1.0 - self.alpha) + x * self.alpha

    def __repr__(self) -> str:
        return f"DecayableReLU6(alpha={self.alpha:.3f})"
