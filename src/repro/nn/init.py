"""Weight initialisation schemes.

All functions return freshly allocated ``float32`` NumPy arrays; callers wrap
them in :class:`repro.nn.module.Parameter`.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros",
    "ones",
    "normal",
]

_rng = np.random.default_rng(0)


def set_init_rng(seed: int) -> None:
    """Reseed the module-level RNG used by all initialisers."""
    global _rng
    _rng = np.random.default_rng(seed)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # conv: (out, in/groups, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_normal(shape: tuple[int, ...], nonlinearity: str = "relu") -> np.ndarray:
    """He-normal initialisation suited to ReLU-family activations."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(max(fan_in, 1))
    return _rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...], nonlinearity: str = "relu") -> np.ndarray:
    """He-uniform initialisation."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * math.sqrt(3.0 / max(fan_in, 1))
    return _rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def normal(shape: tuple[int, ...], std: float = 0.01) -> np.ndarray:
    return _rng.normal(0.0, std, size=shape).astype(np.float32)
