"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro`` deep-learning substrate.  A ``Tensor`` wraps a ``numpy.ndarray``
and records the operations applied to it so that gradients can be computed
with a single call to :meth:`Tensor.backward`.

The design follows the classic define-by-run tape approach: every operation
returns a new ``Tensor`` whose ``_backward`` closure knows how to propagate
the output gradient to the inputs.  Only a small set of primitives is defined
here (arithmetic, reductions, shape manipulation); convolution, pooling and
normalisation primitives live in :mod:`repro.nn.functional` and plug into the
same tape mechanism.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient recording.

    Used during evaluation and inside optimiser update steps so that
    bookkeeping overhead and memory for the autograd tape are avoided.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to ``float32`` by default.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, dtype=np.float32):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._prev: tuple[Tensor, ...] = ()
        self.name: str | None = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], backward) -> "Tensor":
        """Build an output tensor wired into the autograd graph."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._prev = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Accumulate ``grad`` into this tensor's gradient buffer.

        ``owned=True`` asserts the caller freshly allocated ``grad`` and will
        not reuse it, letting the first accumulation adopt the buffer instead
        of copying it.  Ownership is only honoured for writable arrays that do
        not alias another array (``base is None``), so passing a view or a
        shared buffer with ``owned=True`` stays safe.
        """
        if not self.requires_grad:
            return
        g = np.asarray(grad)
        if g.dtype != self.data.dtype:
            g = g.astype(self.data.dtype)
            owned = True
        if g.shape != self.data.shape:
            g = _unbroadcast(g, self.data.shape)
            owned = True
        if self.grad is None:
            if owned and g.base is None and g.flags.writeable:
                self.grad = g
            else:
                self.grad = g.copy()
        else:
            self.grad += g

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate through the graph rooted at this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the graph (iterative DFS to avoid recursion limits).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate gradients that are no longer needed to
                # keep memory bounded during long training loops.
                if node is not self and not node._is_leaf():
                    node.grad = None

    def _is_leaf(self) -> bool:
        return not self._prev

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data + other.data

        def backward(grad):
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data * other.data

        def backward(grad):
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data / other.data

        def backward(grad):
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data @ other.data

        def backward(grad):
            self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad):
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]`` (gradient is zero outside)."""
        data = np.clip(self.data, low, high)

        def backward(grad):
            mask = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        """Elementwise maximum with subgradient split at ties."""
        other = Tensor._coerce(other)
        data = np.maximum(self.data, other.data)

        def backward(grad):
            self_mask = self.data >= other.data
            self._accumulate(grad * self_mask)
            other._accumulate(grad * (~self_mask))

        return Tensor._make(data, (self, other), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad):
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, slope: float) -> "Tensor":
        """``max(slope * x, x)`` — the decayable activation used by PLT."""
        data = np.where(self.data >= 0, self.data, slope * self.data)

        def backward(grad):
            self._accumulate(grad * np.where(self.data >= 0, 1.0, slope))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(np.asarray(data), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean reduction as a single fused tape node.

        Implemented directly (rather than ``sum`` followed by a scalar
        multiply) so one graph node and one backward broadcast cover the whole
        reduction.
        """
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        data = self.data.mean(axis=axis, keepdims=keepdims)
        inv_count = 1.0 / max(count, 1)

        def backward(grad):
            g = np.asarray(grad) * inv_count
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(np.asarray(data), (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(mask * g)

        return Tensor._make(np.asarray(data), (self,), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad):
            self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(np.asarray(grad).transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        shape = self.data.shape[:start_dim] + (-1,)
        return self.reshape(shape)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(np.asarray(data), (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding), (padding, padding)]
        data = np.pad(self.data, pad_width)

        def backward(grad):
            slices = [slice(None)] * (self.data.ndim - 2) + [
                slice(padding, -padding),
                slice(padding, -padding),
            ]
            self._accumulate(np.asarray(grad)[tuple(slices)])

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # composition helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad):
            grad = np.asarray(grad)
            offset = 0
            for t, size in zip(tensors, sizes):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(offset, offset + size)
                t._accumulate(grad[tuple(index)])
                offset += size

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t.reshape(t.shape) for t in tensors]
        expanded = [t.reshape(t.shape[:axis] + (1,) + t.shape[axis:]) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)
