"""Additional normalisation layers beyond :class:`~repro.nn.layers.BatchNorm2d`.

These layers are part of the general-purpose substrate: Group/Layer/Instance
normalisation are composed from differentiable :class:`~repro.nn.tensor.Tensor`
primitives (no hand-written backward pass needed), and
:class:`FrozenBatchNorm2d` provides the inference-only affine form produced by
batch-norm folding, which the contraction step (paper Eq. 3-4) relies on.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "GroupNorm",
    "LayerNorm",
    "InstanceNorm2d",
    "FrozenBatchNorm2d",
]


class GroupNorm(Module):
    """Group normalisation over an NCHW tensor (Wu & He, 2018).

    Channels are split into ``num_groups`` groups; mean and variance are
    computed per sample and per group, so the statistics do not depend on the
    batch size.  With ``num_groups == 1`` this is layer normalisation over
    ``(C, H, W)``; with ``num_groups == num_channels`` it is instance
    normalisation.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5, affine: bool = True):
        super().__init__()
        if num_channels % num_groups != 0:
            raise ValueError(
                f"num_channels ({num_channels}) must be divisible by num_groups ({num_groups})"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones((num_channels,)))
            self.bias = Parameter(init.zeros((num_channels,)))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        grouped = x.reshape(n, self.num_groups, c // self.num_groups, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        centered = grouped - mean
        var = (centered * centered).mean(axis=(2, 3, 4), keepdims=True)
        normalised = centered / (var + self.eps).sqrt()
        out = normalised.reshape(n, c, h, w)
        if self.affine:
            out = out * self.weight.reshape(1, c, 1, 1) + self.bias.reshape(1, c, 1, 1)
        return out

    def __repr__(self) -> str:
        return f"GroupNorm({self.num_groups}, {self.num_channels}, affine={self.affine})"


class LayerNorm(Module):
    """Layer normalisation over the trailing feature dimension of a 2-D input.

    Used by classifier heads and, in general, anywhere a batch-size-independent
    normaliser is preferable (e.g. tiny-batch finetuning on downstream tasks).
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5, affine: bool = True):
        super().__init__()
        self.normalized_shape = int(normalized_shape)
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones((self.normalized_shape,)))
            self.bias = Parameter(init.zeros((self.normalized_shape,)))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_shape:
            raise ValueError(
                f"expected trailing dimension {self.normalized_shape}, got {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        out = centered / (var + self.eps).sqrt()
        if self.affine:
            out = out * self.weight + self.bias
        return out

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape}, affine={self.affine})"


class InstanceNorm2d(Module):
    """Instance normalisation: per-sample, per-channel spatial statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, affine: bool = False):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones((num_features,)))
            self.bias = Parameter(init.zeros((num_features,)))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.num_features:
            raise ValueError(f"expected {self.num_features} channels, got {c}")
        mean = x.mean(axis=(2, 3), keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=(2, 3), keepdims=True)
        out = centered / (var + self.eps).sqrt()
        if self.affine:
            out = out * self.weight.reshape(1, c, 1, 1) + self.bias.reshape(1, c, 1, 1)
        return out

    def __repr__(self) -> str:
        return f"InstanceNorm2d({self.num_features}, affine={self.affine})"


class FrozenBatchNorm2d(Module):
    """Batch norm with fixed statistics and affine parameters.

    The forward pass is the purely affine map ``y = scale * x + shift`` with
    per-channel constants, which is exactly what folding a trained
    :class:`~repro.nn.layers.BatchNorm2d` produces.  Because it is affine it
    never blocks the kernel-merging step of block contraction.
    """

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.register_buffer("weight", np.ones(num_features, dtype=np.float32))
        self.register_buffer("bias", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    @classmethod
    def from_batch_norm(cls, bn) -> "FrozenBatchNorm2d":
        """Copy the statistics and affine parameters of a live ``BatchNorm2d``."""
        frozen = cls(bn.num_features, eps=bn.eps)
        frozen.weight[...] = bn.weight.data
        frozen.bias[...] = bn.bias.data
        frozen.running_mean[...] = bn.running_mean
        frozen.running_var[...] = bn.running_var
        return frozen

    def scale_and_shift(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the equivalent per-channel affine ``(scale, shift)`` pair."""
        scale = self.weight / np.sqrt(self.running_var + self.eps)
        shift = self.bias - self.running_mean * scale
        return scale, shift

    def forward(self, x: Tensor) -> Tensor:
        scale, shift = self.scale_and_shift()
        c = self.num_features
        return x * Tensor(scale.reshape(1, c, 1, 1)) + Tensor(shift.reshape(1, c, 1, 1))

    def __repr__(self) -> str:
        return f"FrozenBatchNorm2d({self.num_features})"
