"""Pure-NumPy neural-network substrate used by the NetBooster reproduction.

The subpackage provides:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autograd on NumPy arrays;
* :mod:`~repro.nn.functional` — convolution, pooling, normalisation, losses;
* a small module system (:class:`~repro.nn.module.Module`,
  :class:`~repro.nn.module.Parameter`, :class:`~repro.nn.module.Sequential`);
* standard layers, normalisation variants, loss modules and activations,
  including the :class:`~repro.nn.activations.DecayableReLU` central to
  Progressive Linearization Tuning.
"""

from . import functional, init
from .activations import (
    GELU,
    DecayableReLU,
    DecayableReLU6,
    HardSigmoid,
    HardSwish,
    LeakyReLU,
    PReLU,
    ReLU,
    ReLU6,
    Sigmoid,
    Softmax,
    Swish,
    Tanh,
)
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
)
from .losses import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    FocalLoss,
    KLDivergenceLoss,
    MSELoss,
    SmoothL1Loss,
    SoftTargetCrossEntropy,
)
from .module import Identity, Module, ModuleList, Parameter, Sequential
from .norm import FrozenBatchNorm2d, GroupNorm, InstanceNorm2d, LayerNorm
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Identity",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "InstanceNorm2d",
    "FrozenBatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Flatten",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "PReLU",
    "Sigmoid",
    "Tanh",
    "Swish",
    "HardSigmoid",
    "HardSwish",
    "GELU",
    "Softmax",
    "DecayableReLU",
    "DecayableReLU6",
    "CrossEntropyLoss",
    "SoftTargetCrossEntropy",
    "KLDivergenceLoss",
    "MSELoss",
    "SmoothL1Loss",
    "BCEWithLogitsLoss",
    "FocalLoss",
    "functional",
    "init",
]
