"""Module system: parameters, buffers and composable network components.

The design mirrors the familiar ``torch.nn.Module`` contract at a much
smaller scale: modules register :class:`Parameter` attributes and child
modules automatically, support train/eval switching, and can export /
import flat state dictionaries for checkpointing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "Identity", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor; automatically registered by :class:`Module`."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all network components.

    Subclasses define parameters/child modules in ``__init__`` and implement
    :meth:`forward`.  Attribute assignment handles registration, so the usual
    idiom applies::

        class Block(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(8, 16, 3)

            def forward(self, x):
                return self.conv(x)
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable state array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def children(self) -> list["Module"]:
        return list(self._modules.values())

    def named_children(self) -> list[tuple[str, "Module"]]:
        return list(self._modules.items())

    def get_submodule(self, path: str) -> "Module":
        """Return the child module addressed by a dotted ``path``."""
        module: Module = self
        if path == "":
            return module
        for part in path.split("."):
            if part not in module._modules:
                raise KeyError(f"no submodule named {path!r} (missing {part!r})")
            module = module._modules[part]
        return module

    def set_submodule(self, path: str, new_module: "Module") -> None:
        """Replace the child module addressed by a dotted ``path``."""
        if path == "":
            raise ValueError("cannot replace the root module")
        *parents, leaf = path.split(".")
        parent = self.get_submodule(".".join(parents))
        if leaf not in parent._modules:
            raise KeyError(f"no submodule named {path!r}")
        setattr(parent, leaf, new_module)

    # ------------------------------------------------------------------ #
    # train / eval and gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag: bool = True) -> "Module":
        for param in self.parameters():
            param.requires_grad = flag
        return self

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing = []
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                params[name].data[...] = value
            elif name in buffers:
                buffers[name][...] = value
            elif strict:
                missing.append(name)
        if strict:
            absent = (set(params) | set(buffers)) - set(state)
            if missing or absent:
                raise KeyError(f"unexpected keys {missing}, missing keys {sorted(absent)}")

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines)


class Identity(Module):
    """A no-op module, handy as a placeholder after layer removal."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """A list container whose elements are registered as child modules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        for index, module in enumerate(modules or []):
            setattr(self, str(index), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called directly")
