"""Content-addressed on-disk result cache for the experiment orchestrator.

Every orchestrator job (a shared training step or a full experiment) is
identified by a SHA-256 digest over its *code-relevant* inputs: the job name,
the :class:`~repro.experiments.registry.ExperimentScale` fields, a fingerprint
of the Python source implementing the job plus the training-pipeline modules
it calls into (see ``pipeline_fingerprint`` in the registry), and the keys of
its dependencies.  Re-running with the same inputs is therefore a pure cache
hit, while editing an experiment function or the core training code
invalidates the stale entries.  Changes outside the fingerprinted modules
(e.g. the autograd substrate) are not tracked — bump :data:`CACHE_VERSION`
after such a change to invalidate everything.

A cache entry is a directory holding

* ``entry.json`` — the JSON-serialisable payload (scalars, histories, rows);
* ``states.npz`` — zero or more named model state dicts (NumPy arrays).

Entries are written atomically (build in a temp directory, then ``rename``
into place) so concurrent orchestrator workers can safely race on the same
key: the loser simply discards its copy.

Examples
--------
Digests are order-insensitive over mappings and stable across processes:

>>> config_digest({"b": 1, "a": 2}) == config_digest({"a": 2, "b": 1})
True
>>> len(config_digest("anything"))
64
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

__all__ = [
    "CACHE_VERSION",
    "Artifact",
    "ResultCache",
    "config_digest",
    "default_cache_dir",
    "source_fingerprint",
]

#: Bump to invalidate every existing cache entry after an incompatible change
#: to the on-disk layout or the artifact conventions.
CACHE_VERSION = 1


def _json_default(value: Any):
    """Make NumPy scalars/arrays JSON-serialisable (used by every dump here)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"not JSON-serialisable: {type(value)!r}")


def config_digest(*parts: Any) -> str:
    """Stable SHA-256 hex digest of arbitrary JSON-serialisable values.

    Parameters
    ----------
    *parts:
        Values hashed in order.  Mappings are canonicalised (sorted keys), so
        dictionaries digest identically regardless of insertion order.

    Returns
    -------
    str
        A 64-character lowercase hex digest.
    """
    blob = json.dumps(parts, sort_keys=True, default=_json_default, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def source_fingerprint(*objs: Callable | type) -> str:
    """Digest of the Python source of the given functions/classes.

    Used as the "code-relevant" component of a cache key: editing a step or
    experiment implementation changes its fingerprint and therefore its key.
    Objects whose source cannot be retrieved (builtins, C extensions) fall
    back to their qualified name.
    """
    chunks = []
    for obj in objs:
        try:
            chunks.append(inspect.getsource(obj))
        except (OSError, TypeError):
            chunks.append(getattr(obj, "__qualname__", repr(obj)))
    return config_digest(chunks)


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly.

    Resolution order: the ``REPRO_CACHE_DIR`` environment variable, then
    ``.repro_cache/`` under the current working directory.
    """
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


@dataclass
class Artifact:
    """The value produced by one cached job.

    Attributes
    ----------
    meta:
        JSON-serialisable metadata — accuracies, training histories, result
        rows.  Stored in ``entry.json``.
    states:
        Named model state dicts (``{"model": {param_name: ndarray, ...}}``).
        Stored in ``states.npz``.
    """

    meta: dict = field(default_factory=dict)
    states: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)


class ResultCache:
    """Content-addressed artifact store on the local filesystem.

    Parameters
    ----------
    root:
        Directory holding the cache.  Created lazily on first write.

    Examples
    --------
    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp())
    >>> key = config_digest("demo", 1)
    >>> cache.load(key) is None
    True
    >>> cache.store(key, Artifact(meta={"accuracy": 51.2}))
    >>> cache.load(key).meta["accuracy"]
    51.2
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    def _entry_dir(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key

    def has(self, key: str) -> bool:
        """Whether a complete entry for ``key`` exists on disk."""
        return (self._entry_dir(key) / "entry.json").is_file()

    # ------------------------------------------------------------------ #
    # read / write
    # ------------------------------------------------------------------ #
    def load(self, key: str) -> Artifact | None:
        """Load the artifact stored under ``key``.

        Returns
        -------
        Artifact or None
            ``None`` on a cache miss.  An unreadable/corrupt entry (e.g. a
            truncated write from a crashed run) is deleted and treated as a
            miss, so the next :meth:`store` can repair it.
        """
        entry = self._entry_dir(key)
        if not (entry / "entry.json").is_file():
            return None
        try:
            with open(entry / "entry.json", "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            states: dict[str, dict[str, np.ndarray]] = {}
            states_path = entry / "states.npz"
            if states_path.is_file():
                with np.load(states_path, allow_pickle=False) as archive:
                    for name in archive.files:
                        group, _, param = name.partition("::")
                        states.setdefault(group, {})[param] = archive[name]
        except Exception:
            # Corrupt entry: evict it so it is recomputed and re-stored
            # instead of failing (or silently recomputing) forever.
            shutil.rmtree(entry, ignore_errors=True)
            return None
        return Artifact(meta=meta, states=states)

    def store(self, key: str, artifact: Artifact) -> None:
        """Atomically write ``artifact`` under ``key`` (last writer loses).

        The entry is assembled in a temporary directory and renamed into
        place; if another process stored the same key first, the freshly
        built copy is discarded — content-addressed entries for the same key
        are interchangeable by construction.
        """
        final = self._entry_dir(key)
        if self.has(key):
            return
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=f".{key[:8]}-", dir=final.parent))
        try:
            with open(tmp / "entry.json", "w", encoding="utf-8") as handle:
                json.dump(artifact.meta, handle, default=_json_default, indent=1)
            if artifact.states:
                flat = {
                    f"{group}::{param}": np.asarray(array)
                    for group, state in artifact.states.items()
                    for param, array in state.items()
                }
                np.savez(tmp / "states.npz", **flat)
            try:
                os.rename(tmp, final)
            except OSError:
                # Lost the race: a complete entry already exists.
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    def memoize(self, key: str, compute: Callable[[], Artifact]) -> tuple[Artifact, bool]:
        """Return the cached artifact for ``key``, computing it on a miss.

        Returns
        -------
        (Artifact, bool)
            The artifact and whether it came from the cache (``True`` = hit).
        """
        cached = self.load(key)
        if cached is not None:
            return cached, True
        artifact = compute()
        self.store(key, artifact)
        return artifact, False

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Delete every cache entry (the root directory itself is kept)."""
        shutil.rmtree(self.root / "objects", ignore_errors=True)

    def stats(self) -> Mapping[str, int]:
        """Entry count and total size in bytes of the on-disk cache."""
        entries = 0
        size = 0
        objects = self.root / "objects"
        if objects.is_dir():
            for path in objects.rglob("*"):
                if path.is_file():
                    size += path.stat().st_size
                    if path.name == "entry.json":
                        entries += 1
        return {"entries": entries, "bytes": size}
