"""Programmatic access to the paper's experiments.

The ``benchmarks/`` directory regenerates every table and figure of the paper
under ``pytest-benchmark``; this subpackage exposes the same comparisons as a
library API, a CLI (``python -m repro.experiments``) and — through
:mod:`repro.experiments.orchestrator` — a parallel job runner with an on-disk
result cache (:mod:`repro.experiments.cache`), so the whole suite reproduces
with one command::

    python -m repro.experiments run-all --workers 4 --scale tiny --out results/

Every experiment returns a list of :class:`ResultRow` (method / setting name,
paper value, measured value), which is what the CLI prints and the
orchestrator writes into its JSON/Markdown reports.

Examples
--------
Run a single experiment in-process (the analytic ``cost`` experiment needs no
training):

>>> from repro.experiments import run_experiment, ExperimentScale
>>> rows = run_experiment("cost", ExperimentScale.tiny())
>>> [row.setting for row in rows]
['mobilenetv2-tiny', 'mcunet', 'mobilenetv2-50', 'mobilenetv2-100']

Experiments declare the shared artifacts they depend on, which is what lets
the orchestrator train each one exactly once:

>>> from repro.experiments import EXPERIMENTS
>>> EXPERIMENTS["table4"].deps
('netbooster/mobilenetv2-tiny',)
"""

from .cache import Artifact, ResultCache
from .registry import (
    EXPERIMENTS,
    Experiment,
    ExperimentScale,
    ResultRow,
    SharedStep,
    StepContext,
    available_experiments,
    run_experiment,
    shared_step,
)

__all__ = [
    "Artifact",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentScale",
    "ResultCache",
    "ResultRow",
    "SharedStep",
    "StepContext",
    "available_experiments",
    "run_experiment",
    "shared_step",
]
