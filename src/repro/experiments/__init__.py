"""Programmatic access to the paper's experiments.

The ``benchmarks/`` directory regenerates every table and figure of the paper
under ``pytest-benchmark``; this subpackage exposes the same comparisons as a
library API (and a small CLI, ``python -m repro.experiments``) so that a
downstream user can re-run an individual experiment at an arbitrary scale
without going through pytest:

>>> from repro.experiments import run_experiment, ExperimentScale
>>> rows = run_experiment("table1", ExperimentScale.tiny())
>>> for row in rows:
...     print(row)

Every experiment returns a list of :class:`ResultRow` (method / setting name,
paper value, measured value), which is also what the CLI prints.
"""

from .registry import (
    EXPERIMENTS,
    ExperimentScale,
    ResultRow,
    available_experiments,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentScale",
    "ResultRow",
    "available_experiments",
    "run_experiment",
]
