"""Parallel experiment orchestrator: run the registry as a DAG of cached jobs.

The orchestrator turns a list of experiment names into a job graph — the
experiments themselves plus the transitive closure of their shared steps
(:func:`~repro.experiments.registry.shared_step`) — then executes it with a
multiprocessing worker pool.  Every job is keyed content-addressed in the
on-disk :class:`~repro.experiments.cache.ResultCache`, so

* shared sub-artifacts (e.g. the pretrained deep giant reused by four
  tables) are trained exactly once per cache lifetime;
* a re-run of ``run-all`` is a pure cache replay and completes in seconds;
* an interrupted run resumes from its manifest file, skipping finished jobs.

Command line::

    python -m repro.experiments run-all --workers 4 --scale tiny --out results/

Programmatic::

    from repro.experiments.orchestrator import Orchestrator
    report = Orchestrator(scale, cache_dir=".repro_cache", workers=4,
                          out_dir="results").run(["table1", "table4"])

Examples
--------
The plan for one experiment includes its transitive shared steps:

>>> sorted(build_plan(["table4"]))
['experiment/table4', 'step/giant/mobilenetv2-tiny', 'step/netbooster/mobilenetv2-tiny']
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from .cache import Artifact, ResultCache
from .registry import (
    EXPERIMENTS,
    ExperimentScale,
    ResultRow,
    StepContext,
    available_experiments,
    shared_step,
)

__all__ = ["JobSpec", "JobOutcome", "RunReport", "Orchestrator", "build_plan"]

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class JobSpec:
    """One node of the execution DAG.

    Attributes
    ----------
    job_id:
        ``"step/<name>"`` or ``"experiment/<name>"``.
    kind:
        ``"step"`` | ``"experiment"``.
    name:
        Shared-step or experiment name.
    deps:
        ``job_id`` values that must complete first.
    """

    job_id: str
    kind: str
    name: str
    deps: tuple[str, ...] = ()


@dataclass
class JobOutcome:
    """Result of executing (or skipping) one job."""

    job_id: str
    key: str
    status: str = "done"  # "done" | "failed"
    cached: bool = False
    seconds: float = 0.0
    rows: list[dict] = field(default_factory=list)
    error: str = ""


@dataclass
class RunReport:
    """Everything :meth:`Orchestrator.run` produces."""

    scale: str
    workers: int
    outcomes: dict[str, JobOutcome]
    seconds: float

    @property
    def cached_jobs(self) -> int:
        return sum(1 for outcome in self.outcomes.values() if outcome.cached)

    @property
    def failed_jobs(self) -> list[str]:
        return sorted(j for j, o in self.outcomes.items() if o.status == "failed")

    def rows_for(self, experiment: str) -> list[ResultRow]:
        """The result rows of one experiment as :class:`ResultRow` objects."""
        outcome = self.outcomes[f"experiment/{experiment}"]
        return [ResultRow(**row) for row in outcome.rows]


def build_plan(experiments: Iterable[str]) -> dict[str, JobSpec]:
    """Expand experiment names into the full DAG (steps + experiments).

    Parameters
    ----------
    experiments:
        Registry names; unknown names raise ``KeyError``.

    Returns
    -------
    dict[str, JobSpec]
        Keyed by ``job_id``; dependencies refer to other ``job_id`` values.
    """
    plan: dict[str, JobSpec] = {}

    def add_step(name: str) -> str:
        job_id = f"step/{name}"
        if job_id not in plan:
            step = shared_step(name)
            dep_ids = tuple(add_step(dep) for dep in step.deps)
            plan[job_id] = JobSpec(job_id=job_id, kind="step", name=name, deps=dep_ids)
        return job_id

    for name in experiments:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; available: {available_experiments()}")
        dep_ids = tuple(add_step(dep) for dep in EXPERIMENTS[name].deps)
        job_id = f"experiment/{name}"
        plan[job_id] = JobSpec(job_id=job_id, kind="experiment", name=name, deps=dep_ids)
    return plan


def _execute_job(payload: dict) -> dict:
    """Worker entry point: run one job against the shared on-disk cache.

    ``payload`` is a plain dict so it pickles under any start method:
    ``{"kind", "name", "scale": {...}, "cache_root": str}``.  Dependencies
    are guaranteed to be in the cache already (the parent only submits a job
    once its deps completed), so :meth:`StepContext.dep` hits disk, not CPU.
    """
    scale = ExperimentScale(**payload["scale"])
    cache = ResultCache(payload["cache_root"])
    ctx = StepContext(scale, cache)
    started = time.perf_counter()
    if payload["kind"] == "step":
        step = shared_step(payload["name"])
        key = ctx.step_key(payload["name"])
        _artifact, hit = cache.memoize(key, lambda: step.fn(scale, ctx))
        rows: list[dict] = []
    else:
        key = ctx.experiment_key(payload["name"])

        def compute() -> Artifact:
            result = EXPERIMENTS[payload["name"]].fn(scale, ctx)
            return Artifact(meta={"rows": [row.to_dict() for row in result]})

        artifact, hit = cache.memoize(key, compute)
        rows = artifact.meta["rows"]
    return {"key": key, "rows": rows, "cached": hit, "seconds": time.perf_counter() - started}


class Orchestrator:
    """Schedule and execute experiment DAGs over a process pool.

    Parameters
    ----------
    scale:
        Workload profile shared by every job, or a profile name
        (``"tiny"`` | ``"small"`` | ``"full"``).
    cache_dir:
        Root of the content-addressed result cache.  Defaults to
        ``$REPRO_CACHE_DIR`` or ``.repro_cache``.
    workers:
        Worker processes.  ``1`` executes inline (no pool), which is also
        the fallback when a pool cannot be created.
    out_dir:
        Where the manifest and per-experiment reports are written.  ``None``
        disables report/manifest emission (and manifest-based resume).
    progress:
        Callable receiving one human-readable line per job event.
    """

    def __init__(
        self,
        scale: ExperimentScale | str = "small",
        cache_dir: str | os.PathLike | None = None,
        workers: int = 1,
        out_dir: str | os.PathLike | None = None,
        progress: Callable[[str], None] | None = None,
    ):
        self.scale = ExperimentScale.named(scale) if isinstance(scale, str) else scale
        self.cache = ResultCache(cache_dir)
        self.workers = max(int(workers), 1)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.progress = progress or (lambda line: None)

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    def _manifest_path(self) -> Path | None:
        return self.out_dir / MANIFEST_NAME if self.out_dir is not None else None

    def _load_manifest(self) -> dict:
        path = self._manifest_path()
        if path is None or not path.is_file():
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return {}

    def _write_manifest(self, outcomes: dict[str, JobOutcome], started: float) -> None:
        path = self._manifest_path()
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": 1,
            "scale": asdict(self.scale),
            "workers": self.workers,
            "elapsed_seconds": round(time.perf_counter() - started, 3),
            "jobs": {
                job_id: {
                    "key": outcome.key,
                    "status": outcome.status,
                    "cached": outcome.cached,
                    "seconds": round(outcome.seconds, 3),
                }
                for job_id, outcome in outcomes.items()
            },
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, experiments: Iterable[str] | None = None, resume: bool = True) -> RunReport:
        """Execute the DAG for ``experiments`` (default: the whole registry).

        Parameters
        ----------
        experiments:
            Experiment names; ``None`` runs every registered experiment.
        resume:
            Reuse the manifest in ``out_dir`` (and the result cache) to skip
            jobs that already completed with identical keys.  ``False``
            re-dispatches every job, but workers still read the
            content-addressed cache — use a fresh cache directory for a
            truly cold run.

        Returns
        -------
        RunReport
        """
        names = list(experiments) if experiments is not None else available_experiments()
        plan = build_plan(names)
        ctx = StepContext(self.scale, self.cache)
        keys = {
            job_id: (ctx.step_key(spec.name) if spec.kind == "step" else ctx.experiment_key(spec.name))
            for job_id, spec in plan.items()
        }
        manifest_jobs = self._load_manifest().get("jobs", {}) if resume else {}

        started = time.perf_counter()
        outcomes: dict[str, JobOutcome] = {}
        pending = dict(plan)

        # Resolve completed jobs up front — they finish instantly.  A job is
        # complete when its content-addressed entry exists in the cache; the
        # manifest from an interrupted run tells us which of those hits are a
        # *resume* (the keys must still match — a code or scale change since
        # the previous run produces different keys and forces a re-run).
        resumed = 0
        for job_id, spec in list(pending.items()):
            key = keys[job_id]
            if not (resume and self.cache.has(key)):
                continue
            previous = manifest_jobs.get(job_id, {})
            if previous.get("status") == "done" and previous.get("key") == key:
                resumed += 1
            rows: list[dict] = []
            if spec.kind == "experiment":
                artifact = self.cache.load(key)
                rows = artifact.meta.get("rows", []) if artifact else []
            outcomes[job_id] = JobOutcome(job_id=job_id, key=key, cached=True, rows=rows)
            del pending[job_id]
            self.progress(f"[cached] {job_id}")
        if resumed:
            self.progress(f"[resume] {resumed} job(s) already complete per {MANIFEST_NAME}")

        self._run_pending(pending, keys, outcomes, started)

        report = RunReport(
            scale=str(self.scale),
            workers=self.workers,
            outcomes=outcomes,
            seconds=time.perf_counter() - started,
        )
        self._write_manifest(outcomes, started)
        self._write_reports(report, names)
        return report

    def _run_pending(
        self,
        pending: dict[str, JobSpec],
        keys: dict[str, str],
        outcomes: dict[str, JobOutcome],
        started: float,
    ) -> None:
        """Dependency-ordered execution of the not-yet-cached jobs."""

        def ready_jobs() -> list[JobSpec]:
            return [
                spec
                for spec in pending.values()
                if all(dep not in pending for dep in spec.deps)
                and all(outcomes.get(dep, JobOutcome("", "")).status == "done" for dep in spec.deps)
            ]

        def failed_by_dep(spec: JobSpec) -> str | None:
            for dep in spec.deps:
                if dep in outcomes and outcomes[dep].status == "failed":
                    return dep
            return None

        def payload(spec: JobSpec) -> dict:
            return {
                "kind": spec.kind,
                "name": spec.name,
                "scale": asdict(self.scale),
                "cache_root": str(self.cache.root),
            }

        def record(spec: JobSpec, result: dict | None, error: str = "") -> None:
            if result is None:
                outcomes[spec.job_id] = JobOutcome(
                    job_id=spec.job_id, key=keys[spec.job_id], status="failed", error=error
                )
                self.progress(f"[failed] {spec.job_id}: {error}")
            else:
                outcomes[spec.job_id] = JobOutcome(
                    job_id=spec.job_id,
                    key=result["key"],
                    cached=result.get("cached", False),
                    seconds=result["seconds"],
                    rows=result["rows"],
                )
                self.progress(f"[done]   {spec.job_id} ({result['seconds']:.1f}s)")
            del pending[spec.job_id]
            try:
                self._write_manifest(outcomes, started)
            except OSError as exc:
                # Losing an incremental manifest update (disk full, perms) must
                # not abort the run — the final write after run() retries.
                self.progress(f"[warn]   manifest update failed: {exc}")

        def drop_blocked() -> None:
            # Jobs whose dependency failed can never run; fail them too.
            changed = True
            while changed:
                changed = False
                for spec in list(pending.values()):
                    dep = failed_by_dep(spec)
                    if dep is not None:
                        record(spec, None, error=f"dependency failed: {dep}")
                        changed = True

        if self.workers == 1:
            while pending:
                batch = ready_jobs()
                if not batch:
                    drop_blocked()
                    if pending and not ready_jobs():
                        raise RuntimeError(f"orchestrator deadlock; stuck jobs: {sorted(pending)}")
                    continue
                for spec in batch:
                    self.progress(f"[run]    {spec.job_id}")
                    try:
                        record(spec, _execute_job(payload(spec)))
                    except Exception as exc:  # keep independent branches running
                        record(spec, None, error=f"{type(exc).__name__}: {exc}")
                drop_blocked()
            return

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            in_flight: dict = {}
            while pending or in_flight:
                for spec in ready_jobs():
                    if spec.job_id not in in_flight:
                        self.progress(f"[run]    {spec.job_id}")
                        in_flight[spec.job_id] = (pool.submit(_execute_job, payload(spec)), spec)
                if not in_flight:
                    drop_blocked()
                    if pending and not ready_jobs():
                        raise RuntimeError(f"orchestrator deadlock; stuck jobs: {sorted(pending)}")
                    continue
                done, _ = wait([future for future, _ in in_flight.values()], return_when=FIRST_COMPLETED)
                for job_id, (future, spec) in list(in_flight.items()):
                    if future in done:
                        del in_flight[job_id]
                        try:
                            record(spec, future.result())
                        except Exception as exc:
                            record(spec, None, error=f"{type(exc).__name__}: {exc}")
                drop_blocked()

    # ------------------------------------------------------------------ #
    # reports
    # ------------------------------------------------------------------ #
    def _write_reports(self, report: RunReport, names: list[str]) -> None:
        """Emit per-experiment JSON + Markdown and a run-level summary."""
        if self.out_dir is None:
            return
        self.out_dir.mkdir(parents=True, exist_ok=True)
        summary_lines = [
            "# Experiment run report",
            "",
            f"- scale: `{self.scale}`",
            f"- workers: {report.workers}",
            f"- wall-clock: {report.seconds:.1f}s",
            f"- jobs: {len(report.outcomes)} total, {report.cached_jobs} cache hits, "
            f"{len(report.failed_jobs)} failed",
            "",
            "| experiment | status | seconds | cached | report |",
            "|---|---|---|---|---|",
        ]
        for name in names:
            outcome = report.outcomes.get(f"experiment/{name}")
            if outcome is None:
                continue
            if outcome.status == "done":
                self._write_experiment_report(name, outcome)
            summary_lines.append(
                f"| {name} | {outcome.status} | {outcome.seconds:.1f} | "
                f"{'yes' if outcome.cached else 'no'} | [{name}.md]({name}.md) |"
            )
        summary_lines += [
            "",
            "## Shared steps",
            "",
            "| step | status | seconds | cached |",
            "|---|---|---|---|",
        ]
        for job_id, outcome in sorted(report.outcomes.items()):
            if job_id.startswith("step/"):
                summary_lines.append(
                    f"| {job_id[len('step/'):]} | {outcome.status} | {outcome.seconds:.1f} | "
                    f"{'yes' if outcome.cached else 'no'} |"
                )
        (self.out_dir / "REPORT.md").write_text("\n".join(summary_lines) + "\n", encoding="utf-8")

    def _write_experiment_report(self, name: str, outcome: JobOutcome) -> None:
        title = EXPERIMENTS[name].title or name
        with open(self.out_dir / f"{name}.json", "w", encoding="utf-8") as handle:
            json.dump(
                {"experiment": name, "title": title, "key": outcome.key,
                 "cached": outcome.cached, "seconds": round(outcome.seconds, 3),
                 "rows": outcome.rows},
                handle,
                indent=1,
            )
        lines = [
            f"# {title}",
            "",
            "| setting | paper | measured | unit |",
            "|---|---|---|---|",
        ]
        for row in outcome.rows:
            paper = "-" if row["paper_value"] is None else f"{row['paper_value']:.2f}"
            lines.append(f"| {row['setting']} | {paper} | {row['measured_value']:.2f} | {row['unit']} |")
        (self.out_dir / f"{name}.md").write_text("\n".join(lines) + "\n", encoding="utf-8")
