"""Command-line entry point: ``python -m repro.experiments [name ...]``.

Examples
--------
List the available experiments::

    python -m repro.experiments --list

Run the Table I comparison at the default (CPU-friendly) scale::

    python -m repro.experiments table1

Run two ablations at the seconds-scale smoke-test workload::

    python -m repro.experiments table4 table6 --tiny
"""

from __future__ import annotations

import argparse

from .registry import ExperimentScale, available_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Re-run individual NetBooster paper experiments on the synthetic substrate.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list); default: the analytic 'cost' experiment",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--tiny", action="store_true", help="use the seconds-scale smoke-test workload")
    parser.add_argument("--classes", type=int, default=None, help="override the number of corpus classes")
    parser.add_argument("--epochs", type=int, default=None, help="override the pretraining epochs")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in available_experiments():
            print(name)
        return 0

    scale = ExperimentScale.tiny() if args.tiny else ExperimentScale()
    overrides = {}
    if args.classes is not None:
        overrides["num_classes"] = args.classes
    if args.epochs is not None:
        overrides["pretrain_epochs"] = args.epochs
    if args.seed:
        overrides["seed"] = args.seed
    if overrides:
        scale = ExperimentScale(**{**scale.__dict__, **overrides})

    names = args.experiments or ["cost"]
    for name in names:
        print(f"\n--- {name} ---")
        for row in run_experiment(name, scale):
            print(row)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
