"""Command-line entry point: ``python -m repro.experiments``.

Examples
--------
Print usage and the available experiments (also the no-argument behaviour)::

    python -m repro.experiments
    python -m repro.experiments list

Reproduce every paper table/figure through the parallel orchestrator, with
per-table reports and a resumable manifest under ``results/``::

    python -m repro.experiments run-all --workers 4 --scale tiny --out results/

Run a subset through the orchestrator (same cache, same reports)::

    python -m repro.experiments run table1 table4 --workers 2 --scale tiny

Legacy single-process mode (no cache, rows printed to stdout)::

    python -m repro.experiments table4 table6 --tiny
"""

from __future__ import annotations

import argparse
import sys

from .registry import ExperimentScale, available_experiments, run_experiment


def _print_usage(stream=None) -> None:
    stream = stream or sys.stdout
    print(__doc__.strip(), file=stream)
    print("\nAvailable experiments:", file=stream)
    for name in available_experiments():
        print(f"  {name}", file=stream)


def build_parser() -> argparse.ArgumentParser:
    """The legacy single-process parser (``python -m repro.experiments NAME``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Re-run individual NetBooster paper experiments on the synthetic substrate.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see `list`); none prints usage",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--tiny", action="store_true", help="use the seconds-scale smoke-test workload")
    parser.add_argument("--classes", type=int, default=None, help="override the number of corpus classes")
    parser.add_argument("--epochs", type=int, default=None, help="override the pretraining epochs")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def build_run_parser(command: str) -> argparse.ArgumentParser:
    """Parser for the orchestrator commands (``run`` and ``run-all``)."""
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments {command}",
        description="Run experiments as a cached, parallel DAG of jobs.",
    )
    if command == "run":
        parser.add_argument("experiments", nargs="+", help="experiment names (see `list`)")
    parser.add_argument("--workers", type=int, default=1, help="worker processes (default: 1)")
    parser.add_argument(
        "--scale", choices=("tiny", "small", "full"), default="small",
        help="workload profile (default: small)",
    )
    parser.add_argument("--out", default="results", help="report/manifest directory (default: results/)")
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="re-dispatch every job instead of skipping completed ones "
        "(artifacts still come from the content-addressed cache; "
        "point --cache-dir at a fresh directory for a truly cold run)",
    )
    return parser


def _reject_unknown(names: list[str]) -> bool:
    """Print a message for unregistered experiment names; True if any."""
    unknown = sorted(set(names) - set(available_experiments()))
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available_experiments())}", file=sys.stderr)
    return bool(unknown)


def _cmd_run(command: str, argv: list[str]) -> int:
    from .orchestrator import Orchestrator

    args = build_run_parser(command).parse_args(argv)
    names = available_experiments() if command == "run-all" else args.experiments
    if _reject_unknown(names):
        return 2

    orchestrator = Orchestrator(
        scale=args.scale,
        cache_dir=args.cache_dir,
        workers=args.workers,
        out_dir=args.out,
        progress=print,
    )
    report = orchestrator.run(names, resume=not args.no_resume)
    print(
        f"\n{len(report.outcomes)} jobs in {report.seconds:.1f}s "
        f"({report.cached_jobs} cache hits) -> {args.out}/REPORT.md"
    )
    for name in names:
        outcome = report.outcomes.get(f"experiment/{name}")
        if outcome is None or outcome.status != "done":
            continue
        print(f"\n--- {name} ---")
        for row in report.rows_for(name):
            print(row)
    if report.failed_jobs:
        print(f"\nfailed jobs: {', '.join(report.failed_jobs)}", file=sys.stderr)
        return 1
    return 0


def _cmd_legacy(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for name in available_experiments():
            print(name)
        return 0
    if not args.experiments:
        _print_usage()
        return 0
    if _reject_unknown(args.experiments):
        return 2

    scale = ExperimentScale.tiny() if args.tiny else ExperimentScale()
    overrides = {}
    if args.classes is not None:
        overrides["num_classes"] = args.classes
    if args.epochs is not None:
        overrides["pretrain_epochs"] = args.epochs
    if args.seed:
        overrides["seed"] = args.seed
    if overrides:
        scale = ExperimentScale(**{**scale.__dict__, **overrides})

    for name in args.experiments:
        print(f"\n--- {name} ---")
        for row in run_experiment(name, scale):
            print(row)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch the CLI; returns a process exit code (never raises)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if not argv:
            _print_usage()
            return 0
        if argv[0] == "list":
            for name in available_experiments():
                print(name)
            return 0
        if argv[0] in ("run-all", "run"):
            return _cmd_run(argv[0], argv[1:])
        return _cmd_legacy(argv)
    except SystemExit as exc:  # argparse exits on bad flags after printing usage
        return int(exc.code or 0)


if __name__ == "__main__":
    raise SystemExit(main())
