"""Experiment registry: each paper table/figure as a plain Python function.

The functions here are *scale-parameterised* versions of the comparisons in
``benchmarks/``: they build the synthetic workload, train every method under
the same budget, and return paper-vs-measured rows.  They are intentionally
lighter than the benchmark suite (fewer baselines per experiment) so that a
single experiment finishes in minutes at the default scale and in seconds at
:meth:`ExperimentScale.tiny`, which is what the unit tests use.

For the full paper comparison (all baselines, all networks, noise-floor
assertions) run the benchmark suite instead::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..baselines import train_vanilla, train_with_netaug
from ..core import ExpansionConfig, NetBooster, NetBoosterConfig
from ..data import SyntheticImageNet, SyntheticVOC, downstream_dataset
from ..eval import count_complexity
from ..models import TinyDetector, create_model
from ..train import DetectionTrainer, evaluate, evaluate_ap50, finetune
from ..utils import ExperimentConfig, seed_everything

__all__ = ["ExperimentScale", "ResultRow", "EXPERIMENTS", "available_experiments", "run_experiment"]


@dataclass(frozen=True)
class ExperimentScale:
    """Workload size shared by every registered experiment.

    The default constructor is a CPU-friendly scale comparable to the
    benchmark suite's ``small`` profile; :meth:`tiny` is a smoke-test scale
    used by the unit tests.
    """

    num_classes: int = 16
    samples_per_class: int = 120
    val_samples_per_class: int = 40
    resolution: int = 20
    intra_class_std: float = 1.0
    pretrain_epochs: int = 12
    finetune_epochs: int = 6
    batch_size: int = 64
    lr: float = 0.1
    finetune_lr: float = 0.03
    seed: int = 0

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """A seconds-scale configuration for smoke tests and demos."""
        return cls(
            num_classes=4,
            samples_per_class=12,
            val_samples_per_class=6,
            resolution=16,
            intra_class_std=0.8,
            pretrain_epochs=2,
            finetune_epochs=1,
            batch_size=16,
            lr=0.05,
            finetune_lr=0.02,
        )

    def corpus(self) -> SyntheticImageNet:
        seed_everything(self.seed)
        return SyntheticImageNet(
            num_classes=self.num_classes,
            samples_per_class=self.samples_per_class,
            val_samples_per_class=self.val_samples_per_class,
            resolution=self.resolution,
            intra_class_std=self.intra_class_std,
        )

    def pretrain_config(self, extra_epochs: int = 0) -> ExperimentConfig:
        return ExperimentConfig(
            epochs=self.pretrain_epochs + extra_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed,
        )

    def finetune_config(self) -> ExperimentConfig:
        return ExperimentConfig(
            epochs=self.finetune_epochs,
            batch_size=min(self.batch_size, 32),
            lr=self.finetune_lr,
            seed=self.seed,
        )

    def booster(self, expansion: ExpansionConfig | None = None) -> NetBooster:
        return NetBooster(
            NetBoosterConfig(
                expansion=expansion or ExpansionConfig(),
                pretrain=self.pretrain_config(),
                finetune=self.finetune_config(),
                plt_decay_fraction=0.3,
            )
        )


@dataclass
class ResultRow:
    """One row of a paper-vs-measured comparison."""

    experiment: str
    setting: str
    paper_value: float | None
    measured_value: float
    unit: str = "top-1 %"

    def __str__(self) -> str:
        paper = f"{self.paper_value:.1f}" if self.paper_value is not None else "   -"
        return (
            f"{self.experiment:<10s} {self.setting:<28s} "
            f"paper={paper:>6s}  measured={self.measured_value:6.2f}  [{self.unit}]"
        )


# --------------------------------------------------------------------------- #
# experiment implementations
# --------------------------------------------------------------------------- #
def _table1(scale: ExperimentScale) -> list[ResultRow]:
    """Table I (condensed): Vanilla vs NetAug vs NetBooster on the large corpus."""
    corpus = scale.corpus()
    network = "mobilenetv2-tiny"
    rows: list[ResultRow] = []

    seed_everything(scale.seed + 1)
    vanilla = create_model(network, num_classes=scale.num_classes)
    history = train_vanilla(
        vanilla, corpus.train, corpus.val, scale.pretrain_config(scale.finetune_epochs)
    )
    rows.append(ResultRow("table1", "Vanilla", 51.2, history.final_val_accuracy))

    seed_everything(scale.seed + 1)
    exported, _ = train_with_netaug(
        create_model(network, num_classes=scale.num_classes),
        corpus.train,
        None,
        scale.pretrain_config(scale.finetune_epochs),
    )
    rows.append(ResultRow("table1", "NetAug", 53.0, evaluate(exported, corpus.val)))

    seed_everything(scale.seed + 1)
    result = scale.booster().run(
        create_model(network, num_classes=scale.num_classes), corpus.train, corpus.val
    )
    rows.append(ResultRow("table1", "NetBooster", 53.7, result.final_accuracy))
    return rows


def _table2(scale: ExperimentScale, dataset_name: str = "cifar100") -> list[ResultRow]:
    """Table II (one dataset): downstream transfer, Vanilla vs NetBooster."""
    corpus = scale.corpus()
    train_set, val_set = downstream_dataset(dataset_name, resolution=scale.resolution)
    network = "mobilenetv2-tiny"
    paper = {"cifar100": (74.07, 75.46), "cars": (76.18, 80.93), "flowers102": (90.01, 90.53),
             "food101": (75.43, 75.96), "pets": (78.30, 78.90)}[dataset_name]

    seed_everything(scale.seed + 1)
    vanilla = create_model(network, num_classes=scale.num_classes)
    train_vanilla(vanilla, corpus.train, None, scale.pretrain_config())
    history = finetune(
        vanilla, train_set, val_set, scale.finetune_config(), new_num_classes=train_set.num_classes
    )
    rows = [ResultRow("table2", f"{dataset_name} / Vanilla", paper[0], history.final_val_accuracy)]

    seed_everything(scale.seed + 1)
    booster = scale.booster()
    giant, records = booster.build_giant(create_model(network, num_classes=scale.num_classes))
    booster.pretrain_giant(giant, corpus.train, None)
    booster.plt_finetune(giant, train_set, val_set, new_num_classes=train_set.num_classes)
    contracted = booster.contract(giant, records)
    rows.append(ResultRow("table2", f"{dataset_name} / NetBooster", paper[1], evaluate(contracted, val_set)))
    return rows


def _table3(scale: ExperimentScale) -> list[ResultRow]:
    """Table III: synthetic-VOC detection AP50, Vanilla vs NetBooster backbone."""
    seed_everything(scale.seed)
    voc = SyntheticVOC(
        num_classes=4,
        num_train=max(8 * scale.samples_per_class // 10, 16),
        num_val=max(4 * scale.val_samples_per_class // 10, 8),
        resolution=max(scale.resolution, 32),
        object_size=12,
    )
    corpus = scale.corpus()
    rows: list[ResultRow] = []
    for label, paper_value, boosted in (("Vanilla", 60.8, False), ("NetBooster", 62.6, True)):
        seed_everything(scale.seed + 2)
        backbone = create_model("mobilenetv2-tiny", num_classes=scale.num_classes)
        if boosted:
            booster = scale.booster()
            giant, records = booster.build_giant(backbone)
            booster.pretrain_giant(giant, corpus.train, None)
            booster.plt_finetune(giant, corpus.train, None)
            backbone = booster.contract(giant, records)
        else:
            train_vanilla(backbone, corpus.train, None, scale.pretrain_config(scale.finetune_epochs))
        detector = TinyDetector(backbone, num_classes=voc.num_classes, image_size=voc.resolution)
        trainer = DetectionTrainer(detector, scale.finetune_config().replace(batch_size=16, lr=0.05))
        trainer.fit(voc.train)
        rows.append(ResultRow("table3", label, paper_value, evaluate_ap50(detector, voc.val), unit="AP50"))
    return rows


def _table4(scale: ExperimentScale) -> list[ResultRow]:
    """Table IV: inserted-block-type ablation (final accuracy after contraction)."""
    corpus = scale.corpus()
    paper = {"inverted_residual": 53.70, "basic": 53.41, "bottleneck": 53.62}
    rows = []
    for block_type, paper_value in paper.items():
        seed_everything(scale.seed + 1)
        booster = scale.booster(ExpansionConfig(block_type=block_type))
        result = booster.run(
            create_model("mobilenetv2-tiny", num_classes=scale.num_classes), corpus.train, corpus.val
        )
        rows.append(ResultRow("table4", block_type, paper_value, result.final_accuracy))
    return rows


def _table5(scale: ExperimentScale) -> list[ResultRow]:
    """Table V: expansion-placement ablation."""
    corpus = scale.corpus()
    paper = {"first": 51.50, "middle": 52.62, "last": 52.47, "uniform": 53.70}
    rows = []
    for placement, paper_value in paper.items():
        seed_everything(scale.seed + 1)
        booster = scale.booster(ExpansionConfig(placement=placement))
        result = booster.run(
            create_model("mobilenetv2-tiny", num_classes=scale.num_classes), corpus.train, corpus.val
        )
        rows.append(ResultRow("table5", placement, paper_value, result.final_accuracy))
    return rows


def _table6(scale: ExperimentScale) -> list[ResultRow]:
    """Table VI: expansion-ratio ablation."""
    corpus = scale.corpus()
    paper = {2: 52.94, 4: 53.52, 6: 53.70, 8: 52.56}
    rows = []
    for ratio, paper_value in paper.items():
        seed_everything(scale.seed + 1)
        booster = scale.booster(ExpansionConfig(expansion_ratio=ratio))
        result = booster.run(
            create_model("mobilenetv2-tiny", num_classes=scale.num_classes), corpus.train, corpus.val
        )
        rows.append(ResultRow("table6", f"ratio={ratio}", paper_value, result.final_accuracy))
    return rows


def _fig1a(scale: ExperimentScale) -> list[ResultRow]:
    """Fig. 1(a): vanilla vs DropBlock-regularised vs NetBooster training."""
    from ..baselines import insert_dropblock

    corpus = scale.corpus()
    rows = []

    seed_everything(scale.seed + 1)
    vanilla = create_model("mobilenetv2-tiny", num_classes=scale.num_classes)
    history = train_vanilla(vanilla, corpus.train, corpus.val, scale.pretrain_config(scale.finetune_epochs))
    rows.append(ResultRow("fig1a", "Vanilla", 51.2, history.final_val_accuracy))

    seed_everything(scale.seed + 1)
    regularised = insert_dropblock(
        create_model("mobilenetv2-tiny", num_classes=scale.num_classes), drop_prob=0.15
    )
    history = train_vanilla(regularised, corpus.train, corpus.val, scale.pretrain_config(scale.finetune_epochs))
    rows.append(ResultRow("fig1a", "DropBlock", 50.9, history.final_val_accuracy))

    seed_everything(scale.seed + 1)
    result = scale.booster().run(
        create_model("mobilenetv2-tiny", num_classes=scale.num_classes), corpus.train, corpus.val
    )
    rows.append(ResultRow("fig1a", "NetBooster", 53.7, result.final_accuracy))
    return rows


def _cost(scale: ExperimentScale) -> list[ResultRow]:
    """Table I cost columns: MFLOPs of the model zoo (analytic, no training)."""
    paper = {"mobilenetv2-tiny": 23.5, "mcunet": 81.8, "mobilenetv2-50": 50.2, "mobilenetv2-100": 154.1}
    input_shape = (3, scale.resolution, scale.resolution)
    rows = []
    for network, paper_value in paper.items():
        seed_everything(scale.seed)
        report = count_complexity(create_model(network, num_classes=scale.num_classes), input_shape)
        rows.append(ResultRow("cost", network, paper_value, report.mflops, unit="MFLOPs"))
    return rows


EXPERIMENTS: dict[str, Callable[[ExperimentScale], list[ResultRow]]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "fig1a": _fig1a,
    "cost": _cost,
}


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment`."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, scale: ExperimentScale | None = None) -> list[ResultRow]:
    """Run one registered experiment and return its paper-vs-measured rows."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {available_experiments()}")
    return EXPERIMENTS[name](scale or ExperimentScale())
