"""Experiment registry: each paper table/figure as a declarative job.

Every entry of :data:`EXPERIMENTS` is an :class:`Experiment` — a function
reproducing one table/figure of the paper at a given
:class:`ExperimentScale`, plus the list of **shared steps** it depends on.
Shared steps are the expensive artifacts several tables reuse (the
vanilla-trained baseline, the pretrained deep giant, the full NetBooster
pipeline); declaring them as dependencies lets the orchestrator
(:mod:`repro.experiments.orchestrator`) train each one exactly once, cache it
on disk, and run the independent experiments in parallel.

The functions here are *scale-parameterised* versions of the comparisons in
``benchmarks/``: they build the synthetic workload, train every method under
the same budget, and return paper-vs-measured rows.  They are intentionally
lighter than the benchmark suite (fewer baselines per experiment) so that a
single experiment finishes in minutes at the default scale and in seconds at
:meth:`ExperimentScale.tiny`, which is what the unit tests use.

For the full paper comparison (all baselines, all networks, noise-floor
assertions) run the benchmark suite instead::

    pytest benchmarks/ --benchmark-only

Examples
--------
Run a single experiment in-process (no cache, no worker pool):

>>> rows = run_experiment("cost", ExperimentScale.tiny())
>>> [row.setting for row in rows]
['mobilenetv2-tiny', 'mcunet', 'mobilenetv2-50', 'mobilenetv2-100']
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable

from ..baselines import train_vanilla, train_with_netaug
from ..core import ExpansionConfig, NetBooster, NetBoosterConfig
from ..data import SyntheticImageNet, SyntheticVOC, downstream_dataset
from ..eval import count_complexity
from ..models import TinyDetector, create_model
from ..train import (
    DetectionTrainer,
    DistributedTrainer,
    TrainingHistory,
    evaluate,
    evaluate_ap50,
    finetune,
)
from ..utils import ExperimentConfig, seed_everything
from .cache import CACHE_VERSION, Artifact, ResultCache, config_digest, source_fingerprint

__all__ = [
    "ExperimentScale",
    "ResultRow",
    "Experiment",
    "SharedStep",
    "StepContext",
    "EXPERIMENTS",
    "available_experiments",
    "shared_step",
    "run_experiment",
    "history_from_meta",
    "history_to_meta",
    "rebuild_giant",
    "rebuild_model",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Workload size shared by every registered experiment.

    The default constructor is a CPU-friendly scale comparable to the
    benchmark suite's ``small`` profile; :meth:`tiny` is a smoke-test scale
    used by the unit tests and :meth:`full` is closer to the paper's
    under-fitting regime (and several times slower).
    """

    num_classes: int = 16
    samples_per_class: int = 120
    val_samples_per_class: int = 40
    resolution: int = 20
    intra_class_std: float = 1.0
    pretrain_epochs: int = 12
    finetune_epochs: int = 6
    batch_size: int = 64
    lr: float = 0.1
    finetune_lr: float = 0.03
    seed: int = 0

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """A seconds-scale configuration for smoke tests and demos."""
        return cls(
            num_classes=4,
            samples_per_class=12,
            val_samples_per_class=6,
            resolution=16,
            intra_class_std=0.8,
            pretrain_epochs=2,
            finetune_epochs=1,
            batch_size=16,
            lr=0.05,
            finetune_lr=0.02,
        )

    @classmethod
    def full(cls) -> "ExperimentScale":
        """The large profile (the benchmark suite's ``REPRO_BENCH_SCALE=full``)."""
        return cls(
            num_classes=20,
            samples_per_class=200,
            val_samples_per_class=50,
            resolution=24,
            pretrain_epochs=24,
            finetune_epochs=10,
        )

    @classmethod
    def named(cls, name: str) -> "ExperimentScale":
        """Look up a scale profile by name (``tiny`` | ``small`` | ``full``).

        ``small`` (and the alias ``default``) is the default constructor.
        """
        profiles = {"tiny": cls.tiny, "small": cls, "default": cls, "full": cls.full}
        if name not in profiles:
            raise KeyError(f"unknown scale {name!r}; available: {sorted(profiles)}")
        return profiles[name]()

    def corpus(self) -> SyntheticImageNet:
        """The shared large-scale pretraining corpus (stand-in for ImageNet)."""
        seed_everything(self.seed)
        return SyntheticImageNet(
            num_classes=self.num_classes,
            samples_per_class=self.samples_per_class,
            val_samples_per_class=self.val_samples_per_class,
            resolution=self.resolution,
            intra_class_std=self.intra_class_std,
        )

    def pretrain_config(self, extra_epochs: int = 0) -> ExperimentConfig:
        """Training hyper-parameters for the large-corpus phase."""
        return ExperimentConfig(
            epochs=self.pretrain_epochs + extra_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed,
        )

    def finetune_config(self) -> ExperimentConfig:
        """Training hyper-parameters for the finetuning / PLT phase."""
        return ExperimentConfig(
            epochs=self.finetune_epochs,
            batch_size=min(self.batch_size, 32),
            lr=self.finetune_lr,
            seed=self.seed,
        )

    def booster(self, expansion: ExpansionConfig | None = None) -> NetBooster:
        """A :class:`~repro.core.NetBooster` configured with this recipe."""
        return NetBooster(
            NetBoosterConfig(
                expansion=expansion or ExpansionConfig(),
                pretrain=self.pretrain_config(),
                finetune=self.finetune_config(),
                plt_decay_fraction=0.3,
            )
        )


@dataclass
class ResultRow:
    """One row of a paper-vs-measured comparison.

    Attributes
    ----------
    experiment:
        Registry name of the experiment that produced the row.
    setting:
        Method / ablation label within the experiment.
    paper_value:
        The value reported in the paper, or ``None`` when the paper has no
        matching number.
    measured_value:
        The value measured on the synthetic substrate.
    unit:
        Unit of both values (``"top-1 %"``, ``"AP50"``, ``"MFLOPs"``).
    """

    experiment: str
    setting: str
    paper_value: float | None
    measured_value: float
    unit: str = "top-1 %"

    def __str__(self) -> str:
        paper = f"{self.paper_value:.1f}" if self.paper_value is not None else "   -"
        return (
            f"{self.experiment:<10s} {self.setting:<28s} "
            f"paper={paper:>6s}  measured={self.measured_value:6.2f}  [{self.unit}]"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the orchestrator reports)."""
        return asdict(self)


# --------------------------------------------------------------------------- #
# history (de)serialisation for cached artifacts
# --------------------------------------------------------------------------- #
def history_to_meta(history: TrainingHistory) -> dict:
    return {
        "train_loss": [float(v) for v in history.train_loss],
        "train_accuracy": [float(v) for v in history.train_accuracy],
        "val_accuracy": [float(v) for v in history.val_accuracy],
        "learning_rate": [float(v) for v in history.learning_rate],
    }


def history_from_meta(meta: dict) -> TrainingHistory:
    """Rebuild a :class:`~repro.train.TrainingHistory` from cached metadata."""
    return TrainingHistory(**{k: list(v) for k, v in meta.items()})


# --------------------------------------------------------------------------- #
# shared steps: expensive artifacts reused across experiments
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedStep:
    """A cacheable unit of work shared by several experiments.

    Attributes
    ----------
    name:
        Step identifier, e.g. ``"giant/mobilenetv2-tiny"``.
    fn:
        ``fn(scale, ctx) -> Artifact``; ``ctx`` resolves this step's own
        dependencies.
    deps:
        Names of shared steps that must be available before ``fn`` runs.
    source:
        Callables hashed into the step's cache key (code-relevant config).
    """

    name: str
    fn: Callable[["ExperimentScale", "StepContext"], Artifact]
    deps: tuple[str, ...] = ()
    source: tuple[Callable, ...] = ()


def _step_pretrain(model_name: str, scale: ExperimentScale, ctx: "StepContext") -> Artifact:
    """Plain pretraining on the corpus (no finetuning budget, no val curve)."""
    corpus = scale.corpus()
    seed_everything(scale.seed + 1)
    model = create_model(model_name, num_classes=scale.num_classes)
    history = train_vanilla(model, corpus.train, None, scale.pretrain_config())
    return Artifact(meta={"history": history_to_meta(history)}, states={"model": dict(model.state_dict())})


def _step_vanilla(model_name: str, scale: ExperimentScale, ctx: "StepContext") -> Artifact:
    """The vanilla baseline: full epoch budget (pretrain + finetune) with val."""
    corpus = scale.corpus()
    seed_everything(scale.seed + 1)
    model = create_model(model_name, num_classes=scale.num_classes)
    history = train_vanilla(
        model, corpus.train, corpus.val, scale.pretrain_config(scale.finetune_epochs)
    )
    return Artifact(meta={"history": history_to_meta(history)}, states={"model": dict(model.state_dict())})


def _step_giant(model_name: str, scale: ExperimentScale, ctx: "StepContext") -> Artifact:
    """Network Expansion + pretraining of the deep giant (default expansion)."""
    corpus = scale.corpus()
    seed_everything(scale.seed + 2)
    booster = scale.booster()
    giant, _records = booster.build_giant(create_model(model_name, num_classes=scale.num_classes))
    history = booster.pretrain_giant(giant, corpus.train, corpus.val)
    return Artifact(meta={"history": history_to_meta(history)}, states={"giant": dict(giant.state_dict())})


def _step_netbooster(model_name: str, scale: ExperimentScale, ctx: "StepContext") -> Artifact:
    """PLT finetune + contraction of the shared pretrained giant on the corpus."""
    giant_artifact = ctx.dep(f"giant/{model_name}")
    corpus = scale.corpus()
    giant, records, booster = rebuild_giant(model_name, scale, giant_artifact)
    seed_everything(scale.seed + 3)
    history, _schedule = booster.plt_finetune(giant, corpus.train, corpus.val)
    giant_accuracy = float(evaluate(giant, corpus.val))
    contracted = booster.contract(giant, records)
    final_accuracy = float(evaluate(contracted, corpus.val))
    return Artifact(
        meta={
            "final_accuracy": final_accuracy,
            "giant_accuracy": giant_accuracy,
            "history": history_to_meta(history),
        },
        states={"model": dict(contracted.state_dict())},
    )


_STEP_KINDS: dict[str, tuple[Callable, tuple[str, ...]]] = {
    "pretrain": (_step_pretrain, ()),
    "vanilla": (_step_vanilla, ()),
    "giant": (_step_giant, ()),
    "netbooster": (_step_netbooster, ("giant/{model}",)),
}


def shared_step(name: str) -> SharedStep:
    """Resolve a shared-step name like ``"vanilla/mobilenetv2-tiny"``.

    Parameters
    ----------
    name:
        ``"<kind>/<model>"`` where ``kind`` is one of ``pretrain``,
        ``vanilla``, ``giant``, ``netbooster``.

    Returns
    -------
    SharedStep

    Raises
    ------
    KeyError
        If ``kind`` is not a known step kind.
    """
    kind, _, model = name.partition("/")
    if kind not in _STEP_KINDS or not model:
        raise KeyError(f"unknown shared step {name!r}; kinds: {sorted(_STEP_KINDS)}")
    fn, dep_templates = _STEP_KINDS[kind]

    def run(scale: ExperimentScale, ctx: "StepContext") -> Artifact:
        return fn(model, scale, ctx)

    deps = tuple(template.format(model=model) for template in dep_templates)
    return SharedStep(name=name, fn=run, deps=deps, source=(fn,))


# --------------------------------------------------------------------------- #
# artifact → model reconstruction
# --------------------------------------------------------------------------- #
def rebuild_model(model_name: str, scale: ExperimentScale, artifact: Artifact, state: str = "model"):
    """Instantiate ``model_name`` and load the named state dict from ``artifact``."""
    seed_everything(scale.seed + 1)
    model = create_model(model_name, num_classes=scale.num_classes)
    model.load_state_dict(artifact.states[state], strict=True)
    return model


def rebuild_giant(
    model_name: str,
    scale: ExperimentScale,
    artifact: Artifact,
    expansion: ExpansionConfig | None = None,
):
    """Re-expand ``model_name`` deterministically and load the giant's weights.

    Expansion is structural (it depends only on the architecture and the
    :class:`~repro.core.ExpansionConfig`), so rebuilding with the same seed
    yields the same giant topology and expansion records as the producing
    step; the trained weights are then restored from the artifact.

    Returns
    -------
    (giant, records, booster)
    """
    seed_everything(scale.seed + 2)
    booster = scale.booster(expansion)
    giant, records = booster.build_giant(create_model(model_name, num_classes=scale.num_classes))
    giant.load_state_dict(artifact.states["giant"], strict=True)
    return giant, records, booster


# --------------------------------------------------------------------------- #
# dependency resolution
# --------------------------------------------------------------------------- #
def _pipeline_fingerprint() -> str:
    """Source fingerprint of the training pipeline under every cache key.

    A step/experiment's own source is hashed per job, but the bulk of the
    behaviour lives in the layers it calls into.  Hashing these modules (and
    the registry itself, so shared helpers count too) keeps cached artifacts
    honest: editing the trainer, a baseline, the expansion/contraction core,
    the data generators or a model definition invalidates every entry instead
    of silently replaying pre-edit results.  The invalidation is deliberately
    coarse — any edit to a fingerprinted module flushes all keys; deeper
    changes (e.g. the autograd substrate) still warrant a ``CACHE_VERSION``
    bump.
    """
    import sys

    from .. import baselines, data, eval as eval_pkg, models, nn, optim
    from ..core import contraction, expansion, netbooster, plt
    from ..optim import allreduce
    from ..runtime import training as runtime_training
    from ..train import detection, distributed, trainer, transfer

    modules = (
        sys.modules[__name__],  # the registry itself: experiments, steps, helpers
        netbooster, expansion, contraction, plt, trainer, transfer, detection,
        distributed, allreduce,  # data-parallel trainer + collectives
        baselines.vanilla, baselines.netaug, baselines.kd, baselines.regularization,
        data.datasets, data.generator, data.detection,
        data.dataloader, data.transforms,  # batching/prefetch + RNG scheme
        models.mobilenetv2, models.mcunet, models.blocks, models.detector,
        eval_pkg.complexity, nn.layers, nn.norm, nn.functional,
        optim.sgd, optim.schedulers, optim.flat,
        runtime_training,  # the default (compiled) train-step path
    )
    return source_fingerprint(*modules)


_PIPELINE_FINGERPRINT: str | None = None


def pipeline_fingerprint() -> str:
    """Cached-per-process :func:`_pipeline_fingerprint` (it hashes ~15 files)."""
    global _PIPELINE_FINGERPRINT
    if _PIPELINE_FINGERPRINT is None:
        _PIPELINE_FINGERPRINT = _pipeline_fingerprint()
    return _PIPELINE_FINGERPRINT


class StepContext:
    """Resolves shared-step dependencies, transparently using the cache.

    Experiments receive a context instead of recomputing shared work: calling
    :meth:`dep` returns the step's :class:`~repro.experiments.cache.Artifact`
    from (in order) an in-process memo, the on-disk cache, or a fresh
    computation (which is stored back when a cache is attached).

    Parameters
    ----------
    scale:
        Workload profile; part of every cache key.
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`.  Without one
        the context still works — it just recomputes on every new process.
    """

    def __init__(self, scale: ExperimentScale, cache: ResultCache | None = None):
        self.scale = scale
        self.cache = cache
        self._memo: dict[str, Artifact] = {}

    # -- keys ----------------------------------------------------------- #
    def step_key(self, name: str) -> str:
        """Content-addressed cache key of a shared step (deps included)."""
        step = shared_step(name)
        dep_keys = {dep: self.step_key(dep) for dep in step.deps}
        return config_digest(
            {
                "kind": "step",
                "name": name,
                "scale": asdict(self.scale),
                "code": source_fingerprint(*step.source),
                "pipeline": pipeline_fingerprint(),
                "deps": dep_keys,
                "version": CACHE_VERSION,
            }
        )

    def experiment_key(self, name: str) -> str:
        """Content-addressed cache key of a full experiment's result rows."""
        experiment = EXPERIMENTS[name]
        dep_keys = {dep: self.step_key(dep) for dep in experiment.deps}
        return config_digest(
            {
                "kind": "experiment",
                "name": name,
                "scale": asdict(self.scale),
                "code": source_fingerprint(experiment.fn),
                "pipeline": pipeline_fingerprint(),
                "deps": dep_keys,
                "version": CACHE_VERSION,
            }
        )

    # -- resolution ----------------------------------------------------- #
    def dep(self, name: str) -> Artifact:
        """Return the artifact of shared step ``name``, computing if needed."""
        if name in self._memo:
            return self._memo[name]
        step = shared_step(name)
        if self.cache is not None:
            artifact, _hit = self.cache.memoize(self.step_key(name), lambda: step.fn(self.scale, self))
        else:
            artifact = step.fn(self.scale, self)
        self._memo[name] = artifact
        return artifact

    def cached_call(
        self, name: str, compute: Callable[[], Artifact], extra: dict | None = None
    ) -> Artifact:
        """Memoise an ad-hoc computation under the same keying discipline.

        Used by callers outside the registry (the benchmark suite's teacher
        model, non-default expansion giants) to share the orchestrator cache.

        Parameters
        ----------
        name:
            Stable identifier for the computation.
        compute:
            Zero-argument callable returning an :class:`Artifact`.
        extra:
            Additional JSON-serialisable key material (e.g. a config repr).
        """
        key = config_digest(
            {
                "kind": "adhoc",
                "name": name,
                "scale": asdict(self.scale),
                "code": source_fingerprint(compute),
                "pipeline": pipeline_fingerprint(),
                "extra": extra or {},
                "version": CACHE_VERSION,
            }
        )
        memo_key = f"adhoc/{key}"
        if memo_key in self._memo:
            return self._memo[memo_key]
        if self.cache is not None:
            artifact, _hit = self.cache.memoize(key, compute)
        else:
            artifact = compute()
        self._memo[memo_key] = artifact
        return artifact


# --------------------------------------------------------------------------- #
# experiment implementations
# --------------------------------------------------------------------------- #
def _table1(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Table I (condensed): Vanilla vs NetAug vs NetBooster on the large corpus."""
    corpus = scale.corpus()
    network = "mobilenetv2-tiny"
    rows: list[ResultRow] = []

    vanilla = ctx.dep(f"vanilla/{network}")
    rows.append(ResultRow("table1", "Vanilla", 51.2, vanilla.meta["history"]["val_accuracy"][-1]))

    seed_everything(scale.seed + 1)
    exported, _ = train_with_netaug(
        create_model(network, num_classes=scale.num_classes),
        corpus.train,
        None,
        scale.pretrain_config(scale.finetune_epochs),
    )
    rows.append(ResultRow("table1", "NetAug", 53.0, evaluate(exported, corpus.val)))

    booster = ctx.dep(f"netbooster/{network}")
    rows.append(ResultRow("table1", "NetBooster", 53.7, booster.meta["final_accuracy"]))
    return rows


def _table2(scale: ExperimentScale, ctx: StepContext, dataset_name: str = "cifar100") -> list[ResultRow]:
    """Table II (one dataset): downstream transfer, Vanilla vs NetBooster."""
    train_set, val_set = downstream_dataset(dataset_name, resolution=scale.resolution)
    network = "mobilenetv2-tiny"
    paper = {"cifar100": (74.07, 75.46), "cars": (76.18, 80.93), "flowers102": (90.01, 90.53),
             "food101": (75.43, 75.96), "pets": (78.30, 78.90)}[dataset_name]

    vanilla = rebuild_model(network, scale, ctx.dep(f"pretrain/{network}"))
    seed_everything(scale.seed + 1)
    history = finetune(
        vanilla, train_set, val_set, scale.finetune_config(), new_num_classes=train_set.num_classes
    )
    rows = [ResultRow("table2", f"{dataset_name} / Vanilla", paper[0], history.final_val_accuracy)]

    giant, records, booster = rebuild_giant(network, scale, ctx.dep(f"giant/{network}"))
    seed_everything(scale.seed + 1)
    booster.plt_finetune(giant, train_set, val_set, new_num_classes=train_set.num_classes)
    contracted = booster.contract(giant, records)
    rows.append(ResultRow("table2", f"{dataset_name} / NetBooster", paper[1], evaluate(contracted, val_set)))
    return rows


def _table3(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Table III: synthetic-VOC detection AP50, Vanilla vs NetBooster backbone."""
    seed_everything(scale.seed)
    voc = SyntheticVOC(
        num_classes=4,
        num_train=max(8 * scale.samples_per_class // 10, 16),
        num_val=max(4 * scale.val_samples_per_class // 10, 8),
        resolution=max(scale.resolution, 32),
        object_size=12,
    )
    corpus = scale.corpus()
    network = "mobilenetv2-tiny"
    rows: list[ResultRow] = []
    for label, paper_value, boosted in (("Vanilla", 60.8, False), ("NetBooster", 62.6, True)):
        if boosted:
            giant, records, booster = rebuild_giant(network, scale, ctx.dep(f"giant/{network}"))
            seed_everything(scale.seed + 2)
            booster.plt_finetune(giant, corpus.train, None)
            backbone = booster.contract(giant, records)
        else:
            backbone = rebuild_model(network, scale, ctx.dep(f"vanilla/{network}"))
        seed_everything(scale.seed + 2)
        detector = TinyDetector(backbone, num_classes=voc.num_classes, image_size=voc.resolution)
        trainer = DetectionTrainer(detector, scale.finetune_config().replace(batch_size=16, lr=0.05))
        trainer.fit(voc.train)
        rows.append(ResultRow("table3", label, paper_value, evaluate_ap50(detector, voc.val), unit="AP50"))
    return rows


def _ablation(
    scale: ExperimentScale,
    ctx: StepContext,
    experiment: str,
    settings: dict[str, tuple[float, ExpansionConfig | None]],
) -> list[ResultRow]:
    """Shared driver for the expansion ablations (Tables IV-VI).

    Settings whose :class:`~repro.core.ExpansionConfig` is ``None`` reuse the
    shared default-expansion NetBooster artifact; the rest run the full
    pipeline with their modified config, each memoised individually so a
    mid-table interruption never re-trains completed settings.

    Note that the shared artifact's RNG stream differs from the inline runs
    (the split pipeline reseeds per phase), so the default-config row is not
    seed-identical to its siblings; at the CPU scale the difference sits well
    inside the single-seed noise floor the benchmark assertions use.
    """
    rows = []
    for setting, (paper_value, expansion) in settings.items():
        if expansion is None:
            measured = ctx.dep("netbooster/mobilenetv2-tiny").meta["final_accuracy"]
        else:
            def compute(expansion=expansion) -> Artifact:
                corpus = scale.corpus()
                seed_everything(scale.seed + 1)
                booster = scale.booster(expansion)
                result = booster.run(
                    create_model("mobilenetv2-tiny", num_classes=scale.num_classes),
                    corpus.train,
                    corpus.val,
                )
                return Artifact(meta={"final_accuracy": float(result.final_accuracy)})

            artifact = ctx.cached_call(
                "ablation/mobilenetv2-tiny", compute, extra={"expansion": repr(expansion)}
            )
            measured = artifact.meta["final_accuracy"]
        rows.append(ResultRow(experiment, setting, paper_value, measured))
    return rows


def _table4(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Table IV: inserted-block-type ablation (final accuracy after contraction)."""
    return _ablation(scale, ctx, "table4", {
        "inverted_residual": (53.70, None),  # the paper default == shared artifact
        "basic": (53.41, ExpansionConfig(block_type="basic")),
        "bottleneck": (53.62, ExpansionConfig(block_type="bottleneck")),
    })


def _table5(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Table V: expansion-placement ablation."""
    return _ablation(scale, ctx, "table5", {
        "first": (51.50, ExpansionConfig(placement="first")),
        "middle": (52.62, ExpansionConfig(placement="middle")),
        "last": (52.47, ExpansionConfig(placement="last")),
        "uniform": (53.70, None),
    })


def _table6(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Table VI: expansion-ratio ablation."""
    return _ablation(scale, ctx, "table6", {
        "ratio=2": (52.94, ExpansionConfig(expansion_ratio=2)),
        "ratio=4": (53.52, ExpansionConfig(expansion_ratio=4)),
        "ratio=6": (53.70, None),
        "ratio=8": (52.56, ExpansionConfig(expansion_ratio=8)),
    })


def _fig1a(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Fig. 1(a): vanilla vs DropBlock-regularised vs NetBooster training."""
    from ..baselines import insert_dropblock

    corpus = scale.corpus()
    rows = []

    vanilla = ctx.dep("vanilla/mobilenetv2-tiny")
    rows.append(ResultRow("fig1a", "Vanilla", 51.2, vanilla.meta["history"]["val_accuracy"][-1]))

    seed_everything(scale.seed + 1)
    regularised = insert_dropblock(
        create_model("mobilenetv2-tiny", num_classes=scale.num_classes), drop_prob=0.15
    )
    history = train_vanilla(
        regularised, corpus.train, corpus.val, scale.pretrain_config(scale.finetune_epochs)
    )
    rows.append(ResultRow("fig1a", "DropBlock", 50.9, history.final_val_accuracy))

    booster = ctx.dep("netbooster/mobilenetv2-tiny")
    rows.append(ResultRow("fig1a", "NetBooster", 53.7, booster.meta["final_accuracy"]))
    return rows


def _dp(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Data-parallel sweep: topology x workers as an accuracy axis.

    Trains MobileNetV2-Tiny on the corpus under a short budget three ways —
    single worker (the :class:`~repro.train.Trainer`-equivalent reference),
    2-worker synchronous allreduce, and 2-worker DACFL-style gossip — and
    reports final validation accuracy for each.  The paper column is empty
    (the source paper reports no data-parallel numbers); the interesting
    comparison is measured-vs-measured: allreduce matches the single-worker
    trajectory up to update granularity, gossip trades a little consensus
    lag for decentralisation.
    """
    corpus = scale.corpus()
    config = ExperimentConfig(
        epochs=max(scale.pretrain_epochs // 4, 1),
        batch_size=scale.batch_size,
        lr=scale.lr,
        seed=scale.seed,
    )

    def model_fn():
        return create_model(_TINY, num_classes=scale.num_classes)

    rows = []
    for setting, workers, topology in (
        ("workers=1 (reference)", 1, "allreduce"),
        ("allreduce x 2 workers", 2, "allreduce"),
        ("gossip x 2 workers", 2, "gossip"),
    ):
        trainer = DistributedTrainer(model_fn, config, workers=workers, topology=topology)
        trainer.fit(corpus.train)
        rows.append(ResultRow("dp", setting, None, evaluate(trainer.model, corpus.val, config.batch_size)))
    return rows


def _cost(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Table I cost columns: MFLOPs of the model zoo (analytic, no training)."""
    paper = {"mobilenetv2-tiny": 23.5, "mcunet": 81.8, "mobilenetv2-50": 50.2, "mobilenetv2-100": 154.1}
    input_shape = (3, scale.resolution, scale.resolution)
    rows = []
    for network, paper_value in paper.items():
        seed_everything(scale.seed)
        report = count_complexity(create_model(network, num_classes=scale.num_classes), input_shape)
        rows.append(ResultRow("cost", network, paper_value, report.mflops, unit="MFLOPs"))
    return rows


def _fidelity(scale: ExperimentScale, ctx: StepContext) -> list[ResultRow]:
    """Fidelity ladder sweep: accuracy vs p99 latency for each serving rung.

    Serves the shared vanilla-trained tiny model through both rungs of the
    default serving ladder — the compiled float engine and the int8
    quantized engine calibrated on the training corpus — and reports two
    rows per rung: top-1 accuracy on the corpus validation set and the p99
    single-image latency.  Each rung is first materialised as a saved
    artifact (the exact bytes :mod:`repro.serve.fidelity` would serve from)
    and measured through :func:`~repro.runtime.load_artifact`, so the sweep
    exercises the serialized path, not an in-memory shortcut.  The artifact
    fingerprints are folded into the cache key via ``cached_call(extra=...)``:
    anything that changes the compiled bits — weights, quantization grids,
    the artifact format — invalidates the cached sweep.

    The paper column is empty (the source paper reports no serving ladder);
    the interesting comparison is measured-vs-measured across rungs.
    """
    import os
    import shutil
    import tempfile
    import time

    import numpy as np

    from ..compress import calibrate, quantize_model
    from ..runtime import compile_model, load_artifact

    corpus = scale.corpus()
    trained = ctx.dep(f"vanilla/{_TINY}")
    input_shape = (3, scale.resolution, scale.resolution)
    tmpdir = tempfile.mkdtemp(prefix="repro-fidelity-")
    try:
        rungs: list[tuple[str, str, str]] = []  # (name, path, fingerprint)
        for rung_name in ("float", "int8"):
            model = rebuild_model(_TINY, scale, trained)
            model.eval()
            if rung_name == "int8":
                quantize_model(model)
                images = corpus.train.images
                calibrate(
                    model,
                    [images[start : start + 16] for start in range(0, min(64, len(images)), 16)],
                )
            net = compile_model(model, mode="int8" if rung_name == "int8" else "infer")
            path = os.path.join(tmpdir, f"{rung_name}.rpa")
            info = net.save(path, input_shape=input_shape)
            rungs.append((rung_name, path, info.fingerprint))

        def sweep() -> Artifact:
            val = corpus.val
            results = []
            for rung_name, path, _fingerprint in rungs:
                net = load_artifact(path)
                correct = 0
                for start in range(0, len(val.images), 64):
                    batch = np.ascontiguousarray(val.images[start : start + 64])
                    predicted = net.numpy_forward(batch).argmax(axis=1)
                    correct += int((predicted == val.labels[start : start + 64]).sum())
                single = np.ascontiguousarray(val.images[:1])
                net.numpy_forward(single)  # warm the buffers before timing
                samples = []
                for _ in range(30):
                    start_time = time.perf_counter()
                    net.numpy_forward(single)
                    samples.append((time.perf_counter() - start_time) * 1e3)
                results.append(
                    {
                        "rung": rung_name,
                        "accuracy": 100.0 * correct / len(val.images),
                        "p99_ms": float(np.percentile(samples, 99)),
                    }
                )
            return Artifact(meta={"rungs": results})

        artifact = ctx.cached_call(
            f"fidelity/{_TINY}",
            sweep,
            extra={"artifacts": {name: fingerprint for name, _path, fingerprint in rungs}},
        )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    rows: list[ResultRow] = []
    for entry in artifact.meta["rungs"]:
        rows.append(ResultRow("fidelity", f"{entry['rung']} / top-1", None, entry["accuracy"]))
        rows.append(
            ResultRow("fidelity", f"{entry['rung']} / latency", None, entry["p99_ms"], unit="ms p99")
        )
    return rows


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Experiment:
    """A registered experiment: implementation plus declared dependencies.

    Attributes
    ----------
    name:
        Registry key (also the CLI name).
    fn:
        ``fn(scale, ctx) -> list[ResultRow]``.
    deps:
        Shared-step names this experiment reads through ``ctx.dep``.
    title:
        Human-readable description used in reports.
    """

    name: str
    fn: Callable[[ExperimentScale, StepContext], list[ResultRow]]
    deps: tuple[str, ...] = ()
    title: str = ""


_TINY = "mobilenetv2-tiny"

EXPERIMENTS: dict[str, Experiment] = {
    exp.name: exp
    for exp in (
        Experiment("table1", _table1, (f"vanilla/{_TINY}", f"netbooster/{_TINY}"),
                   "Table I — accuracy of TNN training methods on the large corpus"),
        Experiment("table2", _table2, (f"pretrain/{_TINY}", f"giant/{_TINY}"),
                   "Table II — downstream classification transfer"),
        Experiment("table3", _table3, (f"vanilla/{_TINY}", f"giant/{_TINY}"),
                   "Table III — detection transfer (synthetic VOC, AP50)"),
        Experiment("table4", _table4, (f"netbooster/{_TINY}",),
                   "Table IV — inserted block type ablation"),
        Experiment("table5", _table5, (f"netbooster/{_TINY}",),
                   "Table V — expansion placement ablation"),
        Experiment("table6", _table6, (f"netbooster/{_TINY}",),
                   "Table VI — expansion ratio ablation"),
        Experiment("fig1a", _fig1a, (f"vanilla/{_TINY}", f"netbooster/{_TINY}"),
                   "Fig. 1(a) — under-fitting: regularisation vs NetBooster"),
        Experiment("cost", _cost, (),
                   "Table I cost columns — model zoo complexity (analytic)"),
        Experiment("dp", _dp, (),
                   "Data-parallel training — topology x workers accuracy sweep"),
        Experiment("fidelity", _fidelity, (f"vanilla/{_TINY}",),
                   "Serving fidelity ladder — accuracy vs p99 latency per rung"),
    )
}


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment` (sorted).

    Examples
    --------
    >>> available_experiments()
    ['cost', 'dp', 'fidelity', 'fig1a', 'table1', 'table2', 'table3', 'table4', 'table5', 'table6']
    """
    return sorted(EXPERIMENTS)


def run_experiment(
    name: str,
    scale: ExperimentScale | None = None,
    ctx: StepContext | None = None,
) -> list[ResultRow]:
    """Run one registered experiment and return its paper-vs-measured rows.

    Parameters
    ----------
    name:
        One of :func:`available_experiments`.
    scale:
        Workload profile; defaults to :class:`ExperimentScale` ().
    ctx:
        Optional :class:`StepContext`.  Pass a cache-backed context to reuse
        shared artifacts across runs; omitted, dependencies are computed
        in-process (the pre-orchestrator behaviour).

    Raises
    ------
    KeyError
        If ``name`` is not registered.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {available_experiments()}")
    if scale is None:
        scale = ctx.scale if ctx is not None else ExperimentScale()
    if ctx is None:
        ctx = StepContext(scale)
    elif ctx.scale != scale:
        raise ValueError("run_experiment: scale does not match ctx.scale")
    return EXPERIMENTS[name].fn(scale, ctx)
