"""MobileNetV2 family scaled for the CPU substrate.

The paper evaluates MobileNetV2 at width multipliers 1.0, 0.5, 0.35 and a
"Tiny" variant.  The architectures here keep the exact block structure
(inverted residual bottlenecks with ReLU6, expand-depthwise-project) but use a
much smaller base channel configuration and input resolution so that training
on the NumPy substrate is feasible.  The relative capacity ordering
``tiny < 0.35 < 0.5 < 1.0`` is preserved, which is all the experiments need.
"""

from __future__ import annotations

from .. import nn
from .blocks import ConvBNAct, InvertedResidual, make_divisible

__all__ = ["MobileNetV2", "mobilenet_v2"]


# (expand_ratio, base_channels, num_blocks, stride) per stage, analogous to the
# original MobileNetV2 inverted-residual setting table but shallower/narrower.
_FULL_SETTINGS: list[tuple[int, int, int, int]] = [
    (1, 12, 1, 1),
    (6, 16, 2, 2),
    (6, 24, 2, 2),
    (6, 32, 2, 1),
]

# The "Tiny" variant keeps the full depth (so NetBooster's uniform expansion
# has enough candidate sites, as in the paper's MobileNetV2-Tiny) but uses a
# smaller width multiplier and a narrower head than MobileNetV2-0.35.
_TINY_SETTINGS: list[tuple[int, int, int, int]] = _FULL_SETTINGS


class MobileNetV2(nn.Module):
    """Inverted-residual classification network.

    Attributes
    ----------
    features:
        ``Sequential`` backbone (stem, inverted residual blocks, head conv);
        reused by the detection model.
    classifier:
        Final linear layer on globally pooled features.
    """

    def __init__(
        self,
        num_classes: int = 16,
        width_mult: float = 1.0,
        settings: list[tuple[int, int, int, int]] | None = None,
        stem_channels: int = 16,
        head_channels: int = 64,
        in_channels: int = 3,
        dropout: float = 0.0,
    ):
        super().__init__()
        settings = settings if settings is not None else _FULL_SETTINGS
        self.width_mult = width_mult
        self.num_classes = num_classes

        stem_out = make_divisible(stem_channels * width_mult)
        head_out = make_divisible(head_channels * max(width_mult, 1.0))

        layers: list[nn.Module] = [ConvBNAct(in_channels, stem_out, kernel_size=3, stride=2)]
        channels = stem_out
        for expand_ratio, base_channels, num_blocks, stride in settings:
            out_channels = make_divisible(base_channels * width_mult)
            for block_index in range(num_blocks):
                layers.append(
                    InvertedResidual(
                        channels,
                        out_channels,
                        stride=stride if block_index == 0 else 1,
                        expand_ratio=expand_ratio,
                    )
                )
                channels = out_channels
        layers.append(ConvBNAct(channels, head_out, kernel_size=1))
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.dropout = nn.Dropout(dropout) if dropout > 0 else nn.Identity()
        self.classifier = nn.Linear(head_out, num_classes)
        self.feature_channels = head_out

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.features(x)
        x = self.flatten(self.pool(x))
        x = self.dropout(x)
        return self.classifier(x)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        """Return the backbone feature map (used by the detector)."""
        return self.features(x)

    def reset_classifier(self, num_classes: int) -> None:
        """Replace the classification head (transfer-learning entry point)."""
        self.classifier = nn.Linear(self.feature_channels, num_classes)
        self.num_classes = num_classes

    def inverted_residual_blocks(self) -> list[tuple[str, InvertedResidual]]:
        """Named inverted-residual blocks in network order."""
        return [
            (name, module)
            for name, module in self.named_modules()
            if isinstance(module, InvertedResidual)
        ]


def mobilenet_v2(variant: str = "100", num_classes: int = 16, dropout: float = 0.0) -> MobileNetV2:
    """Build a MobileNetV2 variant by name.

    Parameters
    ----------
    variant:
        One of ``"tiny"``, ``"35"``, ``"50"``, ``"100"`` — mirroring
        MobileNetV2-Tiny / -0.35 / -0.5 / -1.0 in the paper.
    """
    variant = str(variant).lower().replace("mobilenetv2-", "")
    if variant == "tiny":
        return MobileNetV2(
            num_classes=num_classes,
            width_mult=0.35,
            settings=_TINY_SETTINGS,
            stem_channels=12,
            head_channels=48,
            dropout=dropout,
        )
    if variant in ("35", "0.35"):
        return MobileNetV2(num_classes=num_classes, width_mult=0.35, dropout=dropout)
    if variant in ("50", "0.5"):
        return MobileNetV2(num_classes=num_classes, width_mult=0.5, dropout=dropout)
    if variant in ("100", "1.0"):
        return MobileNetV2(num_classes=num_classes, width_mult=1.0, dropout=dropout)
    raise ValueError(f"unknown MobileNetV2 variant {variant!r}")
