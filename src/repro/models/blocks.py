"""Building blocks shared by the model zoo and by NetBooster's expansion step.

The paper considers three candidate blocks for Network Expansion (Sec. III-C,
Q1): the *inverted residual* block of MobileNetV2, and ResNet's *basic* and
*bottleneck* blocks.  All three are implemented here so both the model zoo and
the Table IV ablation can use them.
"""

from __future__ import annotations

from .. import nn

__all__ = [
    "make_divisible",
    "ConvBNAct",
    "InvertedResidual",
    "BasicBlock",
    "Bottleneck",
]


def make_divisible(value: float, divisor: int = 4, min_value: int | None = None) -> int:
    """Round ``value`` to the nearest multiple of ``divisor`` (never below 90%).

    Mirrors the channel-rounding rule used by the MobileNet family so width
    multipliers produce hardware-friendly channel counts.
    """
    if min_value is None:
        min_value = divisor
    new_value = max(min_value, int(value + divisor / 2) // divisor * divisor)
    if new_value < 0.9 * value:
        new_value += divisor
    return new_value


def _make_activation(name: str | None) -> nn.Module:
    if name is None or name == "none":
        return nn.Identity()
    if name == "relu":
        return nn.ReLU()
    if name == "relu6":
        return nn.ReLU6()
    raise ValueError(f"unknown activation {name!r}")


class ConvBNAct(nn.Module):
    """``Conv -> BatchNorm -> activation``, the unit NetBooster operates on.

    The convolution is created without a bias (the BatchNorm provides the
    affine shift), matching standard efficient-network practice.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        groups: int = 1,
        activation: str | None = "relu6",
    ):
        super().__init__()
        padding = (kernel_size - 1) // 2
        self.conv = nn.Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=False,
        )
        self.bn = nn.BatchNorm2d(out_channels)
        self.act = _make_activation(activation)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.act(self.bn(self.conv(x)))


class InvertedResidual(nn.Module):
    """MobileNetV2 inverted residual block (expand → depthwise → project).

    Parameters
    ----------
    expand_ratio:
        Width multiplier of the hidden expansion; ``1`` omits the expansion
        pointwise convolution.
    kernel_size:
        Depthwise kernel size (MCUNet-style blocks use 5 or 7).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        expand_ratio: int = 6,
        kernel_size: int = 3,
        activation: str = "relu6",
    ):
        super().__init__()
        if stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        hidden = int(round(in_channels * expand_ratio))
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.expand_ratio = expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels

        if expand_ratio != 1:
            self.expand = ConvBNAct(in_channels, hidden, kernel_size=1, activation=activation)
        else:
            self.expand = nn.Identity()
        self.depthwise = ConvBNAct(
            hidden, hidden, kernel_size=kernel_size, stride=stride, groups=hidden, activation=activation
        )
        self.project = ConvBNAct(hidden, out_channels, kernel_size=1, activation=None)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.project(self.depthwise(self.expand(x)))
        if self.use_residual:
            out = out + x
        return out


class BasicBlock(nn.Module):
    """ResNet basic block: two equal-width convolutions with a residual add.

    ``kernel_size`` defaults to 3 as in ResNet; NetBooster's Table IV ablation
    instantiates it with ``kernel_size=1`` so the receptive field matches the
    pointwise convolution being expanded.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        kernel_size: int = 3,
        activation: str = "relu",
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.use_residual = stride == 1 and in_channels == out_channels
        self.conv1 = ConvBNAct(in_channels, out_channels, kernel_size, stride=stride, activation=activation)
        self.conv2 = ConvBNAct(out_channels, out_channels, kernel_size, activation=None)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.conv2(self.conv1(x))
        if self.use_residual:
            out = out + x
        return out


class Bottleneck(nn.Module):
    """ResNet bottleneck block: reduce → spatial conv → expand."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        reduction: int = 4,
        kernel_size: int = 3,
        activation: str = "relu",
    ):
        super().__init__()
        hidden = max(out_channels // reduction, 4)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.use_residual = stride == 1 and in_channels == out_channels
        self.reduce = ConvBNAct(in_channels, hidden, kernel_size=1, activation=activation)
        self.spatial = ConvBNAct(hidden, hidden, kernel_size, stride=stride, activation=activation)
        self.expand = ConvBNAct(hidden, out_channels, kernel_size=1, activation=None)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.expand(self.spatial(self.reduce(x)))
        if self.use_residual:
            out = out + x
        return out
