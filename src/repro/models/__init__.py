"""Model zoo: MobileNetV2 family, MCUNet and the tiny detector."""

from .blocks import BasicBlock, Bottleneck, ConvBNAct, InvertedResidual, make_divisible
from .detector import DetectionLoss, TinyDetector, decode_predictions
from .mcunet import MCUNet, mcunet
from .mobilenetv2 import MobileNetV2, mobilenet_v2
from .registry import MODEL_REGISTRY, available_models, create_model

__all__ = [
    "ConvBNAct",
    "InvertedResidual",
    "BasicBlock",
    "Bottleneck",
    "make_divisible",
    "MobileNetV2",
    "mobilenet_v2",
    "MCUNet",
    "mcunet",
    "TinyDetector",
    "DetectionLoss",
    "decode_predictions",
    "MODEL_REGISTRY",
    "create_model",
    "available_models",
]
