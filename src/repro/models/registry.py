"""Model registry mapping the paper's network names to constructors."""

from __future__ import annotations

from typing import Callable

from .. import nn
from .mcunet import mcunet
from .mobilenetv2 import mobilenet_v2

__all__ = ["MODEL_REGISTRY", "create_model", "available_models"]


MODEL_REGISTRY: dict[str, Callable[..., nn.Module]] = {
    "mobilenetv2-tiny": lambda num_classes=16, **kw: mobilenet_v2("tiny", num_classes=num_classes, **kw),
    "mobilenetv2-35": lambda num_classes=16, **kw: mobilenet_v2("35", num_classes=num_classes, **kw),
    "mobilenetv2-50": lambda num_classes=16, **kw: mobilenet_v2("50", num_classes=num_classes, **kw),
    "mobilenetv2-100": lambda num_classes=16, **kw: mobilenet_v2("100", num_classes=num_classes, **kw),
    "mcunet": lambda num_classes=16, **kw: mcunet(num_classes=num_classes, **kw),
}


def available_models() -> list[str]:
    """Names accepted by :func:`create_model`."""
    return sorted(MODEL_REGISTRY)


def create_model(name: str, num_classes: int = 16, **kwargs) -> nn.Module:
    """Instantiate a registered model by (case-insensitive) name."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    model = MODEL_REGISTRY[key](num_classes=num_classes, **kwargs)
    # Registry reference consumed by repro.runtime.artifact: lets a saved
    # compiled artifact rebuild the identical skeleton in a fresh process.
    model._registry_ref = {"name": key, "num_classes": num_classes, "kwargs": dict(kwargs)}
    return model
