"""Tiny single-scale anchor-free detector used for the Pascal-VOC experiment.

The paper finetunes an ImageNet-pretrained MobileNetV2-0.35 backbone on Pascal
VOC and reports AP50 (Table III).  This module provides the matching pieces
for the synthetic substrate:

* :class:`TinyDetector` — backbone features followed by a convolutional head
  that predicts, for every cell of the final feature map, an objectness score,
  a box (cell-relative centre + image-relative size) and class logits;
* target assignment (`build_targets`) and the multi-part detection loss;
* decoding of predictions into scored boxes for AP evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import functional as F
from .blocks import ConvBNAct

__all__ = ["TinyDetector", "DetectionLoss", "decode_predictions"]


class TinyDetector(nn.Module):
    """Single-scale dense detector on top of a classification backbone.

    Parameters
    ----------
    backbone:
        Any model exposing ``forward_features`` and ``feature_channels``
        (e.g. :class:`~repro.models.mobilenetv2.MobileNetV2`).
    num_classes:
        Number of object categories.
    image_size:
        Input resolution; together with the backbone stride this determines
        the prediction grid size.
    """

    def __init__(self, backbone: nn.Module, num_classes: int, image_size: int = 32, head_channels: int = 32):
        super().__init__()
        self.backbone = backbone
        self.num_classes = num_classes
        self.image_size = image_size
        self.head = ConvBNAct(backbone.feature_channels, head_channels, kernel_size=3, activation="relu")
        # Per-cell predictions: [objectness, tx, ty, tw, th, class logits...]
        self.predictor = nn.Conv2d(head_channels, 5 + num_classes, kernel_size=1, bias=True)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        features = self.backbone.forward_features(x)
        return self.predictor(self.head(features))

    def grid_size(self, image_size: int | None = None) -> int:
        """Prediction grid size for a given input resolution."""
        image_size = image_size or self.image_size
        probe = nn.Tensor(np.zeros((1, 3, image_size, image_size), dtype=np.float32))
        with nn.no_grad():
            was_training = self.training
            self.eval()
            out = self.forward(probe)
            self.train(was_training)
        return out.shape[-1]


def build_targets(
    boxes: np.ndarray,
    labels: np.ndarray,
    grid: int,
    image_size: int,
    num_classes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Assign ground-truth boxes to grid cells.

    Each object is assigned to the cell containing its centre.  Returns
    ``(objectness, box_targets, class_targets, positive_mask)`` with shapes
    ``(grid, grid)``, ``(grid, grid, 4)``, ``(grid, grid)`` and
    ``(grid, grid)`` respectively.  Box targets are
    ``(cx_offset, cy_offset, w_frac, h_frac)`` — centre offsets within the
    cell in ``[0, 1]`` and width/height as a fraction of the image.
    """
    objectness = np.zeros((grid, grid), dtype=np.float32)
    box_targets = np.zeros((grid, grid, 4), dtype=np.float32)
    class_targets = np.zeros((grid, grid), dtype=np.int64)
    cell = image_size / grid
    for box, label in zip(boxes, labels):
        x0, y0, x1, y1 = box
        cx, cy = (x0 + x1) / 2.0, (y0 + y1) / 2.0
        col = min(int(cx / cell), grid - 1)
        row = min(int(cy / cell), grid - 1)
        objectness[row, col] = 1.0
        box_targets[row, col] = [
            cx / cell - col,
            cy / cell - row,
            (x1 - x0) / image_size,
            (y1 - y0) / image_size,
        ]
        class_targets[row, col] = label
    return objectness, box_targets, class_targets, objectness.copy()


@dataclass
class DetectionLoss:
    """Weighted sum of objectness, box-regression and classification losses."""

    box_weight: float = 5.0
    class_weight: float = 1.0
    noobj_weight: float = 0.5

    def __call__(
        self,
        predictions: nn.Tensor,
        objectness: np.ndarray,
        box_targets: np.ndarray,
        class_targets: np.ndarray,
    ) -> nn.Tensor:
        """Compute the loss for a batch.

        Parameters
        ----------
        predictions:
            Raw head output ``(N, 5 + C, G, G)``.
        objectness / box_targets / class_targets:
            Stacked outputs of :func:`build_targets` for the batch, shapes
            ``(N, G, G)``, ``(N, G, G, 4)`` and ``(N, G, G)``.
        """
        n, channels, grid, _ = predictions.shape
        num_classes = channels - 5

        obj_logits = predictions[:, 0, :, :]
        weights = np.where(objectness > 0.5, 1.0, self.noobj_weight).astype(np.float32)
        obj_loss = F.binary_cross_entropy_with_logits(obj_logits, objectness, weight=weights)

        positive = objectness > 0.5
        num_positive = int(positive.sum())
        if num_positive == 0:
            return obj_loss

        # Box regression on positive cells only.
        box_preds = predictions[:, 1:5, :, :].transpose(0, 2, 3, 1).sigmoid()
        mask = nn.Tensor(positive[..., None].astype(np.float32))
        box_diff = (box_preds - nn.Tensor(box_targets)) * mask
        box_loss = (box_diff * box_diff).sum() * (1.0 / max(num_positive, 1))

        # Classification on positive cells.
        class_logits = predictions[:, 5:, :, :].transpose(0, 2, 3, 1).reshape(-1, num_classes)
        flat_positive = positive.reshape(-1)
        positive_logits = class_logits[np.nonzero(flat_positive)[0]]
        class_loss = F.cross_entropy(positive_logits, class_targets.reshape(-1)[flat_positive])

        return obj_loss + self.box_weight * box_loss + self.class_weight * class_loss


def decode_predictions(
    predictions: np.ndarray,
    image_size: int,
    score_threshold: float = 0.3,
    max_detections: int = 10,
) -> list[dict[str, np.ndarray]]:
    """Convert raw head outputs into per-image detection lists.

    Returns one dict per image with keys ``boxes`` (``(K, 4)``), ``scores``
    and ``labels``, sorted by score and truncated to ``max_detections``.
    """
    results = []
    n, channels, grid, _ = predictions.shape
    cell = image_size / grid
    for i in range(n):
        pred = predictions[i]
        obj = 1.0 / (1.0 + np.exp(-pred[0]))
        box_raw = 1.0 / (1.0 + np.exp(-pred[1:5]))
        class_logits = pred[5:]
        class_probs = np.exp(class_logits - class_logits.max(axis=0, keepdims=True))
        class_probs /= class_probs.sum(axis=0, keepdims=True)

        boxes, scores, labels = [], [], []
        for row in range(grid):
            for col in range(grid):
                score = float(obj[row, col])
                if score < score_threshold:
                    continue
                cx = (col + box_raw[0, row, col]) * cell
                cy = (row + box_raw[1, row, col]) * cell
                w = box_raw[2, row, col] * image_size
                h = box_raw[3, row, col] * image_size
                label = int(class_probs[:, row, col].argmax())
                boxes.append([cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2])
                scores.append(score * float(class_probs[label, row, col]))
                labels.append(label)
        if boxes:
            order = np.argsort(scores)[::-1][:max_detections]
            results.append(
                {
                    "boxes": np.asarray(boxes, dtype=np.float32)[order],
                    "scores": np.asarray(scores, dtype=np.float32)[order],
                    "labels": np.asarray(labels, dtype=np.int64)[order],
                }
            )
        else:
            results.append(
                {
                    "boxes": np.zeros((0, 4), dtype=np.float32),
                    "scores": np.zeros((0,), dtype=np.float32),
                    "labels": np.zeros((0,), dtype=np.int64),
                }
            )
    return results
