"""MCUNet-style network.

MCUNet (Lin et al., 2020) is a neural-architecture-searched MobileNet-like
network for microcontrollers; its blocks are inverted residuals with varying
kernel sizes (3/5/7) and expansion ratios (3/4/6).  This module reproduces
that *shape* of architecture at the reduced scale used throughout this repo,
so the Table I comparison "MCUNet + NetBooster vs. NetAug vs. vanilla" can be
run on the same substrate.
"""

from __future__ import annotations

from .. import nn
from .blocks import ConvBNAct, InvertedResidual, make_divisible

__all__ = ["MCUNet", "mcunet"]

# (expand_ratio, channels, stride, kernel_size) — a fixed, NAS-like mixed
# configuration reminiscent of the published MCUNet backbones.
_MCUNET_BLOCKS: list[tuple[int, int, int, int]] = [
    (1, 12, 1, 3),
    (4, 16, 2, 5),
    (3, 16, 1, 3),
    (6, 24, 2, 5),
    (4, 24, 1, 7),
    (6, 32, 1, 3),
]


class MCUNet(nn.Module):
    """A small NAS-style inverted-residual network with mixed kernel sizes."""

    def __init__(
        self,
        num_classes: int = 16,
        width_mult: float = 1.0,
        stem_channels: int = 12,
        head_channels: int = 48,
        in_channels: int = 3,
    ):
        super().__init__()
        self.num_classes = num_classes
        self.width_mult = width_mult
        stem_out = make_divisible(stem_channels * width_mult)
        head_out = make_divisible(head_channels * max(width_mult, 1.0))

        layers: list[nn.Module] = [ConvBNAct(in_channels, stem_out, kernel_size=3, stride=2)]
        channels = stem_out
        for expand_ratio, base_channels, stride, kernel_size in _MCUNET_BLOCKS:
            out_channels = make_divisible(base_channels * width_mult)
            layers.append(
                InvertedResidual(
                    channels,
                    out_channels,
                    stride=stride,
                    expand_ratio=expand_ratio,
                    kernel_size=kernel_size,
                )
            )
            channels = out_channels
        layers.append(ConvBNAct(channels, head_out, kernel_size=1))
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(head_out, num_classes)
        self.feature_channels = head_out

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.features(x)
        x = self.flatten(self.pool(x))
        return self.classifier(x)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        """Return the backbone feature map."""
        return self.features(x)

    def reset_classifier(self, num_classes: int) -> None:
        """Replace the classification head."""
        self.classifier = nn.Linear(self.feature_channels, num_classes)
        self.num_classes = num_classes


def mcunet(num_classes: int = 16, width_mult: float = 1.0) -> MCUNet:
    """Build the MCUNet-style model."""
    return MCUNet(num_classes=num_classes, width_mult=width_mult)
