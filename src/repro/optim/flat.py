"""Flat-parameter buffers: optimiser state as a few contiguous arrays.

The eager optimisers walk the parameter list in Python, issuing a handful of
small NumPy ops per parameter per step — for a MobileNetV2-scale model that is
hundreds of interpreter round-trips per update.  :class:`FlatParams` instead
rebinds every trainable parameter's ``data`` to a *view* into one contiguous
buffer (and every ``grad`` to a view into a parallel gradient buffer), after
which SGD with momentum/Nesterov/weight-decay, gradient clipping and EMA each
become a handful of vectorised in-place ops over the whole model at once.

Because the autograd tape accumulates gradients with ``param.grad += g`` when
a gradient buffer is already bound (see ``Tensor._accumulate``), the eager
backward pass and the compiled training runtime both write straight into the
flat gradient buffer — no gather step is needed in :meth:`FlatSGD.step`.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter
from .sgd import SGD

__all__ = ["FlatParams", "FlatSGD"]


class FlatParams:
    """View a list of parameters as one contiguous data/grad buffer pair.

    Parameters
    ----------
    params:
        Trainable parameters.  Duplicates (shared parameters) are kept once.

    Attributes
    ----------
    data:
        1-D ``float32`` buffer; each parameter's ``data`` is a reshaped view
        into it, so in-place updates on either side are immediately visible
        on the other.
    grad:
        1-D gradient buffer of the same size; :meth:`bind_grads` points each
        parameter's ``grad`` at its slice.
    params:
        The deduplicated parameter list, in traversal order.
    """

    def __init__(self, params: list[Parameter]):
        seen: set[int] = set()
        unique: list[Parameter] = []
        for param in params:
            if id(param) not in seen:
                seen.add(id(param))
                unique.append(param)
        for param in unique:
            if param.data.dtype != np.float32:
                # Rebinding into the float32 buffer would silently downcast.
                raise TypeError(
                    f"FlatParams requires float32 parameters, got {param.data.dtype}; "
                    "use the per-parameter SGD for mixed-precision models"
                )
        self.params = unique
        total = int(sum(p.data.size for p in unique))
        self.data = np.empty(total, dtype=np.float32)
        self.grad = np.zeros(total, dtype=np.float32)
        self._data_views: list[np.ndarray] = []
        self._grad_views: list[np.ndarray] = []
        offset = 0
        for param in unique:
            size = param.data.size
            data_view = self.data[offset : offset + size].reshape(param.data.shape)
            grad_view = self.grad[offset : offset + size].reshape(param.data.shape)
            np.copyto(data_view, param.data)
            param.data = data_view
            self._data_views.append(data_view)
            self._grad_views.append(grad_view)
            offset += size

    @property
    def size(self) -> int:
        """Total number of scalar parameters in the buffer."""
        return self.data.size

    def bind_grads(self) -> None:
        """Zero the gradient buffer and point every ``param.grad`` at it.

        After this, tape accumulation (``grad += g``) lands directly in
        :attr:`grad`; no per-parameter gather is needed before an update.
        """
        self.grad.fill(0.0)
        for param, view in zip(self.params, self._grad_views):
            param.grad = view

    def sync_grads(self) -> None:
        """Re-absorb gradients that were rebound away from the flat buffer.

        Code that calls ``model.zero_grad()`` (setting ``grad = None``) makes
        the next backward pass allocate a fresh gradient array; this folds
        such strays back into the flat buffer and re-binds the views.
        """
        for index, (param, view) in enumerate(zip(self.params, self._grad_views)):
            grad = param.grad
            if grad is view:
                continue
            if grad is None:
                view.fill(0.0)
            else:
                np.copyto(view, grad)
            param.grad = view

    def check_bound(self) -> bool:
        """True while every parameter's ``data`` is still a flat-buffer view."""
        return all(p.data is v for p, v in zip(self.params, self._data_views))


class FlatSGD(SGD):
    """Drop-in :class:`~repro.optim.sgd.SGD` over a flat parameter buffer.

    The update math is element-wise identical to ``SGD`` (same operations in
    the same order per element), so swapping it in does not change training
    trajectories — it only collapses the per-parameter Python loop into ~5
    whole-model vectorised ops with zero per-step allocations.

    Notes
    -----
    Parameters whose gradient never arrives are treated as having a zero
    gradient (the flat buffer is dense): with ``weight_decay > 0`` they decay
    towards zero, where the eager ``SGD`` would skip them entirely.  Inside
    the training loop every live parameter receives a gradient each step, so
    the trajectories coincide.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr, momentum=momentum, weight_decay=weight_decay, nesterov=nesterov)
        self.flat = FlatParams(self.params)
        # Re-point the (deduplicated) parameter list at the flat ordering.
        self.params = self.flat.params
        self._velocity_flat = np.zeros(self.flat.size, dtype=np.float32) if momentum else None
        self._scratch = np.empty(self.flat.size, dtype=np.float32)
        self._scratch2 = np.empty(self.flat.size, dtype=np.float32) if nesterov else None
        self.flat.bind_grads()

    def zero_grad(self) -> None:
        """Zero the flat gradient buffer and re-bind every ``param.grad``."""
        self.flat.bind_grads()

    def step(self) -> None:
        """One vectorised update over the whole flat buffer.

        Element-wise the operations and their order match ``SGD.step``
        exactly, so the two optimisers produce bit-identical trajectories.
        """
        self.flat.sync_grads()
        data, grad, scratch = self.flat.data, self.flat.grad, self._scratch
        if self.weight_decay:
            np.multiply(data, self.weight_decay, out=scratch)
            scratch += grad
            update = scratch
        else:
            update = grad
        if self.momentum:
            velocity = self._velocity_flat
            velocity *= self.momentum
            velocity += update
            if self.nesterov:
                if update is not scratch:
                    np.copyto(scratch, update)
                    update = scratch
                np.multiply(velocity, self.momentum, out=self._scratch2)
                update += self._scratch2
            else:
                update = velocity
        # The final scaled step goes through the scratch buffer so the
        # gradient and velocity buffers survive the update unmodified.
        np.multiply(update, self.lr, out=scratch)
        data -= scratch

    def state_dict(self) -> dict:
        """Optimiser state as flat arrays (velocity buffer + learning rate).

        The parameter buffer itself is *not* included — it aliases the
        model's parameters and belongs to the model checkpoint.
        """
        velocity = self._velocity_flat
        return {
            "velocity": velocity.copy() if velocity is not None else np.empty(0, np.float32),
            "lr": np.float64(self.lr),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place (buffers keep identity)."""
        velocity = np.asarray(state["velocity"], dtype=np.float32)
        if self._velocity_flat is None:
            if velocity.size:
                raise ValueError("checkpoint has momentum state but momentum is disabled")
        else:
            if velocity.size != self._velocity_flat.size:
                raise ValueError(
                    f"velocity size mismatch: checkpoint {velocity.size} vs "
                    f"model {self._velocity_flat.size}"
                )
            np.copyto(self._velocity_flat, velocity)
        self.lr = float(state["lr"])
