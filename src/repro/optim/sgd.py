"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

__all__ = ["SGD", "Optimizer"]


class Optimizer:
    """Base optimiser: tracks a parameter list and a mutable learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr < 0:
            raise ValueError("learning rate must be non-negative")
        self.params = [p for p in params if p.requires_grad]
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical or Nesterov momentum and decoupled-style weight decay.

    Matches the paper's training recipe (SGD, momentum 0.9, cosine schedule).

    Parameters
    ----------
    params:
        Parameters to optimise.
    lr:
        Initial learning rate (mutated in place by LR schedulers).
    momentum:
        Momentum coefficient; ``0`` disables the velocity buffer.
    weight_decay:
        L2 penalty added to the gradient.
    nesterov:
        Use Nesterov momentum.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        """Apply one update using the gradients accumulated on the parameters."""
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(param.data)
                velocity = self._velocity[index]
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad
