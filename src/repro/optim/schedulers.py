"""Learning-rate schedules.

The paper trains the deep giant with a cosine-annealed learning rate and uses
warmup-free SGD; downstream finetuning recipes reuse the same schedulers with
shorter horizons.
"""

from __future__ import annotations

import math

from .sgd import Optimizer

__all__ = [
    "LRScheduler",
    "CosineAnnealingLR",
    "StepLR",
    "MultiStepLR",
    "ExponentialLR",
    "PolynomialLR",
    "LambdaLR",
    "LinearWarmup",
    "ConstantLR",
]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch (or iteration)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_step = -1

    def get_lr(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance the schedule and write the new learning rate to the optimiser."""
        self.last_step += 1
        lr = self.get_lr(self.last_step)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """Keep the learning rate fixed (useful as a baseline in tests)."""

    def get_lr(self, step: int) -> float:
        return self.base_lr


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        self.total_steps = max(int(total_steps), 1)
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = max(int(step_size), 1)
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * (self.gamma ** (step // self.step_size))


class MultiStepLR(LRScheduler):
    """Multiply the LR by ``gamma`` once per milestone step.

    The milestones are absolute step indices (e.g. epochs ``[30, 60, 90]`` for
    a 100-epoch run).
    """

    def __init__(self, optimizer: Optimizer, milestones: list[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        passed = sum(1 for milestone in self.milestones if step >= milestone)
        return self.base_lr * (self.gamma ** passed)


class ExponentialLR(LRScheduler):
    """Multiply the LR by ``gamma`` every step."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * (self.gamma ** step)


class PolynomialLR(LRScheduler):
    """Polynomial decay from the base LR to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, power: float = 1.0, min_lr: float = 0.0):
        super().__init__(optimizer)
        self.total_steps = max(int(total_steps), 1)
        self.power = power
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        return self.min_lr + (self.base_lr - self.min_lr) * (1.0 - progress) ** self.power


class LambdaLR(LRScheduler):
    """Scale the base LR by an arbitrary user-supplied function of the step."""

    def __init__(self, optimizer: Optimizer, lr_lambda):
        super().__init__(optimizer)
        self.lr_lambda = lr_lambda

    def get_lr(self, step: int) -> float:
        return self.base_lr * float(self.lr_lambda(step))


class LinearWarmup(LRScheduler):
    """Linear warmup into another scheduler.

    During the first ``warmup_steps`` the LR ramps from ``warmup_start`` to the
    base LR; afterwards the wrapped scheduler (re-based to the post-warmup
    step count) takes over.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        after: LRScheduler | None = None,
        warmup_start: float = 0.0,
    ):
        super().__init__(optimizer)
        self.warmup_steps = max(int(warmup_steps), 0)
        self.after = after
        self.warmup_start = warmup_start

    def get_lr(self, step: int) -> float:
        if step < self.warmup_steps:
            fraction = (step + 1) / max(self.warmup_steps, 1)
            return self.warmup_start + (self.base_lr - self.warmup_start) * fraction
        if self.after is None:
            return self.base_lr
        return self.after.get_lr(step - self.warmup_steps)
