"""Shared-memory collective communication for data-parallel training.

PR 3 collapsed every model into one contiguous :class:`~repro.optim.flat.FlatParams`
buffer pair, which makes gradient synchronisation between training workers a
*whole-buffer* problem: no per-parameter traffic, no gather/scatter — just a
handful of vectorised ops over one float32 array per worker per step.  This
module supplies the two primitives the distributed trainer builds on:

:class:`PipeBarrier`
    A sequence-tagged rendezvous over ``multiprocessing`` pipes.  Rank 0
    coordinates: every other rank sends its sequence number and blocks until
    rank 0 echoes it back once all ranks have arrived.  Sequence tags catch
    protocol drift (a worker skipping or double-counting a collective turns
    into an immediate error instead of silent corruption), and every receive
    carries a timeout so a dead peer surfaces as a ``RuntimeError`` rather
    than a hang.

:class:`ReductionArena`
    A double-buffered ``multiprocessing.shared_memory`` reduction arena.  The
    segment holds, per bank, one *slot* per worker plus one *reduced* row::

        bank 0: [slot 0][slot 1]...[slot W-1][reduced]
        bank 1: [slot 0][slot 1]...[slot W-1][reduced]

    Collectives alternate banks each round.  The two banks are what make the
    protocol cheap: a fast worker that races ahead into the next round writes
    the *other* bank, so the copy-out/read phase of a round never needs a
    trailing barrier to protect it from the next round's publish phase.
    An allreduce is then two barriers, a gossip round just one.

    **Allreduce** (``topology="allreduce"``) is a chunked
    reduce-scatter + all-gather: every rank publishes its buffer into its
    slot, then reduces only the chunk of the flat buffer it *owns* (rank ``r``
    owns elements ``[r * ceil(P/W), (r+1) * ceil(P/W))``) across all slots
    into the shared ``reduced`` row — the reduction work is split across
    workers — and finally copies the whole reduced row back out.  Summation
    runs in ascending rank order, so the result is bitwise deterministic for
    a fixed worker count.

    **Gossip** (``topology="gossip"``) is DACFL-style decentralised
    neighbour averaging on a ring: each rank publishes, waits one barrier,
    and averages its own slot with its left/right ring neighbours.  No global
    reduction, no central server — information diffuses around the ring at
    one hop per round.
"""

from __future__ import annotations

import math
from multiprocessing import shared_memory

import numpy as np

__all__ = ["PipeBarrier", "ReductionArena", "arena_nbytes"]


class PipeBarrier:
    """Rendezvous of ``world`` processes over pipes, coordinated by rank 0.

    Parameters
    ----------
    rank, world:
        This process's rank and the total number of participants.
    conns:
        For rank 0: the list of ``world - 1`` parent-side connections, ordered
        by peer rank.  For every other rank: the single connection to rank 0.
        Ignored when ``world == 1`` (the barrier is a no-op).
    timeout:
        Seconds to wait for a peer before declaring it dead.
    """

    def __init__(self, rank: int, world: int, conns=None, timeout: float = 120.0):
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} out of range for world {world}")
        self.rank = rank
        self.world = world
        self.timeout = timeout
        self._seq = 0
        if world == 1:
            self._conns = []
            self._conn = None
        elif rank == 0:
            if conns is None or len(conns) != world - 1:
                raise ValueError(f"rank 0 needs {world - 1} connections")
            self._conns = list(conns)
            self._conn = None
        else:
            self._conns = []
            self._conn = conns

    def _recv(self, conn) -> int:
        try:
            if not conn.poll(self.timeout):
                raise RuntimeError(
                    f"barrier timed out after {self.timeout:.0f}s at sequence "
                    f"{self._seq} (rank {self.rank}): a peer is stuck or dead"
                )
            return conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError) as exc:
            raise RuntimeError(
                f"barrier peer died at sequence {self._seq} (rank {self.rank})"
            ) from exc

    def wait(self) -> None:
        """Block until every rank has entered the barrier this many times."""
        self._seq += 1
        if self.world == 1:
            return
        if self.rank == 0:
            for conn in self._conns:
                seq = self._recv(conn)
                if seq != self._seq:
                    raise RuntimeError(
                        f"barrier sequence drift: peer at {seq}, rank 0 at {self._seq}"
                    )
            for conn in self._conns:
                conn.send(self._seq)
        else:
            try:
                self._conn.send(self._seq)
            except (BrokenPipeError, OSError) as exc:
                raise RuntimeError(
                    f"barrier peer died at sequence {self._seq} (rank {self.rank})"
                ) from exc
            seq = self._recv(self._conn)
            if seq != self._seq:
                raise RuntimeError(
                    f"barrier sequence drift: rank 0 at {seq}, rank {self.rank} at {self._seq}"
                )


def arena_nbytes(world: int, size: int) -> int:
    """Bytes of shared memory an arena for ``world`` workers of ``size`` floats needs."""
    return 2 * (world + 1) * size * 4


class ReductionArena:
    """Worker-side view of the double-buffered shared-memory reduction arena.

    Parameters
    ----------
    shm:
        An attached :class:`multiprocessing.shared_memory.SharedMemory` of at
        least :func:`arena_nbytes` bytes (created by the coordinating parent).
    world:
        Number of participating workers.
    size:
        Flat-buffer length in float32 elements.
    rank:
        This worker's rank.
    barrier:
        The shared :class:`PipeBarrier`; collectives interleave their phases
        with its :meth:`~PipeBarrier.wait`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        world: int,
        size: int,
        rank: int,
        barrier: PipeBarrier,
    ):
        if world < 1 or size < 1:
            raise ValueError("world and size must be positive")
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} out of range for world {world}")
        self.shm = shm
        self.world = world
        self.size = size
        self.rank = rank
        self.barrier = barrier
        self._banks = np.ndarray((2, world + 1, size), dtype=np.float32, buffer=shm.buf)
        self._bank = 0
        chunk = math.ceil(size / world)
        self._lo = min(rank * chunk, size)
        self._hi = min((rank + 1) * chunk, size)
        # Ring neighbours for gossip, deduplicated (world 2: left == right) and
        # in ascending rank order so the averaging sum is order-deterministic.
        self._neighbourhood = sorted({(rank - 1) % world, rank, (rank + 1) % world})

    def _next_bank(self) -> int:
        bank = self._bank
        self._bank ^= 1
        return bank

    def allreduce(self, buf: np.ndarray, contributors: int | None = None) -> None:
        """In-place mean of ``buf`` across workers (sum / ``contributors``).

        Every rank must call this the same number of times with the same
        ``contributors`` value.  Ranks that have nothing to contribute this
        round (the ragged tail of an epoch) must still call it with a zeroed
        buffer so the barrier count stays aligned; ``contributors`` then
        scales the sum by the number of ranks that actually held data.
        """
        world = self.world
        if world == 1:
            return
        divisor = world if contributors is None else contributors
        if not 1 <= divisor <= world:
            raise ValueError(f"contributors {divisor} out of range for world {world}")
        bank = self._next_bank()
        slots = self._banks[bank]
        np.copyto(slots[self.rank], buf)
        self.barrier.wait()
        lo, hi = self._lo, self._hi
        if hi > lo:
            reduced = slots[world, lo:hi]
            np.copyto(reduced, slots[0, lo:hi])
            for peer in range(1, world):
                reduced += slots[peer, lo:hi]
            reduced /= np.float32(divisor)
        self.barrier.wait()
        np.copyto(buf, slots[world])

    def gossip(self, buf: np.ndarray) -> None:
        """In-place ring-neighbour average of ``buf`` (self + left + right).

        One barrier per round: the publish phase is fenced, and the read
        phase is protected from the *next* round's publish by the bank flip.
        """
        if self.world == 1:
            return
        bank = self._next_bank()
        slots = self._banks[bank]
        np.copyto(slots[self.rank], buf)
        self.barrier.wait()
        members = self._neighbourhood
        np.copyto(buf, slots[members[0]])
        for peer in members[1:]:
            buf += slots[peer]
        buf /= np.float32(len(members))

    def close(self) -> None:
        """Drop the numpy views and detach from the shared segment."""
        self._banks = None
        self.shm.close()
