"""Optimisers, learning-rate schedules and training-stability utilities."""

from .adaptive import Adam, AdamW, RMSprop
from .allreduce import PipeBarrier, ReductionArena, arena_nbytes
from .clip import clip_grad_norm, clip_grad_norm_, clip_grad_value, global_grad_norm
from .ema import ModelEMA
from .flat import FlatParams, FlatSGD
from .schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    LambdaLR,
    LinearWarmup,
    LRScheduler,
    MultiStepLR,
    PolynomialLR,
    StepLR,
)
from .sgd import SGD, Optimizer

__all__ = [
    "SGD",
    "FlatSGD",
    "FlatParams",
    "PipeBarrier",
    "ReductionArena",
    "arena_nbytes",
    "Adam",
    "AdamW",
    "RMSprop",
    "Optimizer",
    "ModelEMA",
    "clip_grad_norm",
    "clip_grad_norm_",
    "clip_grad_value",
    "global_grad_norm",
    "LRScheduler",
    "ConstantLR",
    "CosineAnnealingLR",
    "StepLR",
    "MultiStepLR",
    "ExponentialLR",
    "PolynomialLR",
    "LambdaLR",
    "LinearWarmup",
]
