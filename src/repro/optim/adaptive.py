"""Adaptive first-order optimisers: Adam, AdamW and RMSprop.

The paper's recipe uses SGD with momentum, but downstream finetuning and the
detection head train more robustly with adaptive step sizes at very small
batch sizes, so the substrate ships the standard family.  All optimisers share
the :class:`~repro.optim.sgd.Optimizer` base class so that the learning-rate
schedulers apply uniformly.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter
from .sgd import Optimizer

__all__ = ["Adam", "AdamW", "RMSprop"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional coupled L2 weight decay.

    Parameters
    ----------
    params:
        Parameters to optimise.
    lr:
        Step size.
    betas:
        Exponential decay rates for the first and second moment estimates.
    eps:
        Numerical damping added to the denominator.
    weight_decay:
        Classic (coupled) L2 penalty added to the gradient; see
        :class:`AdamW` for the decoupled variant.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._exp_avg = [np.zeros_like(p.data) for p in self.params]
        self._exp_avg_sq = [np.zeros_like(p.data) for p in self.params]

    def _apply_update(self, param: Parameter, grad: np.ndarray, index: int) -> None:
        exp_avg = self._exp_avg[index]
        exp_avg_sq = self._exp_avg_sq[index]
        exp_avg *= self.beta1
        exp_avg += (1.0 - self.beta1) * grad
        exp_avg_sq *= self.beta2
        exp_avg_sq += (1.0 - self.beta2) * grad * grad
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        corrected_avg = exp_avg / bias_correction1
        corrected_sq = exp_avg_sq / bias_correction2
        param.data -= self.lr * corrected_avg / (np.sqrt(corrected_sq) + self.eps)

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._step_count += 1
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._apply_update(param, grad, index)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    The decay is applied directly to the weights, scaled by the learning rate,
    instead of being folded into the gradient.
    """

    def step(self) -> None:
        self._step_count += 1
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            self._apply_update(param, param.grad, index)


class RMSprop(Optimizer):
    """RMSprop with optional momentum, following the TensorFlow formulation."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-2,
        alpha: float = 0.99,
        eps: float = 1e-8,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must lie in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._square_avg = [np.zeros_like(p.data) for p in self.params]
        self._buffer = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one RMSprop update from the accumulated gradients."""
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            square_avg = self._square_avg[index]
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad * grad
            update = grad / (np.sqrt(square_avg) + self.eps)
            if self.momentum:
                buffer = self._buffer[index]
                buffer *= self.momentum
                buffer += update
                update = buffer
            param.data -= self.lr * update
