"""Exponential moving average of model weights.

Weight averaging is a cheap way to squeeze extra validation accuracy out of
the deep-giant training run; the averaged weights are what get handed to
Progressive Linearization Tuning in the "EMA" ablation.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..nn.module import Module

__all__ = ["ModelEMA"]


class ModelEMA:
    """Track an exponential moving average of a model's state dict.

    Parameters
    ----------
    model:
        The live model being trained.  Its current state initialises the
        average.
    decay:
        Smoothing factor; ``averaged = decay * averaged + (1 - decay) * live``.

    Usage::

        ema = ModelEMA(model, decay=0.999)
        for batch in loader:
            ...optimiser step...
            ema.update(model)
        ema.copy_to(eval_model)
    """

    def __init__(self, model: Module, decay: float = 0.999):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie in (0, 1)")
        self.decay = decay
        self.updates = 0
        self.shadow: "OrderedDict[str, np.ndarray]" = OrderedDict(
            (name, value.copy()) for name, value in model.state_dict().items()
        )

    def update(self, model: Module) -> None:
        """Fold the model's current weights into the running average."""
        self.updates += 1
        state = model.state_dict()
        if set(state) != set(self.shadow):
            raise KeyError("model state keys changed since the EMA was created")
        for name, value in state.items():
            shadow = self.shadow[name]
            if np.issubdtype(shadow.dtype, np.floating):
                shadow *= self.decay
                shadow += (1.0 - self.decay) * value
            else:
                # Integer buffers (e.g. counters) track the live model exactly.
                self.shadow[name] = value.copy()

    def copy_to(self, model: Module) -> None:
        """Write the averaged weights into ``model``."""
        model.load_state_dict(self.shadow)

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a copy of the averaged weights."""
        return OrderedDict((name, value.copy()) for name, value in self.shadow.items())
