"""Exponential moving average of model weights.

Weight averaging is a cheap way to squeeze extra validation accuracy out of
the deep-giant training run; the averaged weights are what get handed to
Progressive Linearization Tuning in the "EMA" ablation.

The shadow state lives in one contiguous float buffer (plus per-name views),
so :meth:`ModelEMA.update` is three whole-model vectorised ops and a set of
buffer-to-buffer copies — no per-parameter temporaries are allocated, where
the previous implementation materialised a full ``state_dict()`` copy plus a
``(1 - decay) * value`` array for every entry on every step.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..nn.module import Module

__all__ = ["ModelEMA"]


class ModelEMA:
    """Track an exponential moving average of a model's state dict.

    Parameters
    ----------
    model:
        The live model being trained.  Its current state initialises the
        average.
    decay:
        Smoothing factor; ``averaged = decay * averaged + (1 - decay) * live``.

    Attributes
    ----------
    shadow:
        Mapping of state-dict name to the averaged array.  Float entries are
        views into one flat buffer; treat them as read-only.

    Usage::

        ema = ModelEMA(model, decay=0.999)
        for batch in loader:
            ...optimiser step...
            ema.update(model)
        ema.copy_to(eval_model)
    """

    def __init__(self, model: Module, decay: float = 0.999):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie in (0, 1)")
        self.decay = decay
        self.updates = 0
        state = model.state_dict()
        self._keys = tuple(state)
        # Only float32 entries join the flat buffer (anything else would be
        # silently downcast); other float dtypes take the per-name EMA path.
        self._float_names = [
            name for name, value in state.items() if value.dtype == np.float32
        ]
        self._other_float_names = frozenset(
            name
            for name, value in state.items()
            if np.issubdtype(value.dtype, np.floating) and value.dtype != np.float32
        )
        total = int(sum(state[name].size for name in self._float_names))
        self._flat = np.empty(total, dtype=np.float32)
        self._scratch = np.empty(total, dtype=np.float32)
        self.shadow: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._scratch_views: dict[str, np.ndarray] = {}
        float_names = set(self._float_names)
        offset = 0
        for name, value in state.items():
            if name in float_names:
                view = self._flat[offset : offset + value.size].reshape(value.shape)
                np.copyto(view, value)
                self.shadow[name] = view
                self._scratch_views[name] = self._scratch[offset : offset + value.size].reshape(
                    value.shape
                )
                offset += value.size
            else:
                # Integer buffers (e.g. counters) track the live model exactly.
                self.shadow[name] = value.copy()

    def _live_state(self, model: Module) -> "OrderedDict[str, np.ndarray]":
        """Name → live array mapping *without* copying (unlike ``state_dict``)."""
        live: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in model.named_parameters():
            live[name] = param.data
        for name, buf in model.named_buffers():
            live[name] = np.asarray(buf)
        return live

    def update(self, model: Module) -> None:
        """Fold the model's current weights into the running average.

        Allocation-free: live values are gathered into a preallocated scratch
        buffer, then the average advances with two in-place scalings and one
        in-place add over the whole flat buffer.
        """
        self.updates += 1
        live = self._live_state(model)
        if tuple(live) != self._keys and set(live) != set(self._keys):
            raise KeyError("model state keys changed since the EMA was created")
        for name in self._float_names:
            np.copyto(self._scratch_views[name], live[name])
        self._flat *= self.decay
        self._scratch *= 1.0 - self.decay
        self._flat += self._scratch
        for name in self._other_float_names:
            shadow = self.shadow[name]
            shadow *= self.decay
            shadow += (1.0 - self.decay) * live[name]
        for name, value in live.items():
            if name not in self._scratch_views and name not in self._other_float_names:
                np.copyto(self.shadow[name], value)

    def copy_to(self, model: Module) -> None:
        """Write the averaged weights into ``model``."""
        model.load_state_dict(self.shadow)

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a copy of the averaged weights."""
        return OrderedDict((name, value.copy()) for name, value in self.shadow.items())
