"""Gradient clipping utilities.

Clipping stabilises the first epochs of deep-giant training (the expanded
network is substantially deeper than the original TNN, so early gradients can
spike) and the tiny-batch downstream finetuning runs.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["clip_grad_norm", "clip_grad_norm_", "clip_grad_value", "global_grad_norm"]


def global_grad_norm(params: Iterable[Parameter]) -> float:
    """L2 norm of all gradients concatenated, ignoring parameters without one."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return math.sqrt(total)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Rescale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm measured *before* clipping, mirroring the PyTorch API so
    callers can log it.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


def clip_grad_norm_(target, max_norm: float) -> float:
    """Flat-buffer-aware global-norm clipping (in place).

    When ``target`` carries a flat gradient buffer (a
    :class:`~repro.optim.flat.FlatSGD`, a
    :class:`~repro.optim.flat.FlatParams`, or anything exposing a 1-D
    ``grad`` ndarray), the norm is one fused ``float64``-accumulated
    contraction and the rescale is a single in-place multiply — no per-param
    temporaries.  Plain parameter iterables fall back to
    :func:`clip_grad_norm`.

    Parameters
    ----------
    target:
        A flat optimiser / flat buffer, or an iterable of parameters.
    max_norm:
        Maximum allowed global L2 norm; must be positive.

    Returns
    -------
    float
        The global gradient norm measured *before* clipping.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    flat = getattr(target, "flat", target)
    grad = getattr(flat, "grad", None)
    if not (isinstance(grad, np.ndarray) and grad.ndim == 1):
        return clip_grad_norm(target, max_norm)
    if hasattr(flat, "sync_grads"):
        flat.sync_grads()
    norm = math.sqrt(float(np.einsum("i,i->", grad, grad, dtype=np.float64)))
    if norm > max_norm and norm > 0.0:
        grad *= max_norm / norm
    return norm


def clip_grad_value(params: Iterable[Parameter], clip_value: float) -> None:
    """Clamp every gradient element to ``[-clip_value, clip_value]`` in place."""
    if clip_value <= 0:
        raise ValueError("clip_value must be positive")
    for param in params:
        if param.grad is not None:
            np.clip(param.grad, -clip_value, clip_value, out=param.grad)
