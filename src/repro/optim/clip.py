"""Gradient clipping utilities.

Clipping stabilises the first epochs of deep-giant training (the expanded
network is substantially deeper than the original TNN, so early gradients can
spike) and the tiny-batch downstream finetuning runs.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["clip_grad_norm", "clip_grad_value", "global_grad_norm"]


def global_grad_norm(params: Iterable[Parameter]) -> float:
    """L2 norm of all gradients concatenated, ignoring parameters without one."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return math.sqrt(total)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Rescale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm measured *before* clipping, mirroring the PyTorch API so
    callers can log it.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


def clip_grad_value(params: Iterable[Parameter], clip_value: float) -> None:
    """Clamp every gradient element to ``[-clip_value, clip_value]`` in place."""
    if clip_value <= 0:
        raise ValueError("clip_value must be positive")
    for param in params:
        if param.grad is not None:
            np.clip(param.grad, -clip_value, clip_value, out=param.grad)
