"""Load generator for the serving engine and fleet: closed- and open-loop.

Drives anything with an ``Engine``-shaped ``submit`` — the in-process
:class:`~repro.serve.Engine` or a fleet
:class:`~repro.serve.transport.FleetClient` — in one of two modes:

* **Closed loop** (``mode="closed"``, the default): ``concurrency``
  synchronous clients, each submitting a request, waiting for its result,
  then submitting the next.  Offered load adapts to the server — the classic
  benchmark model, but it cannot overload anything.
* **Open loop** (``mode="open"``): requests are submitted on a fixed arrival
  schedule derived from ``rate`` (req/s) and ``duration_s`` regardless of
  how fast the server answers — the production model, and the only one that
  can actually drive a server past saturation.  ``traffic`` shapes the
  schedule: ``"constant"``, ``"ramp"`` (linear ramp up to ``rate``),
  ``"spike"`` (``spike_mult`` x burst inside ``spike_window``) and ``"step"``
  (rate doubles at ``step_at``).  The report's ``latency_ms_p99_tail`` is
  the p99 over the *last 35%* of the schedule — the post-convergence number
  an autoscaler is judged on.

Used by ``python -m repro.serve`` and ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

import numpy as np

__all__ = ["LoadReport", "run_load", "arrival_offsets", "TRAFFIC_SHAPES"]

TRAFFIC_SHAPES = ("constant", "ramp", "spike", "step")

_TAIL_FRACTION = 0.35  # share of the schedule counted as "post-convergence"


@dataclass
class LoadReport:
    """Result of one load run (closed- or open-loop)."""

    requests: int
    concurrency: int
    elapsed_s: float
    requests_per_sec: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    latency_ms_mean: float
    errors: int = 0
    timeouts: int = 0
    mode: str = "closed"
    offered: int = 0
    offered_rate: float = 0.0
    latency_ms_p99_tail: float | None = None

    def summary(self) -> str:
        if self.mode == "open":
            head = (
                f"{self.requests}/{self.offered} requests @ "
                f"{self.offered_rate:.1f} req/s offered (open loop): "
            )
        else:
            head = f"{self.requests} requests @ concurrency {self.concurrency}: "
        tail = (
            f", tail p99 {self.latency_ms_p99_tail:.2f} ms"
            if self.latency_ms_p99_tail is not None
            else ""
        )
        return (
            head
            + f"{self.requests_per_sec:.1f} req/s, "
            f"latency p50 {self.latency_ms_p50:.2f} ms / "
            f"p95 {self.latency_ms_p95:.2f} ms / p99 {self.latency_ms_p99:.2f} ms"
            + tail
            + (f", {self.errors} errors" if self.errors else "")
            + (f", {self.timeouts} timeouts" if self.timeouts else "")
        )


def arrival_offsets(
    traffic: str,
    rate: float,
    duration_s: float,
    *,
    ramp_from: float = 0.25,
    spike_mult: float = 4.0,
    spike_window: tuple[float, float] = (0.4, 0.6),
    step_at: float = 0.5,
    step_mult: float = 2.0,
) -> list[float]:
    """Deterministic open-loop arrival schedule, as offsets in seconds.

    The instantaneous rate function of each shape is integrated by stepping
    ``t += 1 / rate(t)`` — no randomness, so a schedule is exactly
    reproducible across runs and machines.

    * ``constant`` — ``rate`` throughout.
    * ``ramp`` — linear from ``ramp_from * rate`` up to ``rate``.
    * ``spike`` — ``rate``, but ``spike_mult * rate`` inside
      ``spike_window`` (fractions of the duration).
    * ``step`` — ``rate`` before ``step_at``, ``step_mult * rate`` after.
    """
    if traffic not in TRAFFIC_SHAPES:
        raise ValueError(f"unknown traffic shape {traffic!r}; known: {TRAFFIC_SHAPES}")
    if rate <= 0 or duration_s <= 0:
        raise ValueError("rate and duration_s must be > 0")
    lo, hi = spike_window
    if not 0 <= lo < hi <= 1:
        raise ValueError("spike_window must satisfy 0 <= lo < hi <= 1")

    def rate_at(t: float) -> float:
        frac = t / duration_s
        if traffic == "ramp":
            return rate * (ramp_from + (1.0 - ramp_from) * frac)
        if traffic == "spike":
            return rate * spike_mult if lo <= frac < hi else rate
        if traffic == "step":
            return rate * step_mult if frac >= step_at else rate
        return rate

    offsets: list[float] = []
    t = 0.0
    while t < duration_s:
        offsets.append(t)
        t += 1.0 / rate_at(t)
    return offsets


def run_load(
    engine,
    n_requests: int,
    concurrency: int = 8,
    input_shape: tuple[int, int, int] | None = None,
    seed: int = 0,
    warmup: int = 8,
    timeout: float | None = None,
    mode: str = "closed",
    rate: float | None = None,
    duration_s: float | None = None,
    traffic: str = "constant",
    **shape_kwargs,
) -> LoadReport:
    """Drive ``engine`` with synthetic load and report latency percentiles.

    Parameters
    ----------
    engine:
        An :class:`~repro.serve.Engine` or
        :class:`~repro.serve.transport.FleetClient` (anything with
        ``submit``).
    n_requests:
        Total measured requests across all clients (closed loop only; the
        open-loop count comes from ``rate * duration_s``).
    concurrency:
        Number of concurrent closed-loop clients.
    input_shape:
        Per-sample shape; defaults to ``engine.input_shape``.
    seed:
        Seed for the synthetic request payloads.
    warmup:
        Unmeasured requests issued first (plan building, kernel auto-tuning).
    timeout:
        Per-request wait in seconds; a request that does not resolve in time
        counts in ``LoadReport.timeouts`` (separately from ``errors``) and
        the client moves on instead of blocking the whole run on one stuck
        future.  ``None`` waits forever (the historical behavior).
    mode:
        ``"closed"`` (constant concurrency) or ``"open"`` (fixed arrival
        schedule; requires ``rate`` and ``duration_s``).
    rate, duration_s, traffic, **shape_kwargs:
        Open-loop schedule parameters (see :func:`arrival_offsets`).
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"unknown load mode {mode!r}; use 'closed' or 'open'")
    if mode == "open" and (rate is None or duration_s is None):
        raise ValueError("open-loop mode requires rate and duration_s")
    shape = tuple(input_shape or engine.input_shape)
    rng = np.random.default_rng(seed)
    # a small pool of distinct payloads, cycled by the clients
    pool = [rng.normal(0.2, 0.8, size=shape).astype(np.float32) for _ in range(16)]

    for i in range(warmup):
        try:
            engine.submit(pool[i % len(pool)]).result(timeout=timeout)
        except Exception:
            pass  # warmup failures are the measured run's problem, not ours

    if mode == "open":
        return _run_open_loop(engine, pool, rate, duration_s, traffic, timeout, **shape_kwargs)
    return _run_closed_loop(engine, pool, n_requests, concurrency, timeout)


def _run_closed_loop(engine, pool, n_requests, concurrency, timeout) -> LoadReport:
    remaining = [n_requests]
    counter_lock = threading.Lock()
    latencies: list[float] = []
    errors = [0]
    timeouts = [0]

    def client(client_index: int) -> None:
        local: list[float] = []
        local_errors = 0
        local_timeouts = 0
        step = client_index
        while True:
            with counter_lock:
                if remaining[0] <= 0:
                    break
                remaining[0] -= 1
            start = time.perf_counter()
            try:
                engine.submit(pool[step % len(pool)]).result(timeout=timeout)
                local.append((time.perf_counter() - start) * 1e3)
            except FutureTimeoutError:
                local_timeouts += 1
            except Exception:
                local_errors += 1
            step += concurrency
        with counter_lock:
            latencies.extend(local)
            errors[0] += local_errors
            timeouts[0] += local_timeouts

    threads = [threading.Thread(target=client, args=(i,)) for i in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return _report(latencies, None, elapsed, errors[0], timeouts[0], concurrency=concurrency)


def _run_open_loop(engine, pool, rate, duration_s, traffic, timeout, **shape_kwargs) -> LoadReport:
    offsets = arrival_offsets(traffic, rate, duration_s, **shape_kwargs)
    total = len(offsets)
    lock = threading.Lock()
    samples: list[tuple[float, float]] = []  # (submit offset, latency ms)
    errors = [0]
    resolved = [0]
    all_done = threading.Event()

    def finish_one() -> None:
        resolved[0] += 1  # caller holds the lock
        if resolved[0] >= total:
            all_done.set()

    def make_callback(start: float, offset: float):
        def callback(future) -> None:
            try:
                future.result(timeout=0)
            except Exception:
                with lock:
                    errors[0] += 1
                    finish_one()
                return
            latency_ms = (time.perf_counter() - start) * 1e3
            with lock:
                samples.append((offset, latency_ms))
                finish_one()

        return callback

    t0 = time.perf_counter()
    for index, offset in enumerate(offsets):
        delay = t0 + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        start = time.perf_counter()
        try:
            future = engine.submit(pool[index % len(pool)])
        except Exception:
            with lock:
                errors[0] += 1
                finish_one()
            continue
        future.add_done_callback(make_callback(start, offset))
    # grace period: the server resolves every admitted request within its
    # deadline, so anything still unresolved after the grace is a timeout
    grace = (timeout if timeout is not None else 30.0) + 5.0
    all_done.wait(timeout=grace)
    elapsed = time.perf_counter() - t0
    with lock:
        timeouts = total - resolved[0]
        done_samples = list(samples)
        n_errors = errors[0]
    tail_cut = duration_s * (1.0 - _TAIL_FRACTION)
    tail = [latency for offset, latency in done_samples if offset >= tail_cut]
    report = _report(
        [latency for _, latency in done_samples],
        tail,
        elapsed,
        n_errors,
        timeouts,
        concurrency=0,
    )
    report.mode = "open"
    report.offered = total
    report.offered_rate = total / duration_s
    return report


def _report(latencies, tail, elapsed, errors, timeouts, concurrency) -> LoadReport:
    from ..eval.profiler import latency_percentiles

    lat = np.asarray(latencies, dtype=np.float64)
    pct = (
        latency_percentiles(lat)
        if lat.size
        else {"p50_ms": float("nan"), "p95_ms": float("nan"), "p99_ms": float("nan")}
    )
    tail_p99 = None
    if tail:
        tail_p99 = float(np.percentile(np.asarray(tail, dtype=np.float64), 99.0))
    return LoadReport(
        requests=len(latencies),
        concurrency=concurrency,
        elapsed_s=elapsed,
        requests_per_sec=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_ms_p50=pct["p50_ms"],
        latency_ms_p95=pct["p95_ms"],
        latency_ms_p99=pct["p99_ms"],
        latency_ms_mean=float(lat.mean()) if lat.size else float("nan"),
        errors=errors,
        timeouts=timeouts,
        latency_ms_p99_tail=tail_p99,
    )
