"""Closed-loop load generator for the serving engine and fleet.

Drives anything with an ``Engine``-shaped ``submit`` — the in-process
:class:`~repro.serve.Engine` or a fleet
:class:`~repro.serve.transport.FleetClient` — with ``concurrency``
synchronous clients (each submits a request, waits for its result, submits
the next — the standard closed-loop model) and reports sustained request
throughput and end-to-end latency percentiles.  Used by
``python -m repro.serve`` and ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

import numpy as np

__all__ = ["LoadReport", "run_load"]


@dataclass
class LoadReport:
    """Result of one closed-loop load run."""

    requests: int
    concurrency: int
    elapsed_s: float
    requests_per_sec: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    latency_ms_mean: float
    errors: int = 0
    timeouts: int = 0

    def summary(self) -> str:
        return (
            f"{self.requests} requests @ concurrency {self.concurrency}: "
            f"{self.requests_per_sec:.1f} req/s, "
            f"latency p50 {self.latency_ms_p50:.2f} ms / "
            f"p95 {self.latency_ms_p95:.2f} ms / p99 {self.latency_ms_p99:.2f} ms"
            + (f", {self.errors} errors" if self.errors else "")
            + (f", {self.timeouts} timeouts" if self.timeouts else "")
        )


def run_load(
    engine,
    n_requests: int,
    concurrency: int = 8,
    input_shape: tuple[int, int, int] | None = None,
    seed: int = 0,
    warmup: int = 8,
    timeout: float | None = None,
) -> LoadReport:
    """Drive ``engine`` with a closed loop of synchronous clients.

    Parameters
    ----------
    engine:
        An :class:`~repro.serve.Engine` or
        :class:`~repro.serve.transport.FleetClient` (anything with
        ``submit``).
    n_requests:
        Total measured requests across all clients.
    concurrency:
        Number of concurrent closed-loop clients.
    input_shape:
        Per-sample shape; defaults to ``engine.input_shape``.
    seed:
        Seed for the synthetic request payloads.
    warmup:
        Unmeasured requests issued first (plan building, kernel auto-tuning).
    timeout:
        Per-request wait in seconds; a request that does not resolve in time
        counts in ``LoadReport.timeouts`` (separately from ``errors``) and
        the client moves on instead of blocking the whole run on one stuck
        future.  ``None`` waits forever (the historical behavior).
    """
    shape = tuple(input_shape or engine.input_shape)
    rng = np.random.default_rng(seed)
    # a small pool of distinct payloads, cycled by the clients
    pool = [rng.normal(0.2, 0.8, size=shape).astype(np.float32) for _ in range(16)]

    for i in range(warmup):
        try:
            engine.submit(pool[i % len(pool)]).result(timeout=timeout)
        except Exception:
            pass  # warmup failures are the measured run's problem, not ours

    remaining = [n_requests]
    counter_lock = threading.Lock()
    latencies: list[float] = []
    errors = [0]
    timeouts = [0]

    def client(client_index: int) -> None:
        local: list[float] = []
        local_errors = 0
        local_timeouts = 0
        step = client_index
        while True:
            with counter_lock:
                if remaining[0] <= 0:
                    break
                remaining[0] -= 1
            start = time.perf_counter()
            try:
                engine.submit(pool[step % len(pool)]).result(timeout=timeout)
                local.append((time.perf_counter() - start) * 1e3)
            except FutureTimeoutError:
                local_timeouts += 1
            except Exception:
                local_errors += 1
            step += concurrency
        with counter_lock:
            latencies.extend(local)
            errors[0] += local_errors
            timeouts[0] += local_timeouts

    threads = [threading.Thread(target=client, args=(i,)) for i in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    from ..eval.profiler import latency_percentiles

    lat = np.asarray(latencies, dtype=np.float64)
    pct = (
        latency_percentiles(lat)
        if lat.size
        else {"p50_ms": float("nan"), "p95_ms": float("nan"), "p99_ms": float("nan")}
    )
    return LoadReport(
        requests=len(latencies),
        concurrency=concurrency,
        elapsed_s=elapsed,
        requests_per_sec=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_ms_p50=pct["p50_ms"],
        latency_ms_p95=pct["p95_ms"],
        latency_ms_p99=pct["p99_ms"],
        latency_ms_mean=float(lat.mean()) if lat.size else float("nan"),
        errors=errors[0],
        timeouts=timeouts[0],
    )
