"""Supervised multi-process serving fleet with an asyncio front door.

The in-process :class:`~repro.serve.Engine` tops out at one GIL and has no
recovery story.  :class:`Fleet` is the production-shaped tier above it:

* **N replica processes**, each holding a compiled engine resolved through
  the :func:`repro.runtime.resolve_engine` registry (``engine="int8"`` /
  ``"float"``), supervised by :class:`~repro.serve.supervisor.Supervisor`
  (heartbeat watchdog, crash/hang detection, capped-exponential-backoff
  restart, graceful drain).
* **Shared-memory slots** for tensor traffic: request and response tensors
  live side by side in fixed ``multiprocessing.shared_memory`` ring slots
  sized by the arena planner's :func:`repro.runtime.plan_io` hook, so a
  request's input bytes survive a crashed replica and can be redispatched
  without asking the client again.
* **An asyncio front door** speaking the length-prefixed protocol of
  :mod:`repro.serve.transport`: per-request deadlines (every admitted request
  resolves within its deadline — result or typed error), bounded admission
  (no free slot ⇒ an explicit ``Overloaded`` reply instead of an unbounded
  queue), CRC-validated replies, and automatic redispatch of failed attempts
  up to ``max_attempts``.
* **Fault injection** via :mod:`repro.serve.chaos` — kill/hang/slow/corrupt
  faults in replicas and connection drops at the front door — so every
  recovery path above is exercised by tests and ``benchmarks/bench_serve.py``
  rather than trusted.

Quickstart::

    from repro.serve import Fleet, FleetClient

    with Fleet(replicas=4, builder_kwargs={"engine": "int8"}) as fleet:
        with fleet.client() as client:
            logits = client.predict(image)       # (C, H, W) -> (classes,)
        print(fleet.stats().summary())

The "zero lost requests" invariant: every request admitted by the front door
is eventually answered with a result or a typed error, across replica
crashes, hangs, corrupt replies, overload and drain.  ``FleetStats.lost``
counts violations and is asserted zero by the test suite and the chaos
benchmark gate.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, shared_memory

import numpy as np

from . import transport
from .chaos import ChaosConfig, parse_chaos
from .supervisor import ReplicaSpec, Supervisor, resolve_builder
from .transport import (
    KIND_ERROR,
    KIND_PING,
    KIND_PONG,
    KIND_REQUEST,
    KIND_RESPONSE,
    KIND_STATS,
    KIND_STATS_REPLY,
    FleetClient,
    pack_frame,
    split_frame,
)

__all__ = [
    "FleetConfig",
    "Fleet",
    "FleetStats",
    "ServingBackend",
    "model_backend",
    "echo_backend",
    "resolve_net",
]


# --------------------------------------------------------------------------- #
# backends
# --------------------------------------------------------------------------- #
class ServingBackend:
    """A servable forward function plus its IO contract.

    Builders (``model_backend``, ``echo_backend``, or any
    ``"module:callable"`` path in :class:`FleetConfig.builder`) return one of
    these; replicas call ``forward(batch) -> outputs``.
    """

    def __init__(self, forward, input_shape: tuple[int, ...], net=None, name: str = "backend"):
        self.forward = forward
        self.input_shape = tuple(int(s) for s in input_shape)
        self.net = net
        self.name = name

    def io_plan(self):
        """Plan-derived slot sizing (:func:`repro.runtime.plan_io`)."""
        from ..runtime import plan_io

        return plan_io(self.net if self.net is not None else self.forward, self.input_shape)


def resolve_net(
    model_name: str = "mobilenetv2-tiny",
    resolution: int = 16,
    num_classes: int = 16,
    engine: str = "int8",
    calibration_batches: int = 2,
    calibration_method: str = "minmax",
    seed: int = 0,
    threads: int | str | None = None,
    artifact: str | None = None,
):
    """Build and compile a registry model for serving.

    Engines resolve by name through :func:`repro.runtime.resolve_engine`
    (plus the special ``"eager"`` backend); unknown names raise ``ValueError``
    listing the registry's known names.  Returns ``(net, input_shape)``.

    ``artifact`` short-circuits compilation entirely: the executor is loaded
    from a pre-compiled artifact file (:mod:`repro.runtime.artifact`) —
    skipping model init, quantization and calibration at boot — and the
    model/engine arguments are ignored in favor of the artifact header.

    ``threads`` sizes each engine's intra-op worker pool
    (``CompileOptions(threads=...)``; ``"auto"`` = one worker per CPU) —
    with fleet replicas this composes to processes x threads parallelism.
    Ignored by the ``"eager"`` backend.
    """
    from ..compress import calibrate, quantize_model
    from ..models import create_model
    from ..runtime import available_engines, compile_model, resolve_engine
    from ..utils import seed_everything

    if artifact is not None:
        from ..runtime import load_artifact

        net = load_artifact(artifact, threads=threads)
        info = net.artifact
        if info.mode == "train":
            raise ValueError(f"artifact {artifact!r} is a training artifact; not servable")
        shape = tuple(info.input_shape) if info.input_shape else (3, int(resolution), int(resolution))
        return net, shape
    seed_everything(seed)
    model = create_model(model_name, num_classes=num_classes)
    model.eval()
    input_shape = (3, int(resolution), int(resolution))
    if engine == "eager":
        from .. import nn

        def eager_forward(batch, _model=model):
            with nn.no_grad():
                return _model(nn.Tensor(batch)).numpy()

        return eager_forward, input_shape
    try:
        spec = resolve_engine(engine)
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; available: {sorted(available_engines() + ['eager'])}"
        ) from None
    if spec.mode == "int8":
        rng = np.random.default_rng(seed)
        quantize_model(model)
        batches = [
            rng.normal(0.2, 0.8, size=(8,) + input_shape).astype(np.float32)
            for _ in range(calibration_batches)
        ]
        calibrate(model, batches, method=calibration_method)
    return compile_model(model, mode=spec.mode, threads=threads), input_shape


def model_backend(
    model_name: str = "mobilenetv2-tiny",
    resolution: int = 16,
    num_classes: int = 16,
    engine: str = "int8",
    calibration_batches: int = 2,
    calibration_method: str = "minmax",
    seed: int = 0,
    threads: int | str | None = None,
    artifact: str | None = None,
) -> ServingBackend:
    """Default fleet builder: a compiled registry model (int8 by default).

    With ``artifact=`` the engine is loaded from a compiled artifact file
    instead of compiled at boot (see :func:`resolve_net`).
    """
    net, input_shape = resolve_net(
        model_name=model_name,
        resolution=resolution,
        num_classes=num_classes,
        engine=engine,
        calibration_batches=calibration_batches,
        calibration_method=calibration_method,
        seed=seed,
        threads=threads,
        artifact=artifact,
    )
    if artifact is not None:
        name = f"artifact:{os.path.basename(artifact)}[{net.artifact.mode}]"
    else:
        name = f"{model_name}[{engine}]"
    forward = net.numpy_forward if hasattr(net, "numpy_forward") else net
    return ServingBackend(forward, input_shape, net=net, name=name)


def echo_backend(
    resolution: int = 8, channels: int = 3, classes: int = 4, delay_ms: float = 0.0
) -> ServingBackend:
    """Deterministic model-free builder for fleet tests and chaos drills.

    The output is a cheap, exactly-reproducible function of the input (the
    per-sample features are split into ``classes`` contiguous chunks and each
    chunk summed), so correctness through crashes and redispatches can be
    asserted bit-for-bit without compiling a model.  ``delay_ms`` makes the
    backend artificially slow for overload and deadline tests.
    """
    input_shape = (int(channels), int(resolution), int(resolution))

    def forward(batch):
        if delay_ms:
            time.sleep(delay_ms / 1e3)
        flat = np.asarray(batch, dtype=np.float32).reshape(len(batch), -1)
        chunks = np.array_split(flat, classes, axis=1)
        return np.stack([chunk.sum(axis=1) for chunk in chunks], axis=1)

    return ServingBackend(forward, input_shape, name="echo")


# --------------------------------------------------------------------------- #
# config and stats
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FleetConfig:
    """Policy of a serving :class:`Fleet`.

    Parameters
    ----------
    replicas:
        Number of supervised replica processes started initially.
    max_replicas:
        Capacity ceiling for :meth:`Fleet.resize` — shared-memory heartbeat
        slots are allocated for this many replicas up front, so the fleet can
        scale between 1 and ``max_replicas`` without remapping memory.
        ``None`` (the default) means ``replicas`` (a fixed-size fleet).
    max_batch, max_wait_ms:
        Per-replica micro-batching policy (same semantics as
        :class:`~repro.serve.EngineConfig`).
    max_pending:
        Bound on admitted-but-unfinished requests; this is also the number of
        shared-memory slots.  When full, new requests are shed with a typed
        ``Overloaded`` reply — the queue never grows without bound.
    default_deadline_ms:
        Server-side deadline for requests that do not carry their own; every
        admitted request resolves (result or typed error) within it.
    max_attempts:
        Dispatch attempts per request across crashed replicas, replica
        errors and corrupt replies before a typed error is returned.
    heartbeat_interval, miss_threshold:
        Replicas heartbeat from their serving loop every ``interval``
        seconds; ``miss_threshold`` missed beats mark a replica hung, which
        SIGKILLs and restarts it.
    start_timeout:
        Budget for a replica to build its backend and report ready.
    restart_backoff_base, restart_backoff_cap, restart_reset_after, max_restarts:
        Capped exponential restart backoff
        (``min(cap, base * 2**(failures-1))``); the failure count resets
        after ``restart_reset_after`` healthy seconds.  ``max_restarts=None``
        retries forever.
    builder, builder_kwargs:
        ``"module:callable"`` returning a :class:`ServingBackend`; defaults
        to the compiled registry model builder (:func:`model_backend`).
    chaos:
        A :class:`~repro.serve.chaos.ChaosConfig`, a spec string, or ``None``
        to read ``$REPRO_CHAOS``.
    start_method:
        ``"fork"`` (fast spawn + restart; replicas inherit the parent-built
        backend) or ``"spawn"`` (replicas rebuild from the spec).  ``None``
        picks fork when the platform offers it.
    stats_window_s:
        Sliding window for the fleet-level latency percentiles in
        :class:`FleetStats` — the autoscaler's pressure signal.  Only
        completions inside the window count, so the signal decays when
        traffic stops instead of pinning at the last burst's tail.
    """

    replicas: int = 2
    max_replicas: int | None = None
    max_batch: int = 8
    max_wait_ms: float = 1.0
    max_pending: int = 128
    default_deadline_ms: float = 10_000.0
    max_attempts: int = 3
    heartbeat_interval: float = 0.1
    miss_threshold: int = 5
    start_timeout: float = 60.0
    restart_backoff_base: float = 0.05
    restart_backoff_cap: float = 2.0
    restart_reset_after: float = 5.0
    max_restarts: int | None = None
    host: str = "127.0.0.1"
    port: int = 0
    builder: str = "repro.serve.fleet:model_backend"
    builder_kwargs: dict = field(default_factory=dict)
    chaos: "ChaosConfig | str | None" = None
    start_method: str | None = None
    drain_timeout: float = 15.0
    stats_window_s: float = 5.0

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        if self.max_replicas is not None and self.max_replicas < self.replicas:
            raise ValueError("max_replicas must be >= replicas")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.heartbeat_interval <= 0 or self.miss_threshold < 1:
            raise ValueError("heartbeat_interval must be > 0 and miss_threshold >= 1")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start_method {self.start_method!r}")
        if self.stats_window_s <= 0:
            raise ValueError("stats_window_s must be > 0")

    def resolved_max_replicas(self) -> int:
        return self.max_replicas if self.max_replicas is not None else self.replicas

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in get_all_start_methods() else "spawn"

    def resolved_chaos(self) -> ChaosConfig:
        if self.chaos is None:
            return ChaosConfig.from_env()
        return parse_chaos(self.chaos)


@dataclass
class FleetStats:
    """Snapshot of fleet counters; ``lost`` must be zero at all times."""

    replicas: int = 0
    target: int = 0
    max_replicas: int = 0
    ready: int = 0
    draining: int = 0
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    errors: dict = field(default_factory=dict)
    requeued: int = 0
    corrupt_detected: int = 0
    deadline_expired: int = 0
    restarts: int = 0
    hangs_detected: int = 0
    crashes_detected: int = 0
    inflight: int = 0
    queue_depth: int = 0
    latency_ms_p50: float | None = None
    latency_ms_p95: float | None = None
    latency_ms_p99: float | None = None
    degradation_level: int = 0
    effective_deadline_ms: float = 0.0
    effective_max_pending: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    scale_events: list = field(default_factory=list)
    cold_start_ms_mean: float | None = None
    cold_start_ms_max: float | None = None
    fidelity: dict | None = None
    per_replica: list = field(default_factory=list)

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())

    @property
    def lost(self) -> int:
        """Admitted requests unaccounted for — the invariant is zero."""
        return self.submitted - self.completed - self.error_total - self.inflight

    def summary(self) -> str:
        def ms(value: float | None) -> str:
            return "-" if value is None else f"{value:.2f} ms"

        lines = [
            f"fleet             : {self.ready}/{self.target} replicas ready "
            f"(cap {self.max_replicas}, {self.draining} draining), "
            f"{self.restarts} restarts ({self.crashes_detected} crashes, "
            f"{self.hangs_detected} hangs detected)",
            f"requests          : {self.completed}/{self.submitted} completed, "
            f"{self.error_total} typed errors {dict(sorted(self.errors.items()))}, "
            f"{self.shed} shed, {self.inflight} in flight, {self.lost} lost",
            f"latency           : p50 {ms(self.latency_ms_p50)} / p95 {ms(self.latency_ms_p95)}"
            f" / p99 {ms(self.latency_ms_p99)}, queue depth {self.queue_depth}",
            f"recovery          : {self.requeued} requeued, {self.corrupt_detected} corrupt "
            f"replies caught, {self.deadline_expired} deadlines expired",
            f"elasticity        : {self.scale_ups} scale-ups / {self.scale_downs} scale-downs, "
            f"degradation level {self.degradation_level} "
            f"(deadline {self.effective_deadline_ms:.0f} ms, "
            f"pending cap {self.effective_max_pending})",
        ]
        if self.cold_start_ms_mean is not None:
            lines.append(
                f"cold start        : {self.cold_start_ms_mean:.1f} ms mean / "
                f"{self.cold_start_ms_max:.1f} ms max (spawn -> READY)"
            )
        if self.fidelity is not None:
            rungs = self.fidelity.get("rungs", [])
            active = self.fidelity.get("active_rung", 0)
            rung_bits = ", ".join(
                f"{'*' if i == active else ''}{r['name']} "
                f"({r['completed']} served, p99 {ms(r['latency_ms_p99'])}, "
                f"agree {r['agreement']:.2f})"
                for i, r in enumerate(rungs)
            )
            lines.append(
                f"fidelity          : rung {active}/{len(rungs) - 1}, "
                f"{self.fidelity.get('switches', 0)} switches [{rung_bits}]"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "target": self.target,
            "max_replicas": self.max_replicas,
            "ready": self.ready,
            "draining": self.draining,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "errors": dict(self.errors),
            "requeued": self.requeued,
            "corrupt_detected": self.corrupt_detected,
            "deadline_expired": self.deadline_expired,
            "restarts": self.restarts,
            "hangs_detected": self.hangs_detected,
            "crashes_detected": self.crashes_detected,
            "inflight": self.inflight,
            "queue_depth": self.queue_depth,
            "latency_ms_p50": self.latency_ms_p50,
            "latency_ms_p95": self.latency_ms_p95,
            "latency_ms_p99": self.latency_ms_p99,
            "degradation_level": self.degradation_level,
            "effective_deadline_ms": self.effective_deadline_ms,
            "effective_max_pending": self.effective_max_pending,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "scale_events": list(self.scale_events),
            "cold_start_ms_mean": self.cold_start_ms_mean,
            "cold_start_ms_max": self.cold_start_ms_max,
            "fidelity": dict(self.fidelity) if self.fidelity is not None else None,
            "lost": self.lost,
            "per_replica": list(self.per_replica),
        }


class _Entry:
    """Front-door bookkeeping for one admitted request."""

    __slots__ = (
        "gid", "writer", "request_id", "slot", "attempts",
        "dispatched", "done", "released", "timer", "admitted",
    )

    def __init__(self, gid, writer, request_id, slot):
        self.gid = gid
        self.writer = writer
        self.request_id = request_id
        self.slot = slot
        self.attempts = 0
        self.dispatched = None  # (replica_index, generation) while on a replica
        self.done = False  # client has its final answer
        self.released = False  # slot returned to the free pool
        self.timer = None
        self.admitted = 0.0  # monotonic admission timestamp for latency stats


# --------------------------------------------------------------------------- #
# the fleet
# --------------------------------------------------------------------------- #
class Fleet:
    """Supervised multi-process serving fleet (see module docstring).

    All routing state lives on the event-loop thread; public methods are safe
    to call from any thread.  Use as a context manager or call :meth:`close`
    (graceful drain by default).
    """

    def __init__(self, config: FleetConfig | None = None, **overrides):
        if config is None:
            config = FleetConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.address: tuple[str, int] | None = None
        self.io = None
        self._chaos = config.resolved_chaos()
        self._front_monkey = self._chaos.monkey(-2) if self._chaos.faults else None
        self._backend = None
        self._slots_shm = None
        self._hb_shm = None
        self._slots = None
        self._hb = None
        self._loop = None
        self._thread = None
        self._supervisor = None
        self._started = threading.Event()
        self._start_error = None
        self._shutdown = None
        self._closed = False
        self._draining = False
        # routing state (event-loop thread only)
        self._free_slots: list[int] = []
        self._inflight: dict[int, _Entry] = {}
        self._undispatched: deque = deque()
        self._next_gid = 0
        # counters (event-loop thread only)
        self._submitted = 0
        self._completed = 0
        self._shed = 0
        self._errors: dict[str, int] = {}
        self._requeued = 0
        self._corrupt_detected = 0
        self._deadline_expired = 0
        self._final_stats: FleetStats | None = None
        # elasticity and degradation state (event-loop thread only)
        self._t0 = time.monotonic()
        # (monotonic, ms) pairs pruned to stats_window_s, so the latency
        # percentiles — the autoscaler's main signal — decay when idle
        # instead of pinning at the last burst's tail forever
        self._latencies: deque = deque(maxlen=4096)
        self._scale_events: list[dict] = []
        self._scale_ups = 0
        self._scale_downs = 0
        self._degradation = 0
        self._eff_deadline_ms = config.default_deadline_ms
        self._eff_max_wait_ms = config.max_wait_ms
        self._eff_max_pending = config.max_pending
        # fidelity ladder state (event-loop thread only); populated when the
        # backend is a LadderBackend (repro.serve.fidelity)
        self._fidelity_rung = 0
        self._fidelity_switches = 0
        self._rung_completed: dict[int, int] = {}
        self._rung_latencies: dict[int, deque] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self, wait_ready: bool = True) -> "Fleet":
        """Build the backend, map the slots, spawn replicas, open the door."""
        if self._thread is not None:
            raise RuntimeError("fleet already started")
        cfg = self.config
        self._backend = resolve_builder(cfg.builder)(**cfg.builder_kwargs)
        self.io = self._backend.io_plan()
        self._t0 = time.monotonic()
        n_slots = cfg.max_pending
        max_replicas = cfg.resolved_max_replicas()
        self._slots_shm = shared_memory.SharedMemory(
            create=True, size=max(n_slots * self.io.slot_bytes, 1)
        )
        # heartbeat slots are sized for the resize() ceiling up front, so the
        # fleet can scale between 1 and max_replicas without remapping memory
        self._hb_shm = shared_memory.SharedMemory(create=True, size=max_replicas * 8)
        self._slots = np.ndarray(
            (n_slots, self.io.slot_elements), dtype=np.float32, buffer=self._slots_shm.buf
        )
        self._hb = np.ndarray((max_replicas,), dtype=np.float64, buffer=self._hb_shm.buf)
        self._free_slots = list(range(n_slots))
        use_fork = cfg.resolved_start_method() == "fork"
        spec = ReplicaSpec(
            index=0,
            replicas=max_replicas,
            builder=cfg.builder,
            builder_kwargs=dict(cfg.builder_kwargs),
            input_shape=self.io.input_shape,
            input_elements=self.io.input_elements,
            output_elements=self.io.output_elements,
            slot_elements=self.io.slot_elements,
            n_slots=n_slots,
            slots_name=self._slots_shm.name,
            hb_name=self._hb_shm.name,
            max_batch=cfg.max_batch,
            max_wait_ms=cfg.max_wait_ms,
            heartbeat_interval=cfg.heartbeat_interval,
            chaos=self._chaos if self._chaos.faults else None,
            prebuilt=self._backend if use_fork else None,
        )
        self._spec = spec
        self._thread = threading.Thread(target=self._run_loop, name="fleet-front-door", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._start_error is not None:
            raise self._start_error
        if self.address is None:
            raise RuntimeError("fleet front door failed to start")
        if wait_ready:
            self.wait_ready(timeout=cfg.start_timeout)
        return self

    def wait_ready(self, timeout: float = 60.0, replicas: int = 1) -> None:
        """Block until at least ``replicas`` replicas report ready."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.stats().ready >= replicas:
                return
            time.sleep(0.01)
        raise TimeoutError(f"no {replicas} ready replicas within {timeout:.1f}s")

    def client(self, **kwargs) -> FleetClient:
        """A connected :class:`~repro.serve.transport.FleetClient`."""
        if self.address is None:
            raise RuntimeError("fleet is not started")
        return FleetClient(self.address, **kwargs)

    def stats(self) -> FleetStats:
        """A consistent snapshot of the fleet counters (any thread)."""
        if self._final_stats is not None or self._loop is None:
            return self._final_stats or FleetStats(replicas=self.config.replicas)
        from concurrent.futures import Future

        fut: Future = Future()

        def grab():
            try:
                fut.set_result(self._stats_snapshot())
            except Exception as error:  # pragma: no cover - defensive
                fut.set_exception(error)

        self._post(grab)
        try:
            return fut.result(timeout=5.0)
        except Exception:
            return self._final_stats or FleetStats(replicas=self.config.replicas)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admitting, finish in-flight (when draining), stop replicas."""
        if self._closed:
            return
        self._closed = True
        if self._thread is None:
            self._cleanup_shm()
            return
        if timeout is None:
            timeout = self.config.drain_timeout + 15.0
        self._post(self._begin_shutdown, drain)
        self._thread.join(timeout=timeout)
        self._cleanup_shm()

    def __enter__(self) -> "Fleet":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _cleanup_shm(self) -> None:
        self._slots = None
        self._hb = None
        if self._supervisor is not None:
            self._supervisor.hb = None
        for shm_attr in ("_slots_shm", "_hb_shm"):
            shm = getattr(self, shm_attr)
            if shm is None:
                continue
            setattr(self, shm_attr, None)
            try:
                shm.close()
                shm.unlink()
            except (BufferError, FileNotFoundError, OSError):
                pass

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve_main())
        except Exception as error:  # pragma: no cover - defensive
            self._start_error = error
            self._started.set()

    def _post(self, fn, *args) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    async def _serve_main(self) -> None:
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._drain_requested = True
        self._supervisor = Supervisor(
            cfg,
            self._spec,
            self._hb,
            post=self._post,
            on_msg=self._on_replica_msg,
            on_down=self._on_replica_down,
        )
        server = await asyncio.start_server(self._handle_conn, cfg.host, cfg.port)
        self.address = server.sockets[0].getsockname()[:2]
        self._supervisor.spawn_all()
        watchdog = asyncio.create_task(self._watchdog())
        self._started.set()
        await self._shutdown.wait()
        # ---- graceful drain: stop admitting, finish in-flight, stop fleet
        self._draining = True
        server.close()
        await server.wait_closed()
        if self._drain_requested:
            deadline = time.monotonic() + cfg.drain_timeout
            while any(not e.done for e in self._inflight.values()) and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        for entry in list(self._inflight.values()):
            if not entry.done:
                self._finish_error(entry, transport.ServerClosed("fleet shut down"))
            entry.dispatched = None
            self._release(entry)
        watchdog.cancel()
        self._supervisor.stop_all(timeout=5.0)
        self._final_stats = self._stats_snapshot()

    def _begin_shutdown(self, drain: bool) -> None:
        self._drain_requested = drain
        if self._shutdown is not None:
            self._shutdown.set()

    async def _watchdog(self) -> None:
        interval = max(self.config.heartbeat_interval / 2, 0.01)
        while True:
            await asyncio.sleep(interval)
            self._supervisor.poll()
            self._flush_undispatched()

    # ------------------------------------------------------------------ #
    # client connections
    # ------------------------------------------------------------------ #
    async def _handle_conn(self, reader, writer) -> None:
        try:
            while True:
                header = await reader.readexactly(4)
                length = int.from_bytes(header, "little")
                if not 9 <= length <= transport.MAX_FRAME_BYTES:
                    break
                body = await reader.readexactly(length)
                kind, request_id, meta, payload = split_frame(body)
                if kind == KIND_REQUEST:
                    if self._front_monkey is not None and self._front_monkey.drop_connection():
                        writer.transport.abort()  # chaos: sever the connection mid-request
                        return
                    self._admit(writer, request_id, meta, payload)
                elif kind == KIND_PING:
                    self._send_frame(
                        writer,
                        pack_frame(
                            KIND_PONG,
                            request_id,
                            {
                                "input_shape": list(self.io.input_shape),
                                "output_shape": list(self.io.output_shape),
                                "replicas": self.config.replicas,
                            },
                        ),
                    )
                elif kind == KIND_STATS:
                    self._send_frame(
                        writer,
                        pack_frame(KIND_STATS_REPLY, request_id, self._stats_snapshot().to_dict()),
                    )
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # loop teardown after drain; the connection is going away anyway
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _send_frame(self, writer, frame: bytes) -> None:
        try:
            if not writer.is_closing():
                writer.write(frame)
        except Exception:
            pass  # client went away; the request still counts as resolved

    def _reply_error(
        self, writer, request_id: int, code: str, message: str, extra: dict | None = None
    ) -> None:
        meta = {"code": code, "message": message}
        if extra:
            meta.update(extra)
        self._send_frame(writer, pack_frame(KIND_ERROR, request_id, meta))

    # ------------------------------------------------------------------ #
    # admission and dispatch (event-loop thread)
    # ------------------------------------------------------------------ #
    def _admit(self, writer, request_id: int, meta: dict, payload: bytes) -> None:
        if self._draining:
            self._reply_error(writer, request_id, "shutdown", "fleet is draining")
            return
        if len(payload) != self.io.input_elements * 4:
            self._reply_error(
                writer,
                request_id,
                "bad_request",
                f"expected {self.io.input_elements * 4} payload bytes, got {len(payload)}",
            )
            return
        if not self._supervisor.alive():
            self._reply_error(writer, request_id, "replica_failed", "all replicas failed permanently")
            return
        if not self._free_slots or len(self._inflight) >= self._eff_max_pending:
            self._shed += 1
            self._reply_error(
                writer, request_id, "overloaded",
                f"admission queue full ({self._eff_max_pending} pending)",
                extra={
                    "retry_after_ms": round(self._retry_after_hint(), 2),
                    "level": self._degradation,
                },
            )
            return
        slot = self._free_slots.pop()
        self._slots[slot, : self.io.input_elements] = np.frombuffer(payload, dtype=np.float32)
        self._next_gid += 1
        entry = _Entry(self._next_gid, writer, request_id, slot)
        deadline_ms = min(
            float(meta.get("deadline_ms") or self.config.default_deadline_ms),
            self._eff_deadline_ms,
        )
        entry.timer = self._loop.call_later(deadline_ms / 1e3, self._expire, entry)
        entry.admitted = time.monotonic()
        self._inflight[entry.gid] = entry
        self._submitted += 1
        self._dispatch(entry)

    def _dispatch(self, entry: _Entry) -> None:
        ready = self._supervisor.ready_handles()
        if not ready:
            self._undispatched.append(entry)
            return
        handle = min(ready, key=lambda h: len(h.assigned))
        entry.dispatched = (handle.index, handle.generation)
        handle.assigned[entry.gid] = entry
        try:
            handle.work.send(("run", entry.gid, entry.slot))
        except (OSError, ValueError):
            # the pipe just broke under us: this replica is dead; mark_down
            # requeues everything assigned to it (including this entry)
            self._supervisor.crashes_detected += 1
            self._supervisor.mark_down(handle, "dispatch pipe error")

    def _flush_undispatched(self) -> None:
        while self._undispatched and self._supervisor.ready_handles():
            entry = self._undispatched.popleft()
            if entry.done or entry.dispatched is not None:
                continue
            self._dispatch(entry)

    # ------------------------------------------------------------------ #
    # elasticity and degradation
    # ------------------------------------------------------------------ #
    def resize(self, replicas: int, reason: str = "manual", timeout: float = 30.0) -> int:
        """Change the in-service replica count (any thread); returns the clamp.

        Scale-up respawns retired handles up to ``max_replicas``; scale-down
        marks the highest-index replicas draining — each finishes its
        in-flight work before retiring, so ``FleetStats.lost`` stays zero.
        Blocks until the new target is applied (not until draining ends).
        """
        if self._loop is None or self._closed:
            raise RuntimeError("fleet is not running")
        from concurrent.futures import Future

        fut: Future = Future()

        def apply():
            try:
                fut.set_result(self._apply_resize(int(replicas), reason))
            except Exception as error:  # pragma: no cover - defensive
                fut.set_exception(error)

        self._post(apply)
        return fut.result(timeout=timeout)

    def _apply_resize(self, replicas: int, reason: str) -> int:
        sup = self._supervisor
        old = sup.target
        new = sup.set_target(replicas)
        if new != old:
            self._scale_events.append(
                {
                    "t": round(time.monotonic() - self._t0, 3),
                    "from": old,
                    "to": new,
                    "reason": reason,
                }
            )
            del self._scale_events[:-64]
            if new > old:
                self._scale_ups += 1
            else:
                self._scale_downs += 1
            self._flush_undispatched()
        return new

    def set_degradation(
        self,
        level: int,
        *,
        deadline_ms: float | None = None,
        max_wait_ms: float | None = None,
        max_pending: int | None = None,
    ) -> None:
        """Apply a graceful-degradation step (any thread).

        Level 0 restores the configured policy; higher levels install the
        supplied effective deadline / batching wait / pending cap.  The
        batching wait takes effect live — replicas pick it up over their
        work pipes without a restart.
        """
        if self._loop is None or self._closed:
            raise RuntimeError("fleet is not running")
        self._post(self._apply_degradation, int(level), deadline_ms, max_wait_ms, max_pending)

    def _apply_degradation(self, level, deadline_ms, max_wait_ms, max_pending) -> None:
        cfg = self.config
        self._degradation = max(0, level)
        if self._degradation == 0:
            self._eff_deadline_ms = cfg.default_deadline_ms
            self._eff_max_wait_ms = cfg.max_wait_ms
            self._eff_max_pending = cfg.max_pending
        else:
            if deadline_ms is not None:
                self._eff_deadline_ms = max(1.0, float(deadline_ms))
            if max_wait_ms is not None:
                self._eff_max_wait_ms = max(0.0, float(max_wait_ms))
            if max_pending is not None:
                self._eff_max_pending = max(1, int(max_pending))
        self._broadcast_cfg()

    # ------------------------------------------------------------------ #
    # fidelity ladder (repro.serve.fidelity)
    # ------------------------------------------------------------------ #
    @property
    def fidelity_rungs(self) -> int:
        """Rung count of the backend's fidelity ladder (1 = no ladder)."""
        return len(getattr(self._backend, "rungs", ()) or ()) or 1

    def set_fidelity(self, rung: int, reason: str = "manual") -> None:
        """Switch every replica to ladder rung ``rung`` (any thread).

        Rung 0 is full fidelity; higher rungs trade accuracy for latency.
        Replicas pick the switch up over their work pipes (no restart); a
        replica that restarts mid-ladder is re-synced from its ready ack.
        """
        if self._loop is None or self._closed:
            raise RuntimeError("fleet is not running")
        self._post(self._apply_fidelity, int(rung), str(reason))

    def _apply_fidelity(self, rung: int, reason: str) -> None:
        rung = max(0, min(rung, self.fidelity_rungs - 1))
        if rung == self._fidelity_rung:
            return
        old, self._fidelity_rung = self._fidelity_rung, rung
        self._fidelity_switches += 1
        self._scale_events.append(
            {
                "t": time.monotonic() - self._t0,
                "kind": "fidelity",
                "from": old,
                "to": rung,
                "reason": reason,
            }
        )
        del self._scale_events[:-64]
        self._broadcast_cfg()

    def _broadcast_cfg(self, handle=None) -> None:
        handles = [handle] if handle is not None else self._supervisor.active_handles()
        payload = {"max_wait_ms": self._eff_max_wait_ms}
        if self.fidelity_rungs > 1:
            payload["fidelity"] = self._fidelity_rung
        for h in handles:
            if h.work is None:
                continue
            try:
                h.work.send(("cfg", payload))
            except (OSError, ValueError):
                pass  # dying replica; the watchdog deals with it

    def _retry_after_hint(self) -> float:
        """Server-side estimate of when a retry is worth it, in milliseconds."""
        self._prune_latencies()
        if self._latencies:
            ordered = sorted(value for _, value in self._latencies)
            base = ordered[len(ordered) // 2]
        else:
            base = self._eff_max_wait_ms * 2 + 5.0
        sup = self._supervisor
        ready = max(1, len(sup.ready_handles())) if sup is not None else 1
        backlog = len(self._undispatched) / (ready * self.config.max_batch)
        hint = base * (1.0 + backlog) * (1.0 + self._degradation)
        return float(min(max(hint, 1.0), self.config.default_deadline_ms / 2))

    # ------------------------------------------------------------------ #
    # replica events (event-loop thread, via supervisor)
    # ------------------------------------------------------------------ #
    def _on_replica_msg(self, handle, msg) -> None:
        kind = msg[0]
        if kind == "ready":
            if self._degradation or self._fidelity_rung:
                self._broadcast_cfg(handle)  # replica (re)started mid-degradation/ladder
            self._flush_undispatched()
            return
        if kind == "done":
            _, gid, crc = msg
            entry = handle.assigned.pop(gid, None)
            if entry is None:
                return
            entry.dispatched = None
            if entry.done:  # deadline already answered the client; reclaim the slot
                self._release(entry)
                return
            data = self._slots[entry.slot, self.io.input_elements : self.io.slot_elements]
            if zlib.crc32(data.tobytes()) != crc:
                self._corrupt_detected += 1
                self._retry(entry, transport.CorruptReply("reply failed checksum validation"))
                return
            handle.served += 1
            now = time.monotonic()
            latency_ms = (now - entry.admitted) * 1e3
            self._latencies.append((now, latency_ms))
            handle.latencies.append(latency_ms)
            if self.fidelity_rungs > 1:
                # Attribute to the fleet-wide active rung; switches are rare
                # enough that boundary requests don't distort the buckets.
                rung = self._fidelity_rung
                self._rung_completed[rung] = self._rung_completed.get(rung, 0) + 1
                self._rung_latencies.setdefault(rung, deque(maxlen=512)).append(latency_ms)
            self._send_frame(
                entry.writer,
                pack_frame(
                    KIND_RESPONSE,
                    entry.request_id,
                    {"shape": list(self.io.output_shape)},
                    data.tobytes(),
                ),
            )
            self._completed += 1
            self._finish(entry)
            self._release(entry)
        elif kind == "err":
            _, gid, message = msg
            entry = handle.assigned.pop(gid, None)
            if entry is None:
                return
            entry.dispatched = None
            if entry.done:
                self._release(entry)
                return
            self._retry(entry, transport.ReplicaFailed(message))

    def _on_replica_down(self, handle, reason: str, assigned: dict) -> None:
        for entry in assigned.values():
            entry.dispatched = None
            if entry.done:
                self._release(entry)
            else:
                self._retry(entry, transport.ReplicaFailed(f"replica {handle.index} down: {reason}"))

    # ------------------------------------------------------------------ #
    # completion paths
    # ------------------------------------------------------------------ #
    def _retry(self, entry: _Entry, error: "transport.FleetError") -> None:
        entry.attempts += 1
        if entry.attempts >= self.config.max_attempts:
            self._finish_error(entry, error)
            self._release(entry)
            return
        self._requeued += 1
        self._dispatch(entry)

    def _expire(self, entry: _Entry) -> None:
        if entry.done:
            return
        self._deadline_expired += 1
        self._finish_error(
            entry, transport.DeadlineExceeded("request deadline expired"), cancel_timer=False
        )
        if entry.dispatched is None:
            # never on a replica right now: the slot can be reclaimed at once;
            # if it sits in the undispatched queue the flush skips done entries
            self._release(entry)
        # else: a replica is still writing this slot — it is released when the
        # late ack arrives or the replica dies (zombie slot accounting)

    def _finish(self, entry: _Entry, cancel_timer: bool = True) -> None:
        entry.done = True
        if cancel_timer and entry.timer is not None:
            entry.timer.cancel()

    def _finish_error(self, entry: _Entry, error, cancel_timer: bool = True) -> None:
        code = getattr(error, "code", "error")
        self._errors[code] = self._errors.get(code, 0) + 1
        self._reply_error(entry.writer, entry.request_id, code, str(error))
        self._finish(entry, cancel_timer=cancel_timer)

    def _release(self, entry: _Entry) -> None:
        if entry.released or entry.dispatched is not None:
            return
        entry.released = True
        self._inflight.pop(entry.gid, None)
        self._free_slots.append(entry.slot)

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def _prune_latencies(self) -> None:
        cutoff = time.monotonic() - self.config.stats_window_s
        while self._latencies and self._latencies[0][0] < cutoff:
            self._latencies.popleft()

    @staticmethod
    def _percentiles(samples) -> tuple[float | None, float | None, float | None]:
        if not samples:
            return None, None, None
        arr = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        return float(p50), float(p95), float(p99)

    def _stats_snapshot(self) -> FleetStats:
        sup = self._supervisor
        per_replica = []
        ready = 0
        target = self.config.replicas
        draining = 0
        cold_starts: list = []
        if sup is not None:
            for handle in sup.active_handles():
                _, _, handle_p99 = self._percentiles(handle.latencies)
                per_replica.append(
                    {
                        "index": handle.index,
                        "state": handle.state,
                        "served": handle.served,
                        "restarts": handle.restarts,
                        "pid": handle.pid,
                        "inflight": len(handle.assigned),
                        "latency_ms_p99": handle_p99,
                        "cold_start_ms": handle.cold_start_ms,
                    }
                )
            ready = len(sup.ready_handles())
            target = sup.target
            draining = sup.draining()
            cold_starts = list(sup.cold_start_ms)
        fidelity = None
        if self.fidelity_rungs > 1:
            names = getattr(self._backend, "rung_names", None) or [
                f"rung{i}" for i in range(self.fidelity_rungs)
            ]
            agreement = getattr(self._backend, "agreement", None) or [1.0] * len(names)
            rungs = []
            for i, name in enumerate(names):
                _, _, rung_p99 = self._percentiles(self._rung_latencies.get(i, ()))
                rungs.append(
                    {
                        "name": name,
                        "completed": self._rung_completed.get(i, 0),
                        "latency_ms_p99": rung_p99,
                        "agreement": float(agreement[i]) if i < len(agreement) else 1.0,
                    }
                )
            fidelity = {
                "active_rung": self._fidelity_rung,
                "switches": self._fidelity_switches,
                "rungs": rungs,
            }
        self._prune_latencies()
        p50, p95, p99 = self._percentiles([value for _, value in self._latencies])
        return FleetStats(
            replicas=self.config.replicas,
            target=target,
            max_replicas=self.config.resolved_max_replicas(),
            ready=ready,
            draining=draining,
            submitted=self._submitted,
            completed=self._completed,
            shed=self._shed,
            errors=dict(self._errors),
            requeued=self._requeued,
            corrupt_detected=self._corrupt_detected,
            deadline_expired=self._deadline_expired,
            restarts=sup.restarts if sup is not None else 0,
            hangs_detected=sup.hangs_detected if sup is not None else 0,
            crashes_detected=sup.crashes_detected if sup is not None else 0,
            inflight=sum(1 for e in self._inflight.values() if not e.done),
            queue_depth=sum(
                1 for e in self._undispatched if not e.done and e.dispatched is None
            ),
            latency_ms_p50=p50,
            latency_ms_p95=p95,
            latency_ms_p99=p99,
            degradation_level=self._degradation,
            effective_deadline_ms=self._eff_deadline_ms,
            effective_max_pending=self._eff_max_pending,
            scale_ups=self._scale_ups,
            scale_downs=self._scale_downs,
            scale_events=list(self._scale_events),
            cold_start_ms_mean=float(np.mean(cold_starts)) if cold_starts else None,
            cold_start_ms_max=float(np.max(cold_starts)) if cold_starts else None,
            fidelity=fidelity,
            per_replica=per_replica,
        )
