"""Dynamic micro-batching inference engine.

Serving a compiled model request-by-request wastes the throughput the batch
dimension offers: a batch-8 forward costs far less than eight batch-1
forwards.  :class:`Engine` closes that gap with the classic dynamic-batching
loop used by production model servers:

* :meth:`Engine.submit` enqueues a single sample and immediately returns a
  :class:`concurrent.futures.Future`;
* worker threads drain the shared queue, gathering up to ``max_batch``
  requests or waiting at most ``max_wait_ms`` for stragglers (the usual
  max-batch / max-wait policy);
* each worker assembles the gathered samples into its preallocated input
  buffer **padded to the next power-of-two batch size**, so the compiled
  engine reuses a handful of cached execution plans instead of replanning per
  request count;
* results are split back out and delivered through the per-request futures,
  and :meth:`Engine.stats` reports counters, batch-size mix and latency
  percentiles.

The engine serves any of the repo's inference backends — a
:class:`~repro.runtime.QuantizedNet` (the int8 engine; its execution plans
are cached per thread, so workers never share scratch), a
:class:`~repro.runtime.CompiledNet`, or a bare eager module.  Padding rows
with zeros is sound because none of the inference ops mix information across
the batch dimension; for the integer engine the per-sample results are
bit-identical regardless of batch assembly, which the test-suite asserts.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Engine", "EngineConfig", "ServeStats"]


@dataclass(frozen=True)
class EngineConfig:
    """Batching policy of a serving :class:`Engine`.

    Parameters
    ----------
    max_batch:
        Upper bound on requests fused into one forward pass.
    max_wait_ms:
        How long a worker holding a partial batch waits for more requests
        before running it.  ``0`` serves whatever is immediately available.
    workers:
        Number of batching worker threads sharing the request queue.
    pad_to_pow2:
        Pad assembled batches up to the next power of two (bounding the number
        of distinct execution plans); disable to run exact request counts.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    workers: int = 1
    pad_to_pow2: bool = True

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")


@dataclass
class ServeStats:
    """Cumulative serving statistics (a consistent snapshot from :meth:`Engine.stats`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    batch_size_counts: dict = field(default_factory=dict)
    latency_ms_p50: float = float("nan")
    latency_ms_p95: float = float("nan")
    latency_ms_p99: float = float("nan")
    latency_ms_mean: float = float("nan")

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    def summary(self) -> str:
        lines = [
            f"requests          : {self.completed}/{self.submitted} completed, {self.failed} failed",
            f"batches           : {self.batches} (mean size {self.mean_batch_size:.2f})",
            f"latency (ms)      : p50 {self.latency_ms_p50:.2f}  p95 {self.latency_ms_p95:.2f}  "
            f"p99 {self.latency_ms_p99:.2f}  mean {self.latency_ms_mean:.2f}",
        ]
        return "\n".join(lines)


class _Request:
    __slots__ = ("sample", "future", "enqueued_at")

    def __init__(self, sample: np.ndarray):
        self.sample = sample
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


_SHUTDOWN = object()
_LATENCY_WINDOW = 8192  # most recent request latencies kept for percentiles


class Engine:
    """Multi-worker dynamic-batching server around a compiled model.

    Parameters
    ----------
    net:
        Inference backend: anything with ``numpy_forward(batch) -> logits``
        (a :class:`~repro.runtime.QuantizedNet` or
        :class:`~repro.runtime.CompiledNet`), or a callable taking/returning
        arrays.
    input_shape:
        Per-sample shape ``(C, H, W)``; submissions are validated against it.
    config:
        Batching policy; individual fields can also be passed as keyword
        arguments (``max_batch=...`` etc.) for convenience.

    Use as a context manager, or call :meth:`close` to drain and stop the
    workers.
    """

    def __init__(
        self,
        net,
        input_shape: tuple[int, int, int],
        config: EngineConfig | None = None,
        **overrides,
    ):
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.net = net
        self.input_shape = tuple(int(s) for s in input_shape)
        self.config = config
        self._forward = net.numpy_forward if hasattr(net, "numpy_forward") else net
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._batch_sizes: dict[int, int] = {}
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"serve-worker-{i}", daemon=True)
            for i in range(config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #
    def submit(self, sample: np.ndarray) -> Future:
        """Enqueue one ``(C, H, W)`` sample; returns a future of its logits."""
        sample = np.ascontiguousarray(sample, dtype=np.float32)
        if sample.shape != self.input_shape:
            raise ValueError(f"expected sample of shape {self.input_shape}, got {sample.shape}")
        request = _Request(sample)
        # The closed-check and enqueue share the lock with close() so a
        # request can never land behind the shutdown sentinels (which would
        # leave its future unresolved forever).
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._submitted += 1
            self._queue.put(request)
        return request.future

    def predict(self, sample: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Blocking single-sample convenience wrapper around :meth:`submit`."""
        return self.submit(sample).result(timeout=timeout)

    def predict_batch(self, samples, timeout: float | None = None) -> np.ndarray:
        """Submit a sequence of samples and gather their results in order."""
        futures = [self.submit(sample) for sample in samples]
        return np.stack([future.result(timeout=timeout) for future in futures])

    def stats(self) -> ServeStats:
        """A consistent snapshot of the cumulative serving statistics."""
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            stats = ServeStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                batches=self._batches,
                batch_size_counts=dict(sorted(self._batch_sizes.items())),
            )
        if latencies.size:
            from ..eval.profiler import latency_percentiles

            pct = latency_percentiles(latencies)
            stats.latency_ms_p50 = pct["p50_ms"]
            stats.latency_ms_p95 = pct["p95_ms"]
            stats.latency_ms_p99 = pct["p99_ms"]
            stats.latency_ms_mean = float(latencies.mean())
        return stats

    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers after the queue drains.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _gather(self) -> list[_Request] | None:
        """Block for one request, then batch up stragglers within the window."""
        first = self._queue.get()
        if first is _SHUTDOWN:
            return None
        batch = [first]
        deadline = time.perf_counter() + self.config.max_wait_ms / 1e3
        while len(batch) < self.config.max_batch:
            remaining = deadline - time.perf_counter()
            try:
                item = self._queue.get(timeout=max(remaining, 0.0)) if remaining > 0 else self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                self._queue.put(_SHUTDOWN)  # keep the signal for this worker's next round
                break
            batch.append(item)
        return batch

    def _padded_size(self, count: int) -> int:
        if not self.config.pad_to_pow2:
            return count
        size = 1
        while size < count:
            size *= 2
        return min(size, self.config.max_batch)

    def _worker_loop(self) -> None:
        buffer = np.zeros((self.config.max_batch,) + self.input_shape, dtype=np.float32)
        while True:
            batch = self._gather()
            if batch is None:
                return
            count = len(batch)
            padded = max(self._padded_size(count), count)
            for i, request in enumerate(batch):
                buffer[i] = request.sample
            if padded > count:
                buffer[count:padded] = 0.0
            # The whole per-batch handling is exception-safe: whatever the
            # backend does — raise mid-forward, return a malformed output that
            # breaks result splitting — every future in the batch resolves
            # (result or exception) and the worker survives to serve the next
            # batch.  A dead worker thread would strand queued requests forever.
            delivered = 0
            try:
                outputs = self._forward(buffer[:padded])
                done = time.perf_counter()
                latencies = [(done - request.enqueued_at) * 1e3 for request in batch]
                for i, request in enumerate(batch):
                    result = np.array(outputs[i], copy=True)
                    request.future.set_result(result)
                    delivered += 1
            except Exception as error:  # propagate to every still-waiting client
                with self._lock:
                    self._failed += count - delivered
                    self._completed += delivered
                    self._batches += 1
                for request in batch[delivered:]:
                    request.future.set_exception(error)
                continue
            with self._lock:
                self._completed += count
                self._batches += 1
                self._batch_sizes[count] = self._batch_sizes.get(count, 0) + 1
                self._latencies.extend(latencies)
