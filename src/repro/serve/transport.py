"""Length-prefixed socket protocol shared by the fleet front door and clients.

The serving fleet (:mod:`repro.serve.fleet`) speaks a deliberately small
binary protocol over a loopback TCP connection::

    frame := u32 length | u8 kind | u32 request_id | u32 meta_len | meta | payload

``length`` counts every byte after itself, ``meta`` is UTF-8 JSON (shapes,
deadlines, error codes) and ``payload`` carries raw little-endian float32
tensor bytes.  Requests and responses are correlated by ``request_id``, which
is connection-local, so one connection can carry many requests in flight.

Failures travel as **typed errors**: every admitted request resolves to either
a ``RESPONSE`` frame or an ``ERROR`` frame whose ``code`` maps onto the
:class:`FleetError` hierarchy (:class:`Overloaded`, :class:`DeadlineExceeded`,
:class:`ReplicaFailed`, :class:`CorruptReply`, :class:`ServerClosed`).  "Zero
lost requests" — the fleet's core robustness invariant — means exactly that
mapping: a reply or a typed error, never silence.

:class:`FleetClient` is the thread-safe client: ``submit`` returns a
:class:`concurrent.futures.Future` (so :func:`repro.serve.loadgen.run_load`
can drive a fleet exactly like an in-process engine) and retryable failures —
``overloaded`` sheds and dropped connections — are resent with capped
exponential backoff plus jitter until the retry budget or the per-request
timeout runs out.
"""

from __future__ import annotations

import heapq
import json
import socket
import struct
import threading
import time
from concurrent.futures import Future

import numpy as np

__all__ = [
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_ERROR",
    "KIND_PING",
    "KIND_PONG",
    "KIND_STATS",
    "KIND_STATS_REPLY",
    "FleetError",
    "Overloaded",
    "DeadlineExceeded",
    "ReplicaFailed",
    "CorruptReply",
    "ServerClosed",
    "BadRequest",
    "error_for",
    "pack_frame",
    "split_frame",
    "read_frame",
    "FleetClient",
]

KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
KIND_PING = 4
KIND_PONG = 5
KIND_STATS = 6
KIND_STATS_REPLY = 7

_HEADER = struct.Struct("<IBII")  # length, kind, request_id, meta_len
MAX_FRAME_BYTES = 64 * 1024 * 1024  # sanity bound against corrupt length fields


# --------------------------------------------------------------------------- #
# typed errors
# --------------------------------------------------------------------------- #
class FleetError(RuntimeError):
    """Base of the typed serving errors carried by ``ERROR`` frames."""

    code = "error"
    retryable = False
    retry_after_ms: float | None = None  # server hint; set by error_for from meta


class Overloaded(FleetError):
    """Admission control shed the request (bounded queue / no free slot)."""

    code = "overloaded"
    retryable = True


class DeadlineExceeded(FleetError):
    """The request's deadline expired before a replica finished it."""

    code = "deadline"


class ReplicaFailed(FleetError):
    """Every dispatch attempt ended in a replica crash, hang or error."""

    code = "replica_failed"


class CorruptReply(FleetError):
    """A reply failed checksum validation on every dispatch attempt."""

    code = "corrupt"


class ServerClosed(FleetError):
    """The server is draining and no longer admits requests."""

    code = "shutdown"


class BadRequest(FleetError):
    """Malformed request frame (wrong payload size or metadata)."""

    code = "bad_request"


_ERROR_TYPES = {
    cls.code: cls
    for cls in (Overloaded, DeadlineExceeded, ReplicaFailed, CorruptReply, ServerClosed, BadRequest)
}


def error_for(code: str, message: str = "", meta: dict | None = None) -> FleetError:
    """Build the typed exception for an ``ERROR`` frame's code.

    When the frame metadata carries a ``retry_after_ms`` hint (overload
    shedding under degradation), it is attached to the exception so retrying
    clients can pace themselves to the server's estimate.
    """
    error = _ERROR_TYPES.get(code, FleetError)(message or code)
    if meta is not None:
        hint = meta.get("retry_after_ms")
        if hint is not None:
            try:
                error.retry_after_ms = float(hint)
            except (TypeError, ValueError):
                pass
    return error


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def pack_frame(kind: int, request_id: int, meta: dict | None = None, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + JSON meta + raw payload)."""
    meta_bytes = json.dumps(meta or {}, separators=(",", ":")).encode("utf-8")
    length = 9 + len(meta_bytes) + len(payload)
    return _HEADER.pack(length, kind, request_id, len(meta_bytes)) + meta_bytes + payload


def split_frame(body: bytes) -> tuple[int, int, dict, bytes]:
    """Decode the bytes after the length field into (kind, id, meta, payload)."""
    kind, request_id, meta_len = struct.unpack_from("<BII", body, 0)
    meta_end = 9 + meta_len
    meta = json.loads(body[9:meta_end].decode("utf-8")) if meta_len else {}
    return kind, request_id, meta, body[meta_end:]


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[int, int, dict, bytes]:
    """Blocking read of one complete frame from a socket."""
    (length,) = struct.unpack("<I", _recv_exact(sock, 4))
    if not 9 <= length <= MAX_FRAME_BYTES:
        raise ConnectionError(f"invalid frame length {length}")
    return split_frame(_recv_exact(sock, length))


# --------------------------------------------------------------------------- #
# client
# --------------------------------------------------------------------------- #
class _ClientRequest:
    __slots__ = ("request_id", "payload", "meta", "future", "attempts", "expires_at")

    def __init__(self, request_id, payload, meta, timeout):
        self.request_id = request_id
        self.payload = payload
        self.meta = meta
        self.future: Future = Future()
        self.attempts = 0
        self.expires_at = time.monotonic() + timeout


class FleetClient:
    """Thread-safe client for a serving fleet's front door.

    Parameters
    ----------
    address:
        ``(host, port)`` of the fleet front door (``Fleet.address``).
    deadline_ms:
        Server-side deadline attached to every request (``None`` uses the
        fleet's default).  The server guarantees a reply — result or typed
        error — within this budget.
    timeout:
        Client-side budget in seconds per request across *all* retries; when
        it runs out the future fails with the last error.
    retries:
        How many times a retryable failure (``Overloaded``, dropped
        connection) is resent before the future fails.
    backoff_base, backoff_cap, jitter:
        Retry delay ``min(cap, base * 2**(attempt-1))`` scaled by a random
        ``1 + U(0, jitter)`` factor — capped exponential backoff with jitter,
        so synchronized clients do not re-stampede a recovering server.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        deadline_ms: float | None = None,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ):
        self._address = tuple(address)
        self._deadline_ms = deadline_ms
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._jitter = float(jitter)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._pending: dict[int, _ClientRequest] = {}
        self._ids = 0
        self._closed = False
        self._retry_heap: list[tuple[float, int, _ClientRequest]] = []
        self._retry_seq = 0
        self._retry_wakeup = threading.Condition(self._lock)
        self.input_shape: tuple[int, ...] = ()
        self.output_shape: tuple[int, ...] = ()
        self._reader = threading.Thread(target=self._reader_loop, name="fleet-client-reader", daemon=True)
        self._retrier = threading.Thread(target=self._retry_loop, name="fleet-client-retry", daemon=True)
        self.connect()
        self._reader.start()
        self._retrier.start()

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def connect(self) -> None:
        """(Re)connect and run the hello handshake (learns the IO shapes)."""
        with self._lock:
            self._connect_locked()

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(self._address, timeout=10.0)
        sock.settimeout(None)
        sock.sendall(pack_frame(KIND_PING, 0))
        kind, _, meta, _ = read_frame(sock)
        if kind != KIND_PONG:
            sock.close()
            raise ConnectionError(f"handshake failed: expected PONG, got kind {kind}")
        self.input_shape = tuple(meta.get("input_shape", ()))
        self.output_shape = tuple(meta.get("output_shape", ()))
        self._sock = sock

    def _drop_connection_locked(self, sock) -> None:
        """Forget a dead socket and reschedule its in-flight requests."""
        if self._sock is not sock:
            return
        self._sock = None
        try:
            sock.close()
        except OSError:
            pass
        for request in list(self._pending.values()):
            del self._pending[request.request_id]
            self._retry_or_fail_locked(request, ConnectionError("connection to fleet lost"))

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def submit(self, sample: np.ndarray) -> Future:
        """Enqueue one sample; returns a future of its output tensor."""
        payload = np.ascontiguousarray(sample, dtype=np.float32).tobytes()
        meta: dict = {}
        if self._deadline_ms is not None:
            meta["deadline_ms"] = float(self._deadline_ms)
        with self._lock:
            if self._closed:
                raise RuntimeError("client is closed")
            self._ids += 1
            request = _ClientRequest(self._ids, payload, meta, self._timeout)
            self._send_locked(request)
        return request.future

    def predict(self, sample: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Blocking single-sample convenience wrapper around :meth:`submit`."""
        return self.submit(sample).result(timeout=timeout if timeout is not None else self._timeout + 5.0)

    def _send_locked(self, request: _ClientRequest) -> None:
        request.attempts += 1
        self._pending[request.request_id] = request
        try:
            self._connect_locked()
            self._sock.sendall(
                pack_frame(KIND_REQUEST, request.request_id, request.meta, request.payload)
            )
        except (OSError, ConnectionError) as error:
            del self._pending[request.request_id]
            self._retry_or_fail_locked(request, error)

    def _retry_or_fail_locked(self, request: _ClientRequest, error: Exception) -> None:
        retryable = isinstance(error, (ConnectionError, OSError)) or (
            isinstance(error, FleetError) and error.retryable
        )
        now = time.monotonic()
        if self._closed or not retryable or request.attempts > self._retries or now >= request.expires_at:
            if not request.future.done():
                request.future.set_exception(error)
            return
        hint_ms = getattr(error, "retry_after_ms", None)
        if hint_ms is not None and hint_ms > 0:
            # the server knows its own backlog better than blind exponential
            # backoff does — pace to its estimate, capped like local backoff
            delay = min(self._backoff_cap, hint_ms / 1e3)
        else:
            delay = min(self._backoff_cap, self._backoff_base * 2 ** (request.attempts - 1))
        delay *= 1.0 + float(self._rng.uniform(0.0, self._jitter))
        self._retry_seq += 1
        heapq.heappush(self._retry_heap, (now + delay, self._retry_seq, request))
        self._retry_wakeup.notify_all()

    # ------------------------------------------------------------------ #
    # background threads
    # ------------------------------------------------------------------ #
    def _reader_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                sock = self._sock
            if sock is None:
                time.sleep(0.01)
                continue
            try:
                kind, request_id, meta, payload = read_frame(sock)
            except (OSError, ConnectionError):
                with self._lock:
                    if self._closed:
                        return
                    self._drop_connection_locked(sock)
                continue
            with self._lock:
                request = self._pending.pop(request_id, None)
            if request is None or request.future.done():
                continue
            if kind == KIND_RESPONSE:
                out = np.frombuffer(payload, dtype=np.float32).copy()
                shape = meta.get("shape")
                if shape:
                    out = out.reshape(shape)
                request.future.set_result(out)
            elif kind == KIND_STATS_REPLY:
                request.future.set_result(meta)
            elif kind == KIND_ERROR:
                error = error_for(meta.get("code", "error"), meta.get("message", ""), meta)
                with self._lock:
                    self._retry_or_fail_locked(request, error)

    def _retry_loop(self) -> None:
        with self._lock:
            while not self._closed:
                if not self._retry_heap:
                    self._retry_wakeup.wait(timeout=0.1)
                    continue
                due, _, request = self._retry_heap[0]
                now = time.monotonic()
                if due > now:
                    self._retry_wakeup.wait(timeout=min(due - now, 0.1))
                    continue
                heapq.heappop(self._retry_heap)
                if not request.future.done():
                    self._send_locked(request)

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def server_stats(self, timeout: float = 5.0) -> dict:
        """Fetch the fleet's stats snapshot over the wire."""
        with self._lock:
            if self._closed:
                raise RuntimeError("client is closed")
            self._ids += 1
            request = _ClientRequest(self._ids, b"", {}, timeout)
            self._pending[request.request_id] = request
            self._connect_locked()
            self._sock.sendall(pack_frame(KIND_STATS, request.request_id))
        kind_payload = request.future.result(timeout=timeout)
        return kind_payload

    def close(self) -> None:
        """Close the connection; unresolved futures fail with ServerClosed."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sock, self._sock = self._sock, None
            for request in self._pending.values():
                if not request.future.done():
                    request.future.set_exception(ServerClosed("client closed"))
            self._pending.clear()
            self._retry_wakeup.notify_all()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        for thread in (self._reader, self._retrier):
            if thread.is_alive() and thread is not threading.current_thread():
                thread.join(timeout=2.0)

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
