"""Fault injection for the serving fleet.

Robustness claims that are never exercised rot.  This module makes the
fleet's failure paths *first-class and injectable*: a :class:`ChaosConfig`
declares which faults fire, how often, and when, and every fleet process —
replicas and the front door — draws faults from its own seeded
:class:`ChaosMonkey`, so chaos runs are reproducible.

Supported faults
----------------
``kill``
    The replica SIGKILLs itself mid-batch (requests already claimed) —
    exercises crash detection, in-flight requeue and supervised restart.
``hang``
    The replica's worker loop blocks without heartbeating — exercises the
    missed-heartbeat watchdog (the supervisor must kill and restart it).
``slow``
    The replica sleeps ``ms`` before running the batch — exercises deadline
    handling and tail-latency accounting.
``corrupt``
    The replica flips bytes in a reply *after* computing its checksum — the
    front door must detect the CRC mismatch and redispatch.
``drop``
    The front door abruptly closes a client connection — exercises
    client-side reconnect and retry with backoff.

Faults are configured programmatically, as a compact spec string, or through
the ``REPRO_CHAOS`` environment variable (read by the serving CLI and by
replicas at startup), e.g.::

    REPRO_CHAOS="kill:prob=1,warmup=10,max=1;corrupt:prob=0.05,max=3"

Each clause is ``kind:key=value,...`` with keys ``prob`` (per-batch firing
probability), ``warmup`` (trials skipped before the fault may fire), ``max``
(total firings per process) and ``ms`` (duration for ``slow``/``hang``).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["Fault", "ChaosConfig", "ChaosMonkey", "parse_chaos", "FAULT_KINDS", "ENV_VAR"]

FAULT_KINDS = ("kill", "hang", "slow", "corrupt", "drop")
ENV_VAR = "REPRO_CHAOS"
_HANG_DEFAULT_MS = 3_600_000.0  # an injected hang blocks "forever" (watchdog must act)


@dataclass(frozen=True)
class Fault:
    """One injectable fault: what fires, how often, and for how long."""

    kind: str
    prob: float = 0.0
    warmup: int = 0
    max_events: int | None = None
    ms: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.prob}")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.max_events is not None and self.max_events < 0:
            raise ValueError("max_events must be non-negative")
        if self.ms < 0:
            raise ValueError("ms must be non-negative")


@dataclass(frozen=True)
class ChaosConfig:
    """A reproducible set of faults shared by every process of a fleet."""

    faults: tuple[Fault, ...] = ()
    seed: int = 1234

    def monkey(self, scope: int) -> "ChaosMonkey":
        """Build the per-process fault source; ``scope`` decorrelates streams
        (replica index, or a negative id for the front door)."""
        return ChaosMonkey(self, scope)

    def describe(self) -> str:
        if not self.faults:
            return "chaos: off"
        parts = []
        for fault in self.faults:
            bits = [f"prob={fault.prob:g}"]
            if fault.warmup:
                bits.append(f"warmup={fault.warmup}")
            if fault.max_events is not None:
                bits.append(f"max={fault.max_events}")
            if fault.ms:
                bits.append(f"ms={fault.ms:g}")
            parts.append(f"{fault.kind}:{','.join(bits)}")
        return "chaos: " + ";".join(parts)

    @staticmethod
    def from_env() -> "ChaosConfig":
        """Parse ``$REPRO_CHAOS`` (an empty/unset variable means no chaos)."""
        return parse_chaos(os.environ.get(ENV_VAR, ""))


def parse_chaos(spec: "str | ChaosConfig | None", seed: int = 1234) -> ChaosConfig:
    """Parse a compact chaos spec string into a :class:`ChaosConfig`.

    ``"kill:prob=1,warmup=3,max=1;slow:prob=0.1,ms=20"`` → two faults.
    ``None`` / ``""`` → an empty (disabled) config.  An existing
    :class:`ChaosConfig` passes through unchanged.
    """
    if isinstance(spec, ChaosConfig):
        return spec
    if not spec:
        return ChaosConfig(seed=seed)
    faults = []
    for clause in str(spec).split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, argstr = clause.partition(":")
        kwargs: dict = {"kind": kind.strip()}
        for pair in filter(None, (p.strip() for p in argstr.split(","))):
            key, _, value = pair.partition("=")
            key = {"max": "max_events"}.get(key.strip(), key.strip())
            if key == "prob":
                kwargs["prob"] = float(value)
            elif key == "warmup":
                kwargs["warmup"] = int(value)
            elif key == "max_events":
                kwargs["max_events"] = int(value)
            elif key == "ms":
                kwargs["ms"] = float(value)
            elif key == "seed":
                seed = int(value)
            else:
                raise ValueError(f"unknown chaos parameter {key!r} in clause {clause!r}")
        faults.append(Fault(**kwargs))
    return ChaosConfig(faults=tuple(faults), seed=seed)


class ChaosMonkey:
    """Per-process fault source with seeded, warmup/cap-bounded draws."""

    def __init__(self, config: ChaosConfig, scope: int):
        self._faults = {fault.kind: fault for fault in config.faults}
        # scopes may be negative (the front door); keep the derived seed valid
        self._rng = np.random.default_rng((config.seed + 9973 * (scope + 1)) % 2**32)
        self._trials: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    def fired(self, kind: str) -> int:
        """How many times ``kind`` has fired in this process."""
        return self._fired.get(kind, 0)

    def draw(self, kind: str) -> Fault | None:
        """One trial of ``kind``; returns the fault iff it fires now."""
        fault = self._faults.get(kind)
        if fault is None or fault.prob <= 0.0:
            return None
        self._trials[kind] = self._trials.get(kind, 0) + 1
        if self._trials[kind] <= fault.warmup:
            return None
        if fault.max_events is not None and self.fired(kind) >= fault.max_events:
            return None
        if float(self._rng.random()) >= fault.prob:
            return None
        self._fired[kind] = self.fired(kind) + 1
        return fault

    # ------------------------------------------------------------------ #
    # replica-side faults
    # ------------------------------------------------------------------ #
    def pre_batch(self) -> None:
        """Apply worker faults before a batch runs: kill, hang, or slow.

        ``kill`` SIGKILLs the process (no cleanup — that is the point).
        ``hang`` sleeps without returning control, so the worker loop stops
        heartbeating and the supervisor's watchdog must intervene.
        """
        if self.draw("kill"):
            os.kill(os.getpid(), signal.SIGKILL)
        fault = self.draw("hang")
        if fault:
            time.sleep((fault.ms or _HANG_DEFAULT_MS) / 1e3)
        fault = self.draw("slow")
        if fault:
            time.sleep(fault.ms / 1e3)

    def corrupt_reply(self, view) -> bool:
        """Maybe flip bytes in a reply buffer; returns True when it did."""
        if not self.draw("corrupt"):
            return False
        view = memoryview(view).cast("B")
        n = min(8, len(view))
        for i in range(n):
            view[i] ^= 0xFF
        return True

    def drop_connection(self) -> bool:
        """Front-door fault: should this client connection be severed?"""
        return self.draw("drop") is not None
