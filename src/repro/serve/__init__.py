"""Throughput-oriented model serving on top of the compiled runtimes.

The serving layer turns the repo's compiled inference engines into a
dynamic-batching model server::

    from repro.serve import Engine, build_server

    engine = build_server("mobilenetv2-tiny", workers=4)   # int8 by default
    future = engine.submit(image)        # (C, H, W) -> Future of logits
    logits = future.result()
    print(engine.stats().summary())

:class:`Engine` implements the max-batch / max-wait dynamic batching policy
with padded batch assembly over a multi-worker executor;
:func:`repro.serve.loadgen.run_load` is the closed-loop load harness, and
``python -m repro.serve --model mobilenetv2-tiny --workers 4`` runs a
self-contained load test from the command line.
"""

from __future__ import annotations

import numpy as np

from .engine import Engine, EngineConfig, ServeStats
from .loadgen import LoadReport, run_load

__all__ = [
    "Engine",
    "EngineConfig",
    "ServeStats",
    "LoadReport",
    "run_load",
    "build_server",
]


def build_server(
    model_name: str = "mobilenetv2-tiny",
    resolution: int = 16,
    num_classes: int = 16,
    backend: str = "int8",
    calibration_batches: int = 2,
    calibration_method: str = "minmax",
    seed: int = 0,
    **engine_kwargs,
) -> Engine:
    """Build a ready-to-serve :class:`Engine` for a registry model.

    The model is created from :mod:`repro.models`, quantized and calibrated on
    synthetic data (``backend="int8"``, the default) and compiled with
    :func:`repro.runtime.compile_quantized`; ``backend="float"`` serves the
    fused float runtime instead, and ``backend="eager"`` the plain module.
    Extra keyword arguments configure the engine's batching policy
    (``max_batch``, ``max_wait_ms``, ``workers``...).
    """
    from ..compress import calibrate, quantize_model
    from ..models import create_model
    from ..runtime import compile_net, compile_quantized
    from ..utils import seed_everything

    if backend not in ("int8", "float", "eager"):
        raise ValueError(f"unknown backend {backend!r}")
    seed_everything(seed)
    model = create_model(model_name, num_classes=num_classes)
    model.eval()
    input_shape = (3, resolution, resolution)
    if backend == "int8":
        rng = np.random.default_rng(seed)
        quantize_model(model)
        batches = [
            rng.normal(0.2, 0.8, size=(8,) + input_shape).astype(np.float32)
            for _ in range(calibration_batches)
        ]
        calibrate(model, batches, method=calibration_method)
        net = compile_quantized(model)
    elif backend == "float":
        net = compile_net(model)
    else:
        from .. import nn

        def eager_forward(batch, _model=model):
            with nn.no_grad():
                return _model(nn.Tensor(batch)).numpy()

        net = eager_forward
    return Engine(net, input_shape, **engine_kwargs)
