"""Throughput-oriented model serving on top of the compiled runtimes.

The serving layer turns the repo's compiled inference engines into a
dynamic-batching model server::

    from repro.serve import Engine, build_server

    engine = build_server("mobilenetv2-tiny", workers=4)   # int8 by default
    future = engine.submit(image)        # (C, H, W) -> Future of logits
    logits = future.result()
    print(engine.stats().summary())

:class:`Engine` implements the max-batch / max-wait dynamic batching policy
with padded batch assembly over a multi-worker executor;
:func:`repro.serve.loadgen.run_load` is the closed-loop load harness, and
``python -m repro.serve --model mobilenetv2-tiny --workers 4`` runs a
self-contained load test from the command line.

Inference backends are resolved by name through the
:func:`repro.runtime.resolve_engine` registry (``--engine {float,int8}``) and
compiled with the unified :func:`repro.compile` frontend; ``"eager"`` serves
the uncompiled module.
"""

from __future__ import annotations

import numpy as np

from .engine import Engine, EngineConfig, ServeStats
from .loadgen import LoadReport, run_load

__all__ = [
    "Engine",
    "EngineConfig",
    "ServeStats",
    "LoadReport",
    "run_load",
    "build_server",
    "available_backends",
]


def available_backends() -> list[str]:
    """Engine names :func:`build_server` accepts (registry engines + eager)."""
    from ..runtime import available_engines

    return sorted(available_engines() + ["eager"])


def build_server(
    model_name: str = "mobilenetv2-tiny",
    resolution: int = 16,
    num_classes: int = 16,
    backend: str = "int8",
    calibration_batches: int = 2,
    calibration_method: str = "minmax",
    seed: int = 0,
    engine: str | None = None,
    **engine_kwargs,
) -> Engine:
    """Build a ready-to-serve :class:`Engine` for a registry model.

    The inference backend is resolved by name through the
    :func:`repro.runtime.resolve_engine` registry and compiled with the
    unified :func:`repro.compile` frontend: ``"int8"`` (the default)
    quantizes and calibrates the model on synthetic data first, ``"float"``
    serves the fused float runtime, and the special name ``"eager"`` serves
    the plain module.  ``engine`` is an alias for ``backend`` (matching the
    ``repro.serve --engine`` CLI flag) and wins when both are given.  Extra
    keyword arguments configure the engine's batching policy (``max_batch``,
    ``max_wait_ms``, ``workers``...).
    """
    from ..compress import calibrate, quantize_model
    from ..models import create_model
    from ..runtime import compile_model, resolve_engine
    from ..utils import seed_everything

    name = engine if engine is not None else backend
    seed_everything(seed)
    model = create_model(model_name, num_classes=num_classes)
    model.eval()
    input_shape = (3, resolution, resolution)
    if name == "eager":
        from .. import nn

        def eager_forward(batch, _model=model):
            with nn.no_grad():
                return _model(nn.Tensor(batch)).numpy()

        net = eager_forward
    else:
        try:
            spec = resolve_engine(name)
        except KeyError:
            raise ValueError(
                f"unknown backend {name!r}; available: {available_backends()}"
            ) from None
        if spec.mode == "int8":
            rng = np.random.default_rng(seed)
            quantize_model(model)
            batches = [
                rng.normal(0.2, 0.8, size=(8,) + input_shape).astype(np.float32)
                for _ in range(calibration_batches)
            ]
            calibrate(model, batches, method=calibration_method)
        net = compile_model(model, mode=spec.mode)
    return Engine(net, input_shape, **engine_kwargs)
