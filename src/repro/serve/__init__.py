"""Throughput-oriented model serving on top of the compiled runtimes.

Two serving tiers share one request model (submit a sample, get a future):

**In-process engine** — dynamic micro-batching over worker threads::

    from repro.serve import Engine, build_server

    engine = build_server("mobilenetv2-tiny", workers=4)   # int8 by default
    future = engine.submit(image)        # (C, H, W) -> Future of logits
    logits = future.result()
    print(engine.stats().summary())

**Supervised fleet** — N replica processes behind an asyncio front door,
with shared-memory tensor transport, heartbeat watchdog, crash/hang recovery
and typed-error semantics (every admitted request resolves to a result or a
typed error — never silence)::

    from repro.serve import Fleet

    with Fleet(replicas=4, builder_kwargs={"engine": "int8"}) as fleet:
        with fleet.client() as client:
            logits = client.predict(image)
        print(fleet.stats().summary())

:class:`Engine` implements the max-batch / max-wait dynamic batching policy;
:func:`repro.serve.loadgen.run_load` is the load harness (closed-loop
constant-concurrency or open-loop arrival-rate with ramp/spike shapes) and
drives either tier; ``python -m repro.serve --replicas 4`` runs a
self-contained fleet load test (with optional ``--chaos`` fault injection)
from the command line.  :class:`AutoscaleController` + :class:`SLOConfig`
(``--autoscale`` / ``$REPRO_AUTOSCALE``) close the loop: the fleet resizes
itself against a p99/queue-depth SLO and degrades gracefully at capacity.

Inference backends are resolved by name through the
:func:`repro.runtime.resolve_engine` registry (``--engine {float,int8}``) and
compiled with the unified :func:`repro.compile` frontend; ``"eager"`` serves
the uncompiled module.
"""

from __future__ import annotations

from .autoscale import AutoscaleController, SLOConfig, parse_autoscale
from .chaos import ChaosConfig, ChaosMonkey, parse_chaos
from .engine import Engine, EngineConfig, ServeStats
from .fleet import (
    Fleet,
    FleetConfig,
    FleetStats,
    ServingBackend,
    echo_backend,
    model_backend,
    resolve_net,
)
from .loadgen import LoadReport, run_load
from .transport import (
    BadRequest,
    CorruptReply,
    DeadlineExceeded,
    FleetClient,
    FleetError,
    Overloaded,
    ReplicaFailed,
    ServerClosed,
)

__all__ = [
    "Engine",
    "EngineConfig",
    "ServeStats",
    "LoadReport",
    "run_load",
    "build_server",
    "available_backends",
    # fleet tier
    "Fleet",
    "FleetConfig",
    "FleetStats",
    "FleetClient",
    "ServingBackend",
    "model_backend",
    "echo_backend",
    "resolve_net",
    # autoscaling / degradation
    "AutoscaleController",
    "SLOConfig",
    "parse_autoscale",
    # chaos / fault injection
    "ChaosConfig",
    "ChaosMonkey",
    "parse_chaos",
    # typed serving errors
    "FleetError",
    "Overloaded",
    "DeadlineExceeded",
    "ReplicaFailed",
    "CorruptReply",
    "ServerClosed",
    "BadRequest",
]


def available_backends() -> list[str]:
    """Engine names :func:`build_server` accepts (registry engines + eager)."""
    from ..runtime import available_engines

    return sorted(available_engines() + ["eager"])


def build_server(
    model_name: str = "mobilenetv2-tiny",
    resolution: int = 16,
    num_classes: int = 16,
    backend: str = "int8",
    calibration_batches: int = 2,
    calibration_method: str = "minmax",
    seed: int = 0,
    engine: str | None = None,
    threads: int | str | None = None,
    **engine_kwargs,
) -> Engine:
    """Build a ready-to-serve :class:`Engine` for a registry model.

    The inference backend is resolved by name through the
    :func:`repro.runtime.resolve_engine` registry and compiled with the
    unified :func:`repro.compile` frontend: ``"int8"`` (the default)
    quantizes and calibrates the model on synthetic data first, ``"float"``
    serves the fused float runtime, and the special name ``"eager"`` serves
    the plain module.  ``engine`` is an alias for ``backend`` (matching the
    ``repro.serve --engine`` CLI flag) and wins when both are given.  Extra
    keyword arguments configure the engine's batching policy (``max_batch``,
    ``max_wait_ms``, ``workers``...).  ``threads`` sizes the compiled
    backend's intra-op tile-parallel pool (``CompileOptions(threads=...)``);
    batching ``workers`` and kernel ``threads`` compose — each worker drains
    its batch through the shared wave pool.

    The model construction is shared with the fleet's
    :func:`~repro.serve.fleet.model_backend` builder, so both serving tiers
    serve bit-identical backends.
    """
    name = engine if engine is not None else backend
    net, input_shape = resolve_net(
        model_name=model_name,
        resolution=resolution,
        num_classes=num_classes,
        engine=name,
        calibration_batches=calibration_batches,
        calibration_method=calibration_method,
        seed=seed,
        threads=threads,
    )
    return Engine(net, input_shape, **engine_kwargs)
