"""Command-line load test for the serving engine.

Builds a registry model, compiles it (int8 by default), serves it through the
dynamic-batching engine and drives it with a closed-loop load generator::

    PYTHONPATH=src python -m repro.serve --model mobilenetv2-tiny --workers 4
    PYTHONPATH=src python -m repro.serve --engine float --concurrency 64
    PYTHONPATH=src python -m repro.serve --requests 5000 --json /tmp/serve.json

``--engine`` names resolve through the :func:`repro.runtime.resolve_engine`
registry (plus the special ``eager`` backend); prints sustained req/s,
latency percentiles and the batch-size mix.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from . import build_server
from .loadgen import run_load


def main(argv=None) -> int:
    from . import available_backends

    backends = tuple(available_backends())
    parser = argparse.ArgumentParser(prog="python -m repro.serve", description=__doc__)
    parser.add_argument("--model", default="mobilenetv2-tiny", help="registry model name")
    parser.add_argument(
        "--engine",
        default=None,
        choices=backends,
        help="inference engine, resolved through the repro.runtime engine registry",
    )
    parser.add_argument(
        "--backend",
        default="int8",
        choices=backends,
        help="deprecated alias of --engine",
    )
    parser.add_argument("--resolution", type=int, default=16, help="input resolution")
    parser.add_argument("--workers", type=int, default=2, help="batching worker threads")
    parser.add_argument("--max-batch", type=int, default=16, help="dynamic batch cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0, help="batch window")
    parser.add_argument("--requests", type=int, default=2000, help="measured requests")
    parser.add_argument("--concurrency", type=int, default=32, help="closed-loop clients")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=None, help="write the report as JSON")
    args = parser.parse_args(argv)
    engine_name = args.engine if args.engine is not None else args.backend

    print(f"building {args.model} [{engine_name}] at {args.resolution}x{args.resolution} ...")
    engine = build_server(
        args.model,
        resolution=args.resolution,
        backend=engine_name,
        seed=args.seed,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    with engine:
        report = run_load(
            engine, n_requests=args.requests, concurrency=args.concurrency, seed=args.seed
        )
        stats = engine.stats()
    print(report.summary())
    print(stats.summary())
    print(f"batch-size mix    : {stats.batch_size_counts}")
    if args.json is not None:
        payload = {
            "model": args.model,
            "backend": engine_name,
            "resolution": args.resolution,
            "workers": args.workers,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "load": report.__dict__,
            "engine": {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "failed": stats.failed,
                "batches": stats.batches,
                "mean_batch_size": stats.mean_batch_size,
                "batch_size_counts": stats.batch_size_counts,
            },
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
