"""Command-line load test for the serving engine and the replica fleet.

Builds a registry model, compiles it (int8 by default), serves it and drives
it with a closed-loop load generator::

    PYTHONPATH=src python -m repro.serve --model mobilenetv2-tiny --workers 4
    PYTHONPATH=src python -m repro.serve --engine float --concurrency 64
    PYTHONPATH=src python -m repro.serve --replicas 4 --requests 5000
    PYTHONPATH=src python -m repro.serve --replicas 2 --chaos "kill:prob=1,warmup=50,max=1"
    PYTHONPATH=src python -m repro.serve --autoscale --min-replicas 1 --max-replicas 4 \\
        --slo-p99-ms 50 --rate 200 --duration-s 10 --traffic spike

Without ``--replicas`` the in-process dynamic-batching :class:`Engine`
serves; with ``--replicas N`` a supervised multi-process
:class:`~repro.serve.Fleet` serves over shared memory and loopback sockets,
optionally under ``--chaos`` fault injection (kill/hang/slow/corrupt/drop).
In fleet mode the exit code is nonzero if any request was lost — admitted
but never answered with a result or typed error.

``--autoscale`` (or ``$REPRO_AUTOSCALE``) implies fleet mode and runs an
:class:`~repro.serve.AutoscaleController` alongside the load: the fleet
resizes itself between ``--min-replicas`` and ``--max-replicas`` against the
``--slo-p99-ms`` target and degrades gracefully at capacity.  ``--rate`` /
``--duration-s`` / ``--traffic`` switch the load generator to open loop
(fixed arrival schedule; the only mode that can genuinely overload).

``--engine`` names resolve through the :func:`repro.runtime.resolve_engine`
registry (plus the special ``eager`` backend); prints sustained req/s,
latency percentiles and the batch-size mix.

Compiled artifacts (:mod:`repro.runtime.artifact`) plug in at three points::

    PYTHONPATH=src python -m repro.serve --save-artifact net.rpa --engine int8
    PYTHONPATH=src python -m repro.serve --replicas 2 --artifact net.rpa
    PYTHONPATH=src python -m repro.serve --replicas 2 \\
        --fidelity "float:mobilenetv2-tiny,int8:mobilenetv2-tiny" --autoscale

``--save-artifact`` compiles and serializes, then exits.  ``--artifact``
serves a fleet straight from the file — skipping quantization/calibration at
replica boot — and validates the file (existence, format version, payload
digest, model fingerprint) *before* the fleet forks.  ``--fidelity`` serves a
multi-rung ladder (comma-separated ``engine:model`` or ``artifact:<path>``
rungs, highest fidelity first); with ``--autoscale`` the controller drops
fidelity before shedding and climbs back at idle.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import replace
from pathlib import Path

from . import available_backends, build_server
from .autoscale import ENV_VAR, SLOConfig, parse_autoscale
from .loadgen import TRAFFIC_SHAPES, run_load


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve", description=__doc__)
    parser.add_argument("--model", default="mobilenetv2-tiny", help="registry model name")
    parser.add_argument(
        "--engine",
        default=None,
        help="inference engine, resolved through the repro.runtime engine registry",
    )
    parser.add_argument("--backend", default="int8", help="deprecated alias of --engine")
    parser.add_argument("--resolution", type=int, default=16, help="input resolution")
    parser.add_argument("--workers", type=int, default=2, help="batching worker threads")
    parser.add_argument(
        "--threads",
        default=None,
        help="intra-op kernel threads per engine (int, or 'auto' for one per CPU); "
        "default: serial kernels ($REPRO_THREADS overrides)",
    )
    parser.add_argument(
        "--calibration-batches",
        type=int,
        default=2,
        help="int8 calibration batches at compile time (more = slower boot, "
        "better grids; artifact serving skips this entirely)",
    )
    parser.add_argument("--max-batch", type=int, default=16, help="dynamic batch cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0, help="batch window")
    parser.add_argument("--requests", type=int, default=2000, help="measured requests")
    parser.add_argument("--concurrency", type=int, default=32, help="closed-loop clients")
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-request client wait; timed-out requests are counted, not fatal",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=None, help="write the report as JSON")
    artifact_group = parser.add_argument_group("compiled artifacts (repro.runtime.artifact)")
    artifact_group.add_argument(
        "--artifact",
        type=Path,
        default=None,
        help="serve from a compiled-artifact file instead of compiling at boot "
        "(implies fleet mode; validated before the fleet forks)",
    )
    artifact_group.add_argument(
        "--save-artifact",
        type=Path,
        default=None,
        metavar="PATH",
        help="compile --model with --engine, save the artifact to PATH, and exit",
    )
    artifact_group.add_argument(
        "--fidelity",
        default=None,
        help="serve a multi-rung fidelity ladder (implies fleet mode); comma-separated "
        "rungs 'engine:model', bare 'engine', or 'artifact:<path>', highest fidelity first",
    )
    fleet_group = parser.add_argument_group("fleet mode (multi-process serving)")
    fleet_group.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="serve from N supervised replica processes instead of in-process threads",
    )
    fleet_group.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="server-side deadline per request (fleet mode)",
    )
    fleet_group.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="admission bound; excess requests are shed with Overloaded (fleet mode)",
    )
    fleet_group.add_argument(
        "--chaos",
        default=None,
        help="fault-injection spec, e.g. 'kill:prob=1,warmup=50,max=1;slow:prob=0.05,ms=5'",
    )
    load_group = parser.add_argument_group("open-loop load (fixed arrival schedule)")
    load_group.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered request rate in req/s; with --duration-s switches to open loop",
    )
    load_group.add_argument(
        "--duration-s", type=float, default=None, help="open-loop schedule length in seconds"
    )
    load_group.add_argument(
        "--traffic",
        default="constant",
        choices=list(TRAFFIC_SHAPES),
        help="open-loop traffic shape",
    )
    scale_group = parser.add_argument_group("autoscaling (implies fleet mode)")
    scale_group.add_argument(
        "--autoscale",
        nargs="?",
        const="1",
        default=None,
        help="enable SLO-driven autoscaling; optional spec like 'min=1,max=4,p99=50' "
        "(default from $REPRO_AUTOSCALE)",
    )
    scale_group.add_argument(
        "--min-replicas", type=int, default=None, help="autoscale floor (overrides the spec)"
    )
    scale_group.add_argument(
        "--max-replicas", type=int, default=None, help="autoscale ceiling (overrides the spec)"
    )
    scale_group.add_argument(
        "--slo-p99-ms", type=float, default=None, help="latency SLO target (overrides the spec)"
    )
    args = parser.parse_args(argv)
    if (args.rate is None) != (args.duration_s is None):
        parser.error("--rate and --duration-s must be given together")
    spec = args.autoscale if args.autoscale is not None else os.environ.get(ENV_VAR)
    try:
        slo = parse_autoscale(spec)
    except ValueError as error:
        parser.error(str(error))
    if slo is None and (
        args.min_replicas is not None or args.max_replicas is not None or args.slo_p99_ms is not None
    ):
        slo = SLOConfig()  # the override flags alone opt in
    if slo is not None:
        overrides = {}
        if args.min_replicas is not None:
            overrides["min_replicas"] = args.min_replicas
        if args.max_replicas is not None:
            overrides["max_replicas"] = args.max_replicas
        if args.slo_p99_ms is not None:
            overrides["p99_target_ms"] = args.slo_p99_ms
        if overrides:
            try:
                slo = replace(slo, **overrides)
            except ValueError as error:
                parser.error(str(error))
    args.slo = slo
    engine_name = args.engine if args.engine is not None else args.backend
    known = available_backends()
    if engine_name not in known:
        parser.error(f"unknown engine {engine_name!r}; available: {known}")
    _validate_artifact_args(parser, args)
    if args.save_artifact is not None:
        return _do_save_artifact(parser, args, engine_name)
    timeout_s = args.timeout_ms / 1e3 if args.timeout_ms is not None else None

    if args.replicas > 0 or args.slo is not None or args.artifact is not None or args.fidelity is not None:
        return _run_fleet(args, engine_name, timeout_s)

    print(f"building {args.model} [{engine_name}] at {args.resolution}x{args.resolution} ...")
    engine = build_server(
        args.model,
        resolution=args.resolution,
        backend=engine_name,
        seed=args.seed,
        threads=args.threads,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    with engine:
        report = run_load(
            engine,
            n_requests=args.requests,
            concurrency=args.concurrency,
            seed=args.seed,
            timeout=timeout_s,
        )
        stats = engine.stats()
    print(report.summary())
    print(stats.summary())
    print(f"batch-size mix    : {stats.batch_size_counts}")
    if args.json is not None:
        payload = {
            "mode": "engine",
            "model": args.model,
            "backend": engine_name,
            "resolution": args.resolution,
            "workers": args.workers,
            "threads": args.threads,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "load": report.__dict__,
            "engine": {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "failed": stats.failed,
                "batches": stats.batches,
                "mean_batch_size": stats.mean_batch_size,
                "batch_size_counts": stats.batch_size_counts,
            },
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _validate_artifact_args(parser, args) -> None:
    """Fail fast on bad ``--artifact``/``--fidelity`` combos, before any fork.

    Every referenced artifact file is fully loaded here in the parent —
    existence, format version, payload digest, model fingerprint and compiler
    drift are all checked — so a bad file dies with a one-line parser error
    instead of a replica start-timeout after the fleet has forked.
    """
    if args.artifact is not None and args.fidelity is not None:
        parser.error(
            "--artifact and --fidelity are mutually exclusive; "
            "use an 'artifact:<path>' rung inside --fidelity instead"
        )
    if args.save_artifact is not None and (args.artifact is not None or args.fidelity is not None):
        parser.error("--save-artifact compiles and exits; drop --artifact/--fidelity")
    if args.fidelity is not None and args.engine is not None:
        parser.error("--fidelity rungs name their own engines; drop --engine")
    paths = [args.artifact] if args.artifact is not None else []
    if args.fidelity is not None:
        from .fidelity import parse_fidelity

        try:
            rungs = parse_fidelity(args.fidelity, default_model=args.model)
        except ValueError as error:
            parser.error(str(error))
        paths.extend(r.artifact for r in rungs if r.artifact)
    if not paths:
        return
    from ..runtime.artifact import ArtifactError, load_artifact
    from ..runtime.frontend import _MODE_ALIASES

    for path in paths:
        try:
            executor = load_artifact(str(path))
        except ArtifactError as error:
            parser.error(str(error))
        info = executor.artifact
        if info.mode == "train":
            parser.error(f"artifact {path} holds a training step; it is not servable")
        if args.artifact is not None and args.engine is not None:
            want = _MODE_ALIASES.get(str(args.engine).lower())
            if want != info.mode:
                parser.error(
                    f"--engine {args.engine!r} conflicts with artifact {path} "
                    f"(compiled for mode {info.mode!r}); drop --engine or match it"
                )
        print(f"validated artifact: {info.summary()}")


def _do_save_artifact(parser, args, engine_name: str) -> int:
    """``--save-artifact``: compile the requested engine, serialize, exit."""
    from .fleet import resolve_net

    if engine_name == "eager":
        parser.error("the eager backend has no compiled program to serialize")
    print(f"compiling {args.model} [{engine_name}] at {args.resolution}x{args.resolution} ...")
    net, input_shape = resolve_net(
        model_name=args.model,
        resolution=args.resolution,
        engine=engine_name,
        calibration_batches=args.calibration_batches,
        seed=args.seed,
        threads=args.threads,
    )
    info = net.save(str(args.save_artifact), input_shape=input_shape)
    print(info.summary())
    print(f"wrote {args.save_artifact}")
    return 0


def _run_fleet(args, engine_name: str, timeout_s: float | None) -> int:
    import time

    from .autoscale import AutoscaleController
    from .fleet import Fleet, FleetConfig

    slo = args.slo
    replicas = args.replicas if args.replicas > 0 else (slo.min_replicas if slo else 1)
    threads_kwargs = {"threads": args.threads} if args.threads is not None else {}
    if args.fidelity is not None:
        from .fidelity import parse_fidelity

        # normalize the spec so bare-engine rungs pick up --model, not the
        # builder's default (builder_kwargs stay plain strings for spawn)
        rungs = parse_fidelity(args.fidelity, default_model=args.model)
        normalized = ",".join(
            f"artifact:{r.artifact}" if r.artifact else r.name for r in rungs
        )
        builder = "repro.serve.fidelity:ladder_backend"
        builder_kwargs = {
            "rungs": normalized,
            "resolution": args.resolution,
            "seed": args.seed,
            "calibration_batches": args.calibration_batches,
            **threads_kwargs,
        }
        what = f"fidelity ladder '{normalized}'"
    elif args.artifact is not None:
        builder = "repro.serve.fleet:model_backend"
        builder_kwargs = {"artifact": str(args.artifact), **threads_kwargs}
        what = f"artifact {args.artifact}"
    else:
        builder = "repro.serve.fleet:model_backend"
        builder_kwargs = {
            "model_name": args.model,
            "resolution": args.resolution,
            "engine": engine_name,
            "seed": args.seed,
            "calibration_batches": args.calibration_batches,
            **threads_kwargs,
        }
        what = f"{args.model} [{engine_name}] at {args.resolution}x{args.resolution}"
    config = FleetConfig(
        replicas=replicas,
        max_replicas=slo.max_replicas if slo is not None else None,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        builder=builder,
        builder_kwargs=builder_kwargs,
        chaos=args.chaos,
        **({"default_deadline_ms": args.deadline_ms} if args.deadline_ms is not None else {}),
    )
    print(
        f"starting fleet: {replicas} replicas of {what}"
        + (f", autoscale [{slo.min_replicas}..{slo.max_replicas}] "
           f"p99 SLO {slo.p99_target_ms:.0f} ms" if slo is not None else "")
        + (f", chaos '{args.chaos}'" if args.chaos else "")
        + " ..."
    )
    controller = None
    with Fleet(config) as fleet:
        fleet.wait_ready(timeout=config.start_timeout, replicas=replicas)
        if slo is not None:
            controller = AutoscaleController(fleet, slo).start()
        with fleet.client(deadline_ms=args.deadline_ms) as client:
            load_kwargs = dict(seed=args.seed, timeout=timeout_s)
            if args.rate is not None:
                load_kwargs.update(
                    mode="open", rate=args.rate, duration_s=args.duration_s, traffic=args.traffic
                )
            report = run_load(
                client,
                n_requests=args.requests,
                concurrency=args.concurrency,
                **load_kwargs,
            )
        if controller is not None:
            # idle reconvergence: let the controller walk the fleet back to
            # the floor before the final snapshot (bounded wait)
            deadline = time.monotonic() + slo.down_cooldown * (slo.max_replicas + 1) + 10.0
            while time.monotonic() < deadline:
                if controller.target <= slo.min_replicas and controller.level == 0:
                    break
                time.sleep(0.1)
            controller.stop()
        fleet.close()  # drain before reading the final stats
        stats = fleet.stats()
    print(report.summary())
    print(stats.summary())
    if controller is not None:
        print(controller.describe())
    lost = stats.lost
    if lost:
        print(f"ERROR: {lost} requests lost (admitted but never answered)")
    if args.json is not None:
        payload = {
            "mode": "fleet",
            "model": args.model,
            "backend": engine_name,
            "artifact": str(args.artifact) if args.artifact is not None else None,
            "fidelity": builder_kwargs.get("rungs"),
            "resolution": args.resolution,
            "replicas": replicas,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "chaos": args.chaos,
            "load": report.__dict__,
            "fleet": stats.to_dict(),
            **({"autoscale": controller.state()} if controller is not None else {}),
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if lost else 0


if __name__ == "__main__":
    raise SystemExit(main())
