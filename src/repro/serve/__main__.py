"""Command-line load test for the serving engine and the replica fleet.

Builds a registry model, compiles it (int8 by default), serves it and drives
it with a closed-loop load generator::

    PYTHONPATH=src python -m repro.serve --model mobilenetv2-tiny --workers 4
    PYTHONPATH=src python -m repro.serve --engine float --concurrency 64
    PYTHONPATH=src python -m repro.serve --replicas 4 --requests 5000
    PYTHONPATH=src python -m repro.serve --replicas 2 --chaos "kill:prob=1,warmup=50,max=1"

Without ``--replicas`` the in-process dynamic-batching :class:`Engine`
serves; with ``--replicas N`` a supervised multi-process
:class:`~repro.serve.Fleet` serves over shared memory and loopback sockets,
optionally under ``--chaos`` fault injection (kill/hang/slow/corrupt/drop).
In fleet mode the exit code is nonzero if any request was lost — admitted
but never answered with a result or typed error.

``--engine`` names resolve through the :func:`repro.runtime.resolve_engine`
registry (plus the special ``eager`` backend); prints sustained req/s,
latency percentiles and the batch-size mix.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from . import available_backends, build_server
from .loadgen import run_load


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve", description=__doc__)
    parser.add_argument("--model", default="mobilenetv2-tiny", help="registry model name")
    parser.add_argument(
        "--engine",
        default=None,
        help="inference engine, resolved through the repro.runtime engine registry",
    )
    parser.add_argument("--backend", default="int8", help="deprecated alias of --engine")
    parser.add_argument("--resolution", type=int, default=16, help="input resolution")
    parser.add_argument("--workers", type=int, default=2, help="batching worker threads")
    parser.add_argument(
        "--threads",
        default=None,
        help="intra-op kernel threads per engine (int, or 'auto' for one per CPU); "
        "default: serial kernels ($REPRO_THREADS overrides)",
    )
    parser.add_argument("--max-batch", type=int, default=16, help="dynamic batch cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0, help="batch window")
    parser.add_argument("--requests", type=int, default=2000, help="measured requests")
    parser.add_argument("--concurrency", type=int, default=32, help="closed-loop clients")
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-request client wait; timed-out requests are counted, not fatal",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=None, help="write the report as JSON")
    fleet_group = parser.add_argument_group("fleet mode (multi-process serving)")
    fleet_group.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="serve from N supervised replica processes instead of in-process threads",
    )
    fleet_group.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="server-side deadline per request (fleet mode)",
    )
    fleet_group.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="admission bound; excess requests are shed with Overloaded (fleet mode)",
    )
    fleet_group.add_argument(
        "--chaos",
        default=None,
        help="fault-injection spec, e.g. 'kill:prob=1,warmup=50,max=1;slow:prob=0.05,ms=5'",
    )
    args = parser.parse_args(argv)
    engine_name = args.engine if args.engine is not None else args.backend
    known = available_backends()
    if engine_name not in known:
        parser.error(f"unknown engine {engine_name!r}; available: {known}")
    timeout_s = args.timeout_ms / 1e3 if args.timeout_ms is not None else None

    if args.replicas > 0:
        return _run_fleet(args, engine_name, timeout_s)

    print(f"building {args.model} [{engine_name}] at {args.resolution}x{args.resolution} ...")
    engine = build_server(
        args.model,
        resolution=args.resolution,
        backend=engine_name,
        seed=args.seed,
        threads=args.threads,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    with engine:
        report = run_load(
            engine,
            n_requests=args.requests,
            concurrency=args.concurrency,
            seed=args.seed,
            timeout=timeout_s,
        )
        stats = engine.stats()
    print(report.summary())
    print(stats.summary())
    print(f"batch-size mix    : {stats.batch_size_counts}")
    if args.json is not None:
        payload = {
            "mode": "engine",
            "model": args.model,
            "backend": engine_name,
            "resolution": args.resolution,
            "workers": args.workers,
            "threads": args.threads,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "load": report.__dict__,
            "engine": {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "failed": stats.failed,
                "batches": stats.batches,
                "mean_batch_size": stats.mean_batch_size,
                "batch_size_counts": stats.batch_size_counts,
            },
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _run_fleet(args, engine_name: str, timeout_s: float | None) -> int:
    from .fleet import Fleet, FleetConfig

    config = FleetConfig(
        replicas=args.replicas,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        builder_kwargs={
            "model_name": args.model,
            "resolution": args.resolution,
            "engine": engine_name,
            "seed": args.seed,
            **({"threads": args.threads} if args.threads is not None else {}),
        },
        chaos=args.chaos,
        **({"default_deadline_ms": args.deadline_ms} if args.deadline_ms is not None else {}),
    )
    print(
        f"starting fleet: {args.replicas} replicas of {args.model} [{engine_name}] "
        f"at {args.resolution}x{args.resolution}"
        + (f", chaos '{args.chaos}'" if args.chaos else "")
        + " ..."
    )
    with Fleet(config) as fleet:
        fleet.wait_ready(timeout=config.start_timeout, replicas=args.replicas)
        with fleet.client(deadline_ms=args.deadline_ms) as client:
            report = run_load(
                client,
                n_requests=args.requests,
                concurrency=args.concurrency,
                seed=args.seed,
                timeout=timeout_s,
            )
        fleet.close()  # drain before reading the final stats
        stats = fleet.stats()
    print(report.summary())
    print(stats.summary())
    lost = stats.lost
    if lost:
        print(f"ERROR: {lost} requests lost (admitted but never answered)")
    if args.json is not None:
        payload = {
            "mode": "fleet",
            "model": args.model,
            "backend": engine_name,
            "resolution": args.resolution,
            "replicas": args.replicas,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "chaos": args.chaos,
            "load": report.__dict__,
            "fleet": stats.to_dict(),
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if lost else 0


if __name__ == "__main__":
    raise SystemExit(main())
