"""Elastic multi-fidelity serving: a ladder of engines for one task.

The paper's expand/contract machinery produces a *family* of models for the
same task — giant and tiny, float and int8.  A :class:`FidelityLadder` turns
that family into a serving feature: every replica pre-compiles (or pre-loads
from compiled artifacts, see :mod:`repro.runtime.artifact`) the whole ladder
once, and then switches its **active rung** instantly on a ``("cfg",
{"fidelity": i})`` message over its work pipe — no restart, no model load, no
dropped work.

Rung 0 is the highest-fidelity engine; higher indices trade accuracy for
latency.  Under load the :class:`~repro.serve.autoscale.AutoscaleController`
walks the ladder *before* shedding: when the fleet is pinned at
``max_replicas`` and pressure stays high, it first drops fidelity rung by
rung, and only once the ladder floor is reached does it start tightening
deadlines and shedding (the PR-8 degradation ladder).  When pressure
subsides it climbs back to rung 0 before undoing anything else, so an idle
fleet always serves full fidelity.

Every rung must share the front door's IO contract (same input shape, same
class count) — clients never see the switch except as a latency/accuracy
change.  Shared-memory slots are sized by the **max** ``plan_io`` over the
rungs, so any rung can serve out of the same slot block.

The ladder measures, at build time, each rung's top-1 *agreement* with rung 0
on a seeded probe batch — a label-free accuracy proxy surfaced in
``FleetStats`` next to the per-rung latency percentiles (the ``fidelity``
experiment reports true accuracy against labeled synthetic data).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .fleet import ServingBackend, resolve_net

__all__ = [
    "RungSpec",
    "FidelityLadder",
    "LadderBackend",
    "ladder_backend",
    "parse_fidelity",
    "default_ladder",
]


@dataclass(frozen=True)
class RungSpec:
    """One rung of a fidelity ladder.

    Either a registry model compiled on the spot (``engine`` + ``model``) or
    a pre-compiled artifact file (``artifact``), in which case engine/model
    come from the artifact header.
    """

    name: str
    engine: str = "float"
    model: str = "mobilenetv2-tiny"
    artifact: str | None = None


def parse_fidelity(spec: str, default_model: str = "mobilenetv2-tiny") -> list[RungSpec]:
    """Parse a ``--fidelity`` ladder spec into rungs (highest fidelity first).

    Grammar: comma-separated rungs, each ``engine:model``, a bare ``engine``
    (the default model), or ``artifact:<path>`` for a pre-compiled artifact.

    >>> [r.name for r in parse_fidelity("float:mobilenetv2-50,float,int8")]
    ['float:mobilenetv2-50', 'float:mobilenetv2-tiny', 'int8:mobilenetv2-tiny']
    """
    rungs = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, rest = part.partition(":")
        if kind == "artifact":
            if not rest:
                raise ValueError(f"fidelity rung {part!r}: artifact rung needs a path")
            rungs.append(RungSpec(name=f"artifact:{os.path.basename(rest)}", engine="artifact",
                                  model="", artifact=rest))
        else:
            model = rest or default_model
            rungs.append(RungSpec(name=f"{kind}:{model}", engine=kind, model=model))
    if not rungs:
        raise ValueError(f"fidelity spec {spec!r} has no rungs")
    return rungs


def default_ladder(model: str = "mobilenetv2-tiny") -> list[RungSpec]:
    """The stock two-rung ladder for one model: float (full) above int8 (fast)."""
    return [
        RungSpec(name=f"float:{model}", engine="float", model=model),
        RungSpec(name=f"int8:{model}", engine="int8", model=model),
    ]


class LadderBackend(ServingBackend):
    """A servable backend holding every rung of a ladder, one active at a time.

    ``forward`` dispatches to the active rung on every call, so the replica
    loop's one-time binding of ``backend.forward`` stays valid across
    switches.  ``set_rung`` is what the replica's ``("cfg", {"fidelity": i})``
    handler calls; it is cheap (an index assignment) and takes effect on the
    next micro-batch.
    """

    def __init__(self, rungs: list[RungSpec], forwards: list, nets: list,
                 input_shape: tuple[int, ...], io, agreement: list, name: str):
        super().__init__(self._dispatch, input_shape, net=None, name=name)
        self.rungs = list(rungs)
        self._forwards = list(forwards)
        self.nets = list(nets)
        self._io = io
        self.agreement = list(agreement)
        self._active = 0

    def _dispatch(self, batch):
        return self._forwards[self._active](batch)

    @property
    def active_rung(self) -> int:
        return self._active

    @property
    def rung_names(self) -> list[str]:
        return [r.name for r in self.rungs]

    def set_rung(self, rung: int) -> int:
        """Switch the active rung (clamped to the ladder)."""
        self._active = max(0, min(int(rung), len(self.rungs) - 1))
        return self._active

    def io_plan(self):
        return self._io


class FidelityLadder:
    """Builds and owns the rung engines of one ladder (see module docstring).

    Parameters
    ----------
    rungs:
        Rung specs, highest fidelity first (a ``--fidelity`` string, a list
        of :class:`RungSpec`, or dicts with the same fields).
    resolution, num_classes, seed, threads, calibration_batches,
    calibration_method:
        Forwarded to :func:`~repro.serve.fleet.resolve_net` for compiled
        rungs; artifact rungs take their configuration from their header.
    probe_batch:
        Seeded probe size for the rung-0 agreement measurement (0 disables).
    """

    def __init__(self, rungs, *, resolution: int = 16, num_classes: int = 16,
                 seed: int = 0, threads=None, calibration_batches: int = 2,
                 calibration_method: str = "minmax", probe_batch: int = 64):
        if isinstance(rungs, str):
            rungs = parse_fidelity(rungs)
        self.rungs = [r if isinstance(r, RungSpec) else RungSpec(**dict(r)) for r in rungs]
        if not self.rungs:
            raise ValueError("a fidelity ladder needs at least one rung")
        self.resolution = int(resolution)
        self.num_classes = int(num_classes)
        self.seed = int(seed)
        self.threads = threads
        self.calibration_batches = int(calibration_batches)
        self.calibration_method = calibration_method
        self.probe_batch = int(probe_batch)

    def _build_rung(self, spec: RungSpec):
        if spec.artifact is not None:
            from ..runtime import load_artifact

            net = load_artifact(spec.artifact, threads=self.threads)
            info = net.artifact
            if info.mode == "train":
                raise ValueError(f"fidelity rung {spec.name!r}: training artifacts are not servable")
            shape = tuple(info.input_shape) if info.input_shape else (3, self.resolution, self.resolution)
            return net, shape
        return resolve_net(
            model_name=spec.model,
            resolution=self.resolution,
            num_classes=self.num_classes,
            engine=spec.engine,
            calibration_batches=self.calibration_batches,
            calibration_method=self.calibration_method,
            seed=self.seed,
            threads=self.threads,
        )

    def build(self) -> LadderBackend:
        """Compile/load every rung, merge the IO contract, probe agreement."""
        from ..runtime import plan_io

        nets, forwards, shapes = [], [], []
        for spec in self.rungs:
            net, shape = self._build_rung(spec)
            nets.append(net)
            forwards.append(net.numpy_forward if hasattr(net, "numpy_forward") else net)
            shapes.append(tuple(shape))
        if len(set(shapes)) != 1:
            raise ValueError(
                f"fidelity rungs disagree on the input contract: "
                f"{dict(zip([r.name for r in self.rungs], shapes))}"
            )
        input_shape = shapes[0]
        # Slot sizing is the max plan over the rungs: any rung must be able
        # to serve out of the same shared-memory slot block.
        plans = [plan_io(net, input_shape) for net in nets]
        out_shapes = {plan.output_shape for plan in plans}
        if len(out_shapes) != 1:
            raise ValueError(
                f"fidelity rungs disagree on the output contract: "
                f"{dict(zip([r.name for r in self.rungs], [p.output_shape for p in plans]))}"
            )
        peaks = [plan.peak_value_int8_bytes for plan in plans if plan.peak_value_int8_bytes]
        io = max(plans, key=lambda plan: plan.slot_elements)
        if peaks:
            from dataclasses import replace

            io = replace(io, peak_value_int8_bytes=max(peaks))
        agreement = self._probe_agreement(forwards, input_shape)
        name = "ladder[" + ">".join(r.name for r in self.rungs) + "]"
        return LadderBackend(self.rungs, forwards, nets, input_shape, io, agreement, name)

    def _probe_agreement(self, forwards, input_shape) -> list:
        """Top-1 agreement of every rung with rung 0 on a seeded probe batch."""
        if self.probe_batch <= 0 or len(forwards) < 2:
            return [1.0] * len(forwards)
        rng = np.random.default_rng(self.seed + 1)
        probe = rng.normal(0.2, 0.8, size=(self.probe_batch,) + tuple(input_shape)).astype(np.float32)
        reference = np.argmax(np.asarray(forwards[0](probe)), axis=1)
        agreement = [1.0]
        for forward in forwards[1:]:
            top1 = np.argmax(np.asarray(forward(probe)), axis=1)
            agreement.append(float(np.mean(top1 == reference)))
        return agreement


def ladder_backend(
    rungs="float:mobilenetv2-tiny,int8:mobilenetv2-tiny",
    resolution: int = 16,
    num_classes: int = 16,
    seed: int = 0,
    threads=None,
    calibration_batches: int = 2,
    calibration_method: str = "minmax",
    probe_batch: int = 64,
) -> LadderBackend:
    """Fleet builder (``repro.serve.fidelity:ladder_backend``) for a ladder."""
    ladder = FidelityLadder(
        rungs,
        resolution=resolution,
        num_classes=num_classes,
        seed=seed,
        threads=threads,
        calibration_batches=calibration_batches,
        calibration_method=calibration_method,
        probe_batch=probe_batch,
    )
    return ladder.build()
