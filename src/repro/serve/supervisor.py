"""Replica lifecycle for the serving fleet: spawn, watch, restart, drain.

The :class:`Supervisor` owns the fleet's replica processes and nothing else —
request routing lives in :mod:`repro.serve.fleet`.  Each replica runs
:func:`_replica_main`: it attaches the shared-memory slot block, builds (or
inherits) its inference backend, and serves micro-batches read from a private
``multiprocessing`` pipe, writing results back into the slots and acking over
a second private pipe.  Private pipes matter for fault isolation: a replica
killed mid-write can only poison *its own* channel, never a sibling's.

Replica state machine::

                 spawn                 ready msg
   DETACHED ────────────▶ STARTING ─────────────▶ READY ──┐
      ▲                       │                      │     │ serves
      │        start timeout  │   crash / SIGKILL /  │     │ batches
      │        or early exit  │   missed heartbeats  │ ◀───┘
      │                       ▼                      ▼
      │     FAILED ◀──── [retries exhausted] ◀──── DOWN
      │                                              │
      │                       restart after capped   │
      │ scale-down drain:     exponential backoff    ▼
      │ READY ─▶ DRAINING              └────────▶ STARTING ...
      └──── (in-flight work finishes, replica stops)
          (on shutdown: READY/STARTING ──▶ STOPPED)

The supervisor owns a fixed pool of ``max_replicas`` handles but only keeps
``target`` of them in service; :meth:`Supervisor.set_target` moves the line.
Scaling up (re)spawns DETACHED handles; scaling down marks the excess
DRAINING — they finish the micro-batches already assigned to them (the
fleet's zero-lost invariant must hold through a resize), then stop and
return to DETACHED.  A scale-up that arrives mid-drain simply flips the
replica back to READY: the process never stopped serving, so cancelling a
drain is free.

Liveness has two signals.  *Crash* is cheap to detect: the process exit code
flips, and the parent's pipe reader sees EOF immediately.  *Hang* needs the
watchdog: the replica's worker loop — not a helper thread, the loop that
actually serves — writes a monotonic timestamp into a shared heartbeat array
every iteration, so a wedged loop (chaos ``hang``, a stuck kernel) stops
beating by construction and the supervisor SIGKILLs and restarts it after
``miss_threshold`` missed intervals.

Restarts use capped exponential backoff (``min(cap, base * 2**(failures-1))``)
so a crash-looping replica cannot hog the machine, and the failure count
decays after a healthy period so one bad minute does not penalize the replica
forever.  All supervisor time arithmetic goes through an injectable ``clock``
(default ``time.monotonic``), so the backoff/decay schedule is testable
without real sleeps.
"""

from __future__ import annotations

import os
import time
import zlib
import threading
import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from importlib import import_module
from multiprocessing import shared_memory

import numpy as np

from .chaos import ChaosConfig

__all__ = ["ReplicaSpec", "ReplicaHandle", "Supervisor", "resolve_builder"]

# replica states
STARTING = "starting"
READY = "ready"
DOWN = "down"
FAILED = "failed"
STOPPED = "stopped"
DRAINING = "draining"  # scale-down: finish assigned work, take no new work
DETACHED = "detached"  # out of service (above the current target count)


def resolve_builder(path):
    """Resolve a ``"module:callable"`` backend builder path."""
    if callable(path):
        return path
    module_name, _, attr = str(path).partition(":")
    if not attr:
        raise ValueError(f"builder path {path!r} must look like 'package.module:callable'")
    return getattr(import_module(module_name), attr)


@dataclass
class ReplicaSpec:
    """Everything a replica process needs to serve (picklable for spawn)."""

    index: int
    replicas: int
    builder: str
    builder_kwargs: dict
    input_shape: tuple[int, ...]
    input_elements: int
    output_elements: int
    slot_elements: int
    n_slots: int
    slots_name: str
    hb_name: str
    max_batch: int
    max_wait_ms: float
    heartbeat_interval: float
    chaos: ChaosConfig | None = None
    prebuilt: object = field(default=None, repr=False)  # fork-only fast path


def _replica_main(spec: ReplicaSpec, work, resp) -> None:
    """Replica process entry: serve micro-batches until stop/EOF/fault."""
    slots_shm = shared_memory.SharedMemory(name=spec.slots_name)
    hb_shm = shared_memory.SharedMemory(name=spec.hb_name)
    try:
        slots = np.ndarray((spec.n_slots, spec.slot_elements), dtype=np.float32, buffer=slots_shm.buf)
        hb = np.ndarray((spec.replicas,), dtype=np.float64, buffer=hb_shm.buf)

        def beat():
            hb[spec.index] = time.monotonic()

        beat()
        backend = (
            spec.prebuilt
            if spec.prebuilt is not None
            else resolve_builder(spec.builder)(**spec.builder_kwargs)
        )
        forward = backend.forward if hasattr(backend, "forward") else backend
        monkey = spec.chaos.monkey(spec.index) if spec.chaos and spec.chaos.faults else None
        in_elems, out_elems = spec.input_elements, spec.output_elements
        batch_buf = np.empty((spec.max_batch,) + tuple(spec.input_shape), dtype=np.float32)
        beat()
        resp.send(("ready", os.getpid()))
        max_wait_s = spec.max_wait_ms / 1e3

        def apply_cfg(payload: dict) -> None:
            # Live policy update (degradation ladder / fidelity switch); no
            # restart.  Unknown keys are ignored so the pipe protocol stays
            # forward-compatible across mixed replica generations.
            nonlocal max_wait_s
            max_wait_s = float(payload.get("max_wait_ms", max_wait_s * 1e3)) / 1e3
            rung = payload.get("fidelity")
            if rung is not None and hasattr(backend, "set_rung"):
                backend.set_rung(int(rung))

        stop = False
        while not stop:
            # Block for the first request, heartbeating while idle: the beat
            # comes from THIS loop, so a wedged worker stops beating.
            msg = None
            while msg is None:
                beat()
                if work.poll(spec.heartbeat_interval / 2):
                    msg = work.recv()
                    if msg[0] == "cfg":
                        apply_cfg(msg[1])
                        msg = None
            if msg[0] == "stop":
                break
            batch = [msg]
            deadline = time.monotonic() + max_wait_s
            while len(batch) < spec.max_batch:
                remaining = deadline - time.monotonic()
                if not work.poll(max(remaining, 0.0)):
                    break
                m = work.recv()
                if m[0] == "stop":
                    stop = True
                    break
                if m[0] == "cfg":
                    apply_cfg(m[1])
                    continue
                batch.append(m)
            beat()
            if monkey is not None:
                monkey.pre_batch()  # may SIGKILL, hang (starving beats), or sleep
            count = len(batch)
            for i, (_, _, slot) in enumerate(batch):
                batch_buf[i] = slots[slot, :in_elems].reshape(spec.input_shape)
            try:
                out = np.asarray(forward(batch_buf[:count]), dtype=np.float32).reshape(count, -1)
                if out.shape[1] != out_elems:
                    raise RuntimeError(
                        f"backend produced {out.shape[1]} elements/sample, expected {out_elems}"
                    )
            except Exception as error:  # typed per-request error, replica survives
                for _, gid, _ in batch:
                    resp.send(("err", gid, f"{type(error).__name__}: {error}"))
                beat()
                continue
            for i, (_, gid, slot) in enumerate(batch):
                dest = slots[slot, in_elems : in_elems + out_elems]
                dest[:] = out[i]
                crc = zlib.crc32(dest.tobytes())
                if monkey is not None:
                    monkey.corrupt_reply(dest)  # after crc: mismatch is detectable upstream
                resp.send(("done", gid, crc))
            beat()
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away or told us to die; nothing to clean beyond shm
    finally:
        slots_shm.close()
        hb_shm.close()


@dataclass
class ReplicaHandle:
    """Parent-side view of one replica slot (survives restarts)."""

    index: int
    generation: int = 0
    state: str = DETACHED
    process: object = None
    work: object = None  # parent -> child dispatch connection
    resp: object = None  # child -> parent ack connection (read by a thread)
    assigned: dict = field(default_factory=dict)  # gid -> entry, in flight on this replica
    served: int = 0
    failures: int = 0
    restarts: int = 0
    started_at: float = 0.0
    ready_since: float = 0.0
    cold_start_ms: float | None = None  # spawn -> READY of the last (re)start
    restart_at: float = 0.0
    pid: int | None = None
    latencies: deque = field(default_factory=lambda: deque(maxlen=256))  # ms, recent

    def close_conns(self) -> None:
        for conn in (self.work, self.resp):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.work = self.resp = None


class Supervisor:
    """Owns replica processes: spawn, watch heartbeats, restart, stop.

    All methods run on the fleet's event-loop thread; replica acks arrive via
    per-replica reader threads that post back onto the loop through ``post``.

    Parameters
    ----------
    config:
        The :class:`~repro.serve.fleet.FleetConfig` (duck-typed here).
    spec:
        Template :class:`ReplicaSpec`; each spawn stamps its index.
    hb:
        Parent-side view of the shared heartbeat array.
    post:
        ``post(fn, *args)`` schedules a callback on the loop thread.
    on_msg, on_down:
        Fleet callbacks: ``on_msg(handle, msg)`` for replica acks;
        ``on_down(handle, reason, assigned)`` with the dead replica's
        in-flight requests, which the fleet requeues.
    clock:
        Monotonic time source for all backoff/decay/watchdog arithmetic;
        injectable so the restart schedule is testable without real sleeps.
    """

    def __init__(
        self, config, spec: ReplicaSpec, hb: np.ndarray, *, post, on_msg, on_down,
        clock=time.monotonic,
    ):
        self.config = config
        self.spec = spec
        self.hb = hb
        self._post = post
        self._on_msg = on_msg
        self._on_down = on_down
        self._clock = clock
        self.ctx = multiprocessing.get_context(config.resolved_start_method())
        resolved_max = getattr(config, "resolved_max_replicas", None)
        max_replicas = resolved_max() if callable(resolved_max) else config.replicas
        self.handles = [ReplicaHandle(index=i) for i in range(max_replicas)]
        self.target = config.replicas  # replicas meant to be in service
        self.restarts = 0  # successful respawns after a failure
        self.hangs_detected = 0
        self.crashes_detected = 0
        self.cold_start_ms: deque = deque(maxlen=64)  # spawn -> READY, recent
        self.retired = 0  # replicas drained away by scale-down
        self._stopping = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def spawn_all(self) -> None:
        for handle in self.handles[: self.target]:
            self.spawn(handle)

    def spawn(self, handle: ReplicaHandle) -> None:
        """(Re)start one replica with fresh pipes and a new generation."""
        import dataclasses

        spec = dataclasses.replace(self.spec, index=handle.index)
        work_recv, work_send = self.ctx.Pipe(duplex=False)
        resp_recv, resp_send = self.ctx.Pipe(duplex=False)
        process = self.ctx.Process(
            target=_replica_main,
            args=(spec, work_recv, resp_send),
            name=f"serve-replica-{handle.index}",
            daemon=True,
        )
        process.start()
        # the child's ends must be closed here so a dead child yields EOF
        work_recv.close()
        resp_send.close()
        if handle.state == DOWN and handle.process is not None:
            handle.restarts += 1
            self.restarts += 1
        handle.generation += 1
        handle.process = process
        handle.work = work_send
        handle.resp = resp_recv
        handle.state = STARTING
        handle.started_at = self._clock()
        handle.pid = process.pid
        handle.assigned.clear()
        self.hb[handle.index] = self._clock()
        threading.Thread(
            target=self._reader,
            args=(handle.index, handle.generation, resp_recv),
            name=f"serve-replica-{handle.index}-reader",
            daemon=True,
        ).start()

    def _reader(self, index: int, generation: int, conn) -> None:
        """Pump one replica generation's acks onto the loop thread."""
        while True:
            try:
                msg = conn.recv()
            except Exception:  # EOF, closed pipe, or a truncated/corrupt frame
                break
            self._post(self._handle_msg, index, generation, msg)
        self._post(self._handle_eof, index, generation)

    def _handle_msg(self, index: int, generation: int, msg) -> None:
        handle = self.handles[index]
        if handle.generation != generation or self._stopping:
            return  # stale generation: the crash was already handled
        if msg[0] == "ready" and handle.state == STARTING:
            # a handle that was set DRAINING while still starting stays
            # draining — its late "ready" must not put it back in rotation
            handle.state = READY
            handle.ready_since = self._clock()
            handle.cold_start_ms = (handle.ready_since - handle.started_at) * 1e3
            self.cold_start_ms.append(handle.cold_start_ms)
            self.hb[index] = handle.ready_since
        self._on_msg(handle, msg)

    def _handle_eof(self, index: int, generation: int) -> None:
        handle = self.handles[index]
        if handle.generation != generation or handle.state in (DOWN, FAILED, STOPPED, DETACHED):
            return
        self.crashes_detected += 1
        self.mark_down(handle, "pipe closed (replica exited)")

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #
    def mark_down(self, handle: ReplicaHandle, reason: str) -> None:
        """Take a replica out of rotation and schedule its restart."""
        if handle.state in (DOWN, FAILED, STOPPED, DETACHED):
            return
        handle.state = DOWN
        handle.close_conns()
        if handle.process is not None:
            try:
                handle.process.join(timeout=0)
            except (OSError, ValueError, AssertionError):
                pass
        assigned = dict(handle.assigned)
        handle.assigned.clear()
        handle.failures += 1
        limit = self.config.max_restarts
        if handle.index >= self.target:
            # died while draining: its work is requeued below, but there is
            # no slot to restart into — the replica leaves service instead
            handle.state = DETACHED
            self.retired += 1
        elif limit is not None and handle.failures > limit:
            handle.state = FAILED
        else:
            backoff = min(
                self.config.restart_backoff_cap,
                self.config.restart_backoff_base * 2 ** (handle.failures - 1),
            )
            handle.restart_at = self._clock() + backoff
        self._on_down(handle, reason, assigned)

    # ------------------------------------------------------------------ #
    # elasticity
    # ------------------------------------------------------------------ #
    def set_target(self, n: int) -> int:
        """Move the in-service line to ``n`` replicas; returns the clamp.

        Scale-up (re)spawns detached handles; scale-down marks the excess
        DRAINING (they keep serving what is already assigned to them and are
        retired by :meth:`poll` once empty).  A scale-up that lands on a
        still-draining handle just flips it back to READY — the process
        never stopped, so cancelling a drain costs nothing.
        """
        n = max(1, min(len(self.handles), int(n)))
        self.target = n
        for handle in self.handles[:n]:
            if handle.state == DETACHED:
                self.spawn(handle)
            elif handle.state == DRAINING:
                handle.state = READY
        for handle in self.handles[n:]:
            if handle.state in (READY, STARTING):
                handle.state = DRAINING
            elif handle.state in (DOWN, FAILED):
                handle.state = DETACHED  # cancel any pending restart
        return n

    def _retire(self, handle: ReplicaHandle) -> None:
        """Stop a fully drained replica and detach it from service."""
        if handle.work is not None:
            try:
                handle.work.send(("stop",))
            except (OSError, ValueError):
                pass
        handle.close_conns()
        if handle.process is not None:
            try:
                handle.process.join(timeout=0)
            except (OSError, ValueError, AssertionError):
                pass
        handle.state = DETACHED
        self.retired += 1

    def poll(self) -> None:
        """One watchdog pass: detect crash/hang/stuck-start, run due restarts."""
        if self._stopping:
            return
        now = self._clock()
        cfg = self.config
        for handle in self.handles:
            if handle.state == READY:
                if not handle.process.is_alive():
                    self.crashes_detected += 1
                    self.mark_down(handle, "process died")
                elif now - self.hb[handle.index] > cfg.heartbeat_interval * cfg.miss_threshold:
                    self.hangs_detected += 1
                    self._kill(handle)
                    self.mark_down(
                        handle,
                        f"missed {cfg.miss_threshold} heartbeats "
                        f"({cfg.heartbeat_interval * cfg.miss_threshold:.2f}s)",
                    )
                elif handle.failures and now - handle.ready_since > cfg.restart_reset_after:
                    handle.failures = 0  # healthy long enough: forgive old crashes
            elif handle.state == STARTING:
                if not handle.process.is_alive():
                    self.crashes_detected += 1
                    self.mark_down(handle, "died during startup")
                elif now - handle.started_at > cfg.start_timeout:
                    self._kill(handle)
                    self.mark_down(handle, "startup timed out")
            elif handle.state == DRAINING:
                if not handle.process.is_alive():
                    self.crashes_detected += 1
                    self.mark_down(handle, "process died while draining")
                elif handle.assigned and (
                    now - self.hb[handle.index] > cfg.heartbeat_interval * cfg.miss_threshold
                ):
                    self.hangs_detected += 1
                    self._kill(handle)
                    self.mark_down(handle, "hung while draining")
                elif not handle.assigned:
                    self._retire(handle)
            elif handle.state == DOWN:
                if handle.index >= self.target:
                    handle.state = DETACHED  # restart cancelled by a scale-down
                elif now >= handle.restart_at:
                    self.spawn(handle)

    def _kill(self, handle: ReplicaHandle) -> None:
        try:
            handle.process.kill()
        except (OSError, ValueError, AttributeError):
            pass

    # ------------------------------------------------------------------ #
    # queries / shutdown
    # ------------------------------------------------------------------ #
    def ready_handles(self) -> list[ReplicaHandle]:
        return [h for h in self.handles if h.state == READY]

    def active_handles(self) -> list[ReplicaHandle]:
        """Handles currently in (or leaving) service — everything not detached."""
        return [h for h in self.handles if h.state != DETACHED]

    def draining(self) -> int:
        return sum(1 for h in self.handles if h.state == DRAINING)

    def alive(self) -> bool:
        """Can the fleet still make progress (some in-service replica not FAILED)?"""
        return any(h.state != FAILED for h in self.handles[: self.target])

    def stop_all(self, timeout: float = 10.0) -> None:
        """Graceful stop: ask replicas to exit, then escalate to SIGKILL."""
        self._stopping = True
        for handle in self.handles:
            if handle.work is not None:
                try:
                    handle.work.send(("stop",))
                except OSError:
                    pass
        deadline = self._clock() + timeout
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            try:
                process.join(timeout=max(deadline - self._clock(), 0.0))
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            except (OSError, ValueError, AssertionError):
                pass
            handle.close_conns()
            if handle.state not in (FAILED, DETACHED):
                handle.state = STOPPED
