"""SLO-driven autoscaling and graceful degradation for the serving fleet.

:class:`AutoscaleController` closes the loop around :class:`~repro.serve.Fleet`:
it samples :class:`~repro.serve.FleetStats` on a fixed interval, folds the
latency p99 and admission queue depth into one *pressure* signal, and steers
the in-service replica count between ``min_replicas`` and ``max_replicas``
through :meth:`Fleet.resize`.  The control loop is deliberately conservative —
DACFL-style dynamic consensus under churn, not a bang-bang thermostat:

* **Hysteresis band.**  Pressure above ``up_threshold`` scales up; only
  pressure below ``down_threshold`` scales down.  The dead band between the
  two absorbs noise so the fleet does not flap around a boundary.
* **Cooldowns.**  After any resize the controller holds for
  ``up_cooldown`` / ``down_cooldown`` seconds (scale-down is the slower of
  the two: adding capacity is cheap, draining it is not).
* **Restart awareness.**  While the supervisor is still converging —
  ``ready < target`` because chaos killed a replica and the watchdog is
  restarting it — the controller holds rather than mistaking the transient
  capacity dip for organic load, so kill chaos does not cause oscillation.
* **Degradation ladder.**  Pinned at ``max_replicas`` with pressure still
  above the band for ``ladder_patience`` consecutive samples, the controller
  steps DOWN a ladder instead of failing: each level tightens the effective
  deadline, shrinks the batching wait (lower latency, less throughput
  efficiency), caps admitted work harder, and sheds with a ``retry_after_ms``
  hint in the typed ``Overloaded`` error.  ``recover_patience`` calm samples
  step back UP one level at a time; replicas are only drained once the
  ladder is fully recovered.
* **Fidelity before shedding.**  A fleet serving a multi-rung
  :class:`~repro.serve.fidelity.LadderBackend` prepends its fidelity drops to
  that ladder: the first ``rungs - 1`` levels merely switch every replica to
  a cheaper engine (``Fleet.set_fidelity`` — no restart, no refusals), and
  only beyond the ladder floor does deadline/admission tightening begin.
  Recovery is symmetric: full fidelity is restored before capacity drains.

Deterministic by construction: ``step(stats, now)`` is a pure function of its
inputs and the controller's own state, so tests drive it with a fake clock
and synthetic stats — no sleeps, no real fleet required.

Quickstart::

    from repro.serve import Fleet, AutoscaleController, SLOConfig

    fleet = Fleet(replicas=1, max_replicas=4).start()
    slo = SLOConfig(p99_target_ms=50.0, min_replicas=1, max_replicas=4)
    with AutoscaleController(fleet, slo):   # samples in a daemon thread
        serve_traffic(fleet)
    print(fleet.stats().summary())

CLI: ``python -m repro.serve --autoscale --min-replicas 1 --max-replicas 4
--slo-p99-ms 50`` or ``$REPRO_AUTOSCALE="min=1,max=4,p99=50"``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

__all__ = ["SLOConfig", "AutoscaleController", "parse_autoscale", "ENV_VAR"]

ENV_VAR = "REPRO_AUTOSCALE"


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objective and control-loop policy for autoscaling.

    Parameters
    ----------
    p99_target_ms:
        Latency SLO; p99 at the target is pressure 1.0 from the latency term.
    queue_target:
        Healthy in-flight requests per in-service replica; the queue term of
        the pressure signal is ``inflight / (queue_target * target)``.
    min_replicas, max_replicas:
        Bounds for the controller's target replica count.
    interval:
        Sampling period of the control loop thread, seconds.
    window:
        Pressure samples averaged before a decision — smooths one-sample
        spikes without adding much lag.
    up_threshold, down_threshold:
        Hysteresis band over smoothed pressure: scale up above
        ``up_threshold``, down below ``down_threshold``, hold in between.
    up_cooldown, down_cooldown:
        Minimum seconds between scale-ups / scale-downs.
    max_step_up:
        Replicas added per scale-up decision (scale-down is always one at a
        time — draining is the expensive direction).
    ladder_levels:
        Depth of the graceful-degradation ladder used at ``max_replicas``.
    ladder_patience, recover_patience:
        Consecutive hot (cool) samples required to step down (up) the ladder.
    deadline_factor, wait_factor, pending_factor:
        Per-level multipliers applied to the fleet's configured deadline,
        batching wait and pending cap (``value * factor**level``).
    """

    p99_target_ms: float = 100.0
    queue_target: float = 4.0
    min_replicas: int = 1
    max_replicas: int = 4
    interval: float = 0.25
    window: int = 4
    up_threshold: float = 1.0
    down_threshold: float = 0.45
    up_cooldown: float = 0.5
    down_cooldown: float = 2.0
    max_step_up: int = 2
    ladder_levels: int = 3
    ladder_patience: int = 3
    recover_patience: int = 3
    deadline_factor: float = 0.6
    wait_factor: float = 0.5
    pending_factor: float = 0.7

    def __post_init__(self):
        if self.p99_target_ms <= 0:
            raise ValueError("p99_target_ms must be > 0")
        if self.queue_target <= 0:
            raise ValueError("queue_target must be > 0")
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if not 0 < self.down_threshold < self.up_threshold:
            raise ValueError("need 0 < down_threshold < up_threshold")
        if self.up_cooldown < 0 or self.down_cooldown < 0:
            raise ValueError("cooldowns must be >= 0")
        if self.max_step_up < 1:
            raise ValueError("max_step_up must be at least 1")
        if self.ladder_levels < 0:
            raise ValueError("ladder_levels must be >= 0")
        if self.ladder_patience < 1 or self.recover_patience < 1:
            raise ValueError("ladder_patience and recover_patience must be >= 1")
        for name in ("deadline_factor", "wait_factor", "pending_factor"):
            if not 0 < getattr(self, name) <= 1:
                raise ValueError(f"{name} must be in (0, 1]")


_SPEC_KEYS = {
    "min": ("min_replicas", int),
    "max": ("max_replicas", int),
    "p99": ("p99_target_ms", float),
    "queue": ("queue_target", float),
    "interval": ("interval", float),
    "window": ("window", int),
    "up": ("up_threshold", float),
    "down": ("down_threshold", float),
    "up_cooldown": ("up_cooldown", float),
    "down_cooldown": ("down_cooldown", float),
    "step": ("max_step_up", int),
    "levels": ("ladder_levels", int),
}


def parse_autoscale(spec: "str | SLOConfig | None") -> SLOConfig | None:
    """Parse an ``$REPRO_AUTOSCALE``-style spec into an :class:`SLOConfig`.

    ``None``/``""``/``"0"``/``"off"`` disable autoscaling (returns ``None``);
    ``"1"``/``"true"``/``"on"`` enable it with defaults; otherwise a
    comma-separated key=value list, e.g. ``"min=1,max=4,p99=50,queue=4"``
    (see ``_SPEC_KEYS`` for the short names).
    """
    if spec is None or isinstance(spec, SLOConfig):
        return spec
    text = spec.strip()
    if not text or text.lower() in ("0", "off", "false", "no", "none"):
        return None
    if text.lower() in ("1", "on", "true", "yes"):
        return SLOConfig()
    overrides = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad autoscale spec item {part!r}; expected key=value")
        key, value = part.split("=", 1)
        key = key.strip().lower()
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"unknown autoscale key {key!r}; known: {sorted(_SPEC_KEYS)}"
            )
        name, cast = _SPEC_KEYS[key]
        overrides[name] = cast(value.strip())
    return SLOConfig(**overrides)


@dataclass
class _Counters:
    scale_ups: int = 0
    scale_downs: int = 0
    degrades: int = 0
    recoveries: int = 0
    holds_converging: int = 0
    peak_target: int = 0
    decisions: int = 0
    last_pressure: float = 0.0
    last_decision: str = "idle"
    history: list = field(default_factory=list)


class AutoscaleController:
    """Closed-loop controller steering ``Fleet.resize`` from ``FleetStats``.

    ``step()`` makes one decision; :meth:`start` runs it on ``slo.interval``
    in a daemon thread (also available as a context manager).  Pass ``clock``
    and call ``step(stats, now)`` directly for deterministic tests.
    """

    def __init__(self, fleet, slo: SLOConfig | None = None, *, clock=time.monotonic,
                 stats_fn=None):
        slo = slo or SLOConfig()
        max_cap = getattr(fleet.config, "resolved_max_replicas", None)
        if callable(max_cap):
            cap = max_cap()
            if slo.max_replicas > cap:
                slo = replace(slo, max_replicas=cap)
        self.fleet = fleet
        self.slo = slo
        self._clock = clock
        self._stats_fn = stats_fn if stats_fn is not None else fleet.stats
        self.target = max(slo.min_replicas, min(slo.max_replicas, fleet.config.replicas))
        self.level = 0
        self.counters = _Counters(peak_target=self.target)
        self._pressures: deque = deque(maxlen=slo.window)
        self._last_scale_up = -float("inf")
        self._last_scale_down = -float("inf")
        self._hot_streak = 0
        self._cool_streak = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # the control law
    # ------------------------------------------------------------------ #
    def pressure(self, stats) -> float:
        """Fold stats into one scalar: 1.0 means 'exactly at the SLO'."""
        slo = self.slo
        target = max(1, getattr(stats, "target", self.target) or self.target)
        queue_term = stats.inflight / (slo.queue_target * target)
        p99 = stats.latency_ms_p99
        latency_term = (p99 / slo.p99_target_ms) if p99 is not None else 0.0
        return max(queue_term, latency_term)

    def step(self, stats=None, now: float | None = None) -> str:
        """Sample, decide, act.  Returns the decision for logging/tests.

        Decisions: ``"hold"`` (in the hysteresis band or cooling down),
        ``"converging"`` (restarts in progress — suppressed), ``"up"``,
        ``"down"``, ``"degrade"``, ``"recover"``.
        """
        slo = self.slo
        if stats is None:
            stats = self._stats_fn()
        if now is None:
            now = self._clock()
        self.counters.decisions += 1
        pressure = self.pressure(stats)
        self._pressures.append(pressure)
        smoothed = sum(self._pressures) / len(self._pressures)
        self.counters.last_pressure = smoothed

        # chaos/watchdog awareness: ready below target means the supervisor
        # is still restoring capacity — deciding now would double-count the
        # dip (scale up) or misread the lull (scale down), i.e. oscillate
        if stats.ready < min(self.target, getattr(stats, "target", self.target)):
            self._hot_streak = 0
            self._cool_streak = 0
            self.counters.holds_converging += 1
            return self._record("converging", now)

        if smoothed > slo.up_threshold:
            self._cool_streak = 0
            if self.target < slo.max_replicas:
                self._hot_streak = 0
                if now - self._last_scale_up < slo.up_cooldown:
                    return self._record("hold", now)
                new = min(slo.max_replicas, self.target + slo.max_step_up)
                self._resize(new, "pressure", now)
                self._last_scale_up = now
                self.counters.scale_ups += 1
                self.counters.peak_target = max(self.counters.peak_target, new)
                return self._record("up", now)
            # pinned at max: walk the degradation ladder after sustained heat
            self._hot_streak += 1
            if self.level < self.ladder_depth and self._hot_streak >= slo.ladder_patience:
                self._hot_streak = 0
                self._set_level(self.level + 1)
                self.counters.degrades += 1
                return self._record("degrade", now)
            return self._record("hold", now)

        if smoothed < slo.down_threshold:
            self._hot_streak = 0
            if self.level > 0:
                # recover the ladder before giving capacity back
                self._cool_streak += 1
                if self._cool_streak >= slo.recover_patience:
                    self._cool_streak = 0
                    self._set_level(self.level - 1)
                    self.counters.recoveries += 1
                    return self._record("recover", now)
                return self._record("hold", now)
            if self.target > slo.min_replicas:
                if now - self._last_scale_down < slo.down_cooldown:
                    return self._record("hold", now)
                self._resize(self.target - 1, "idle", now)
                self._last_scale_down = now
                self.counters.scale_downs += 1
                return self._record("down", now)
            return self._record("hold", now)

        # inside the hysteresis band: by design, do nothing
        self._hot_streak = 0
        self._cool_streak = 0
        return self._record("hold", now)

    def _record(self, decision: str, now: float) -> str:
        self.counters.last_decision = decision
        if decision not in ("hold", "converging"):
            self.counters.history.append(
                {
                    "t": round(now, 3),
                    "decision": decision,
                    "target": self.target,
                    "level": self.level,
                    "pressure": round(self.counters.last_pressure, 4),
                }
            )
            del self.counters.history[:-64]
        return decision

    def _resize(self, replicas: int, reason: str, now: float) -> None:
        self.target = self.fleet.resize(replicas, reason=f"autoscale:{reason}")

    @property
    def fidelity_rungs(self) -> int:
        """Rung count of the fleet's fidelity ladder (1 for ladder-less fleets)."""
        return max(1, int(getattr(self.fleet, "fidelity_rungs", 1) or 1))

    @property
    def ladder_depth(self) -> int:
        """Total degradation depth: fidelity rungs first, then shedding levels.

        A fleet serving a :class:`~repro.serve.fidelity.LadderBackend`
        prepends its ``rungs - 1`` fidelity drops to the shedding ladder, so
        under sustained overload the controller *lowers fidelity before it
        sheds work* — and, symmetrically, climbs back to full fidelity before
        handing capacity back.
        """
        return (self.fidelity_rungs - 1) + self.slo.ladder_levels

    def _set_level(self, level: int) -> None:
        slo = self.slo
        cfg = self.fleet.config
        rungs = self.fidelity_rungs
        self.level = max(0, min(self.ladder_depth, level))
        if rungs > 1:
            # drop fidelity before shedding: the first rungs-1 levels only
            # switch the fleet's active rung (see repro.serve.fidelity)
            self.fleet.set_fidelity(min(self.level, rungs - 1), reason="autoscale")
        shed = max(0, self.level - (rungs - 1))
        if shed == 0:
            self.fleet.set_degradation(0)
            return
        self.fleet.set_degradation(
            shed,
            deadline_ms=cfg.default_deadline_ms * slo.deadline_factor**shed,
            max_wait_ms=cfg.max_wait_ms * slo.wait_factor**shed,
            max_pending=max(1, int(cfg.max_pending * slo.pending_factor**shed)),
        )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def state(self) -> dict:
        """Controller state for the CLI ``--json`` payload."""
        c = self.counters
        return {
            "target": self.target,
            "level": self.level,
            "ladder_depth": self.ladder_depth,
            "fidelity_rungs": self.fidelity_rungs,
            "min_replicas": self.slo.min_replicas,
            "max_replicas": self.slo.max_replicas,
            "p99_target_ms": self.slo.p99_target_ms,
            "queue_target": self.slo.queue_target,
            "pressure": round(c.last_pressure, 4),
            "last_decision": c.last_decision,
            "decisions": c.decisions,
            "scale_ups": c.scale_ups,
            "scale_downs": c.scale_downs,
            "degrades": c.degrades,
            "recoveries": c.recoveries,
            "holds_converging": c.holds_converging,
            "peak_target": c.peak_target,
            "history": list(c.history),
        }

    def describe(self) -> str:
        """One-paragraph human summary for stats output."""
        c = self.counters
        return (
            f"autoscale         : target {self.target} "
            f"[{self.slo.min_replicas}..{self.slo.max_replicas}], "
            f"pressure {c.last_pressure:.2f} (p99 SLO {self.slo.p99_target_ms:.0f} ms, "
            f"queue target {self.slo.queue_target:g}/replica), "
            f"last decision {c.last_decision!r}\n"
            f"                    {c.scale_ups} ups / {c.scale_downs} downs "
            f"(peak {c.peak_target}), ladder level {self.level}/{self.ladder_depth} "
            f"({c.degrades} degrades, {c.recoveries} recoveries), "
            f"{c.holds_converging} holds while restarts converged"
        )

    # ------------------------------------------------------------------ #
    # background loop
    # ------------------------------------------------------------------ #
    def start(self) -> "AutoscaleController":
        """Run :meth:`step` every ``slo.interval`` seconds in a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, name="autoscale", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.slo.interval):
            try:
                self.step()
            except Exception:
                # a transient stats/resize failure (e.g. fleet mid-shutdown)
                # must not kill the loop; the next tick retries
                if self._stop.is_set():
                    return

    def __enter__(self) -> "AutoscaleController":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
