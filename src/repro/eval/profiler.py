"""Layer-by-layer profiling: analytic FLOPs/params tables and wall-clock timing.

Complements :mod:`repro.eval.complexity` (which returns aggregate counts) with
human-readable per-layer breakdowns — the kind of table an engineer inspects
to find where a TNN spends its budget — and a measured-latency helper for the
benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from .complexity import count_complexity

__all__ = [
    "LayerProfile",
    "profile_layers",
    "format_profile_table",
    "measure_latency",
    "latency_percentiles",
]


@dataclass
class LayerProfile:
    """Analytic cost of one conv / linear layer."""

    name: str
    kind: str
    flops: int
    params: int
    flops_share: float


def profile_layers(model: nn.Module, input_shape: tuple[int, int, int]) -> list[LayerProfile]:
    """Per-layer FLOPs and parameter counts, sorted by execution order."""
    report = count_complexity(model, input_shape)
    total_flops = max(report.flops, 1)
    profiles = []
    for name, (flops, params) in report.per_layer.items():
        module = model.get_submodule(name) if name else model
        kind = type(module).__name__
        profiles.append(
            LayerProfile(
                name=name or "<root>",
                kind=kind,
                flops=flops,
                params=params,
                flops_share=flops / total_flops,
            )
        )
    return profiles


def format_profile_table(model: nn.Module, input_shape: tuple[int, int, int], top_k: int | None = None) -> str:
    """Render the per-layer profile as an aligned text table.

    ``top_k`` keeps only the most expensive layers (by FLOPs), which is what a
    quick inspection usually wants; the aggregate row always reflects the full
    model.
    """
    profiles = profile_layers(model, input_shape)
    rows = sorted(profiles, key=lambda p: p.flops, reverse=True)
    if top_k is not None:
        rows = rows[:top_k]
    report = count_complexity(model, input_shape)
    header = f"{'layer':<44s} {'type':<10s} {'MFLOPs':>10s} {'params':>10s} {'share':>7s}"
    lines = [header, "-" * len(header)]
    for profile in rows:
        lines.append(
            f"{profile.name:<44s} {profile.kind:<10s} {profile.flops / 1e6:>10.3f} "
            f"{profile.params:>10d} {profile.flops_share:>6.1%}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<44s} {'':<10s} {report.mflops:>10.3f} {report.params:>10d} {'100.0%':>7s}"
    )
    return "\n".join(lines)


def latency_percentiles(timings_ms) -> dict[str, float]:
    """p50/p95/p99 summary of a latency sample, in milliseconds.

    Shared by :func:`measure_latency` and the serving stats: tail percentiles,
    not means, are what a serving SLO is written against.
    """
    timings = np.asarray(timings_ms, dtype=np.float64)
    p50, p95, p99 = np.percentile(timings, [50.0, 95.0, 99.0])
    return {"p50_ms": float(p50), "p95_ms": float(p95), "p99_ms": float(p99)}


def measure_latency(
    model: nn.Module,
    input_shape: tuple[int, int, int],
    repeats: int = 5,
    warmup: int = 1,
    batch_size: int = 1,
    compiled: bool = True,
) -> dict[str, float]:
    """Wall-clock forward-pass latency of the NumPy implementation.

    Returns mean / median / best latency plus the p50/p95/p99 percentiles in
    milliseconds (raise ``repeats`` for meaningful tails).  This measures the
    simulator, not an MCU — use :mod:`repro.eval.deployment` for device
    estimates — but it is the honest way to compare the *relative* cost of a
    vanilla TNN, its expanded deep giant and the contracted result.

    ``compiled=True`` (the default) times the fused :mod:`repro.runtime`
    program — the deployment-relevant number; pass ``compiled=False`` to time
    the eager autograd-tape forward instead.  Compile time is excluded.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    probe_data = np.zeros((batch_size,) + tuple(input_shape), dtype=np.float32)
    was_training = model.training
    model.eval()

    forward = None
    used_compiled = False
    if compiled:
        try:
            from ..runtime import compile_model

            net = compile_model(model, mode="infer")
            forward = lambda: net.numpy_forward(probe_data)  # noqa: E731
            used_compiled = True
        except Exception:
            forward = None
    if forward is None:
        probe = nn.Tensor(probe_data)
        forward = lambda: model(probe)  # noqa: E731

    timings = []
    with nn.no_grad():
        for _ in range(warmup):
            forward()
        for _ in range(repeats):
            start = time.perf_counter()
            forward()
            timings.append((time.perf_counter() - start) * 1e3)
    model.train(was_training)
    stats = {
        "mean_ms": float(np.mean(timings)),
        "median_ms": float(np.median(timings)),
        "best_ms": float(np.min(timings)),
        # 1.0 when the fused runtime was timed, 0.0 for the eager forward
        # (either requested or after a compilation failure fallback).
        "compiled": 1.0 if used_compiled else 0.0,
    }
    stats.update(latency_percentiles(timings))
    return stats
